"""Setuptools shim so ``pip install -e .`` works without network access.

All project metadata lives in pyproject.toml; this file only exists to let
pip take the legacy (non-isolated) build path in offline environments.
"""

from setuptools import setup

setup()
