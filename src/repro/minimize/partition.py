"""Semantics-preserving TEA minimization by partition refinement.

Recorded automata carry real redundancy: trace recorders (MRET tails,
tree paths) duplicate the same basic-block suffixes across traces, and
Algorithm 1 faithfully lifts every duplicate into its own state.  The
minimizer collapses that redundancy with Moore/Hopcroft-style partition
refinement over :class:`~repro.core.automaton.TeaState` transition
signatures: states are grouped, the groups are split until every group
is *stable* (all members transition, label for label, into the same
groups), and the quotient automaton keeps one representative per group.
Unreachable states are dropped along the way, so minimized automata are
always ``verify --strict`` clean.

Replay bit-exactness
--------------------

The quotient preserves the automaton's language by construction, but
the paper's Table 4 accounting is finer than language: the replayer
keys its per-state **local caches** by state id, and cache contents are
populated only on directory hits — i.e. only for labels that are trace
entries.  Merging two states that can both side-exit onto a trace-entry
label would let one state's compulsory cache miss warm the other's
cache, drifting ``cache_hits``/``cache_misses`` (and the cache /
directory / enter cost charges) under the two Local configurations.

Two modes resolve this:

- ``"exact"`` (default): a state whose possible uncovered exits include
  a trace-entry label — or are statically unknown (``ret`` / indirect
  terminator) — is *pinned* into a singleton group before refinement
  starts.  Merged groups therefore never insert into their caches, and
  replay statistics, coverage and the cost breakdown are **bit-exact**
  against the original on all four Table 4 configurations and all
  three engines (asserted by ``tests/test_minimize.py`` and the CI
  minimize smoke).
- ``"aggressive"``: the full quotient.  Bit-exact under the two
  No-Local configurations; under Local configurations the cache and
  directory counters may legitimately drift while blocks, coverage,
  in-trace hits, trace enters/exits and NTE probes stay exact.

Head states (Algorithm 1 lines 15-17) are never merged: the TEA005
invariant ties each trace's entry to the state of *its own* TBB 0, so
every head stays the singleton representative of its group, the head
registry keeps its entries **and insertion order** (the directory's
probe-unit accounting depends on it), and minimized snapshots load
through TEAB / :class:`~repro.core.compiled.CompiledTea` / the JIT
engine unchanged.

Budgeted mode (``budget=N``) additionally caps the minimized automaton
at ``N`` states, spilling the coldest groups entirely: their states
disappear and transitions toward them fall back to the automaton's
generic default (directory probe, then NTE) — the same graceful
degradation a bounded code cache exhibits.  Heads are never spilled
and orphaned states are pruned transitively, so the budget invariants
(rule TEA053) hold by construction.
"""

from repro.core.automaton import NTE_SID, TEA
from repro.errors import TeaError
from repro.obs import Observability

#: Supported minimization modes (see the module docstring).
MODES = ("exact", "aggressive")


def state_cache_safe(state, heads):
    """True when merging ``state`` cannot perturb local-cache counters.

    Cache inserts happen only on directory hits, i.e. for labels in the
    head registry.  A state is cache-safe when none of its possible
    *uncovered* exits can be such a label: every statically known exit
    candidate either has an explicit transition (in-trace or linked —
    never a cache probe) or misses the directory.  A ``ret``/indirect
    terminator makes the exit target statically unknown, which is only
    safe when there are no trace entries to hit at all.
    """
    for label in state.tbb.exit_labels():
        if label is None:
            if heads:
                return False
            continue
        if label in state.transitions:
            continue
        if label in heads:
            return False
    return True


def mergeable_estimate(edge_labels, head_sids):
    """First-order upper bound on mergeable states (``tea info``).

    ``edge_labels`` lists, per state id (index 0 = NTE), the state's
    outgoing transition labels; ``head_sids`` names the head states,
    which never merge.  Two states can only ever merge when their label
    sets agree, so grouping by label tuple and counting the surplus
    members is a cheap optimistic estimate of what full refinement
    could collapse — refinement can only split these groups further.
    """
    groups = {}
    for sid in range(1, len(edge_labels)):
        if sid in head_sids:
            continue
        key = tuple(sorted(edge_labels[sid]))
        groups[key] = groups.get(key, 0) + 1
    return sum(count - 1 for count in groups.values() if count > 1)


class MinimizationResult:
    """Outcome of one :func:`minimize_tea` run.

    ``state_map[old_sid]`` is the minimized state id the original state
    collapsed into, or ``None`` when budget mode spilled it.  The
    ``original`` automaton is retained so verification (rules
    TEA051-TEA053) and diffing can compare both sides.
    """

    __slots__ = ("original", "tea", "state_map", "mode", "budget",
                 "spilled", "states_before", "states_after",
                 "transitions_before", "transitions_after")

    def __init__(self, original, tea, state_map, mode, budget, spilled):
        self.original = original
        self.tea = tea
        self.state_map = state_map
        self.mode = mode
        self.budget = budget
        #: Original state ids dropped by the budget (empty otherwise).
        self.spilled = spilled
        self.states_before = original.n_states
        self.states_after = tea.n_states
        self.transitions_before = original.n_transitions
        self.transitions_after = tea.n_transitions

    @property
    def merged(self):
        """Original states collapsed into another state's identity."""
        return self.states_before - self.states_after - len(self.spilled)

    @property
    def state_reduction(self):
        """Fraction of states removed (0.0 when nothing merged)."""
        before = self.states_before
        return (before - self.states_after) / before if before else 0.0

    def describe(self):
        """JSON-able summary (CLI output, snapshot provenance meta)."""
        return {
            "mode": self.mode,
            "budget": self.budget,
            "states_before": self.states_before,
            "states_after": self.states_after,
            "transitions_before": self.transitions_before,
            "transitions_after": self.transitions_after,
            "merged": self.merged,
            "spilled": len(self.spilled),
            "heads": self.tea.n_traces,
            "state_reduction": round(self.state_reduction, 4),
        }

    def __repr__(self):
        return "<MinimizationResult %s %d->%d states (%d spilled)>" % (
            self.mode, self.states_before, self.states_after,
            len(self.spilled),
        )


def _initial_partition(tea, mode, head_sids):
    """Group states that could conceivably merge; see module docstring.

    Returns ``class_of`` (state id -> group id; NTE is group 0).  The
    grouping key carries the block's start PC and the outgoing label
    set — states representing different code, or reacting to different
    labels, can never be bisimilar in a way replay accounting accepts —
    and exact mode pins cache-unsafe states into singletons.
    """
    class_of = [0] * tea.n_states
    keys = {}
    heads = tea.heads
    for state in tea.states[1:]:
        if state.sid in head_sids:
            key = ("head", state.sid)
        elif mode == "exact" and not state_cache_safe(state, heads):
            key = ("pinned", state.sid)
        else:
            key = ("block", state.tbb.start, tuple(sorted(state.transitions)))
        group = keys.get(key)
        if group is None:
            group = keys[key] = len(keys) + 1
        class_of[state.sid] = group
    return class_of, len(keys) + 1


def _refine(tea, class_of, n_groups):
    """Split groups until stable (Moore's algorithm; the automata are
    small enough that Hopcroft's worklist would be pure overhead)."""
    while True:
        signatures = {}
        refined = [0] * tea.n_states
        for state in tea.states[1:]:
            signature = (
                class_of[state.sid],
                tuple(sorted(
                    (label, class_of[dest.sid])
                    for label, dest in state.transitions.items()
                )),
            )
            group = signatures.get(signature)
            if group is None:
                group = signatures[signature] = len(signatures) + 1
            refined[state.sid] = group
        if len(signatures) + 1 == n_groups:
            return class_of, n_groups
        class_of, n_groups = refined, len(signatures) + 1


def _select_groups(tea, class_of, members, head_sids, budget, hotness):
    """Which groups survive the budget (all of them when ``budget`` is
    None); orphaned groups are pruned transitively either way."""
    head_groups = {class_of[sid] for sid in head_sids}
    kept = set(members)
    if budget is not None:
        floor = 1 + len(head_groups)
        if not isinstance(budget, int) or budget < floor:
            raise TeaError(
                "budget must be an integer >= %d (NTE plus %d head "
                "state(s)); got %r" % (floor, len(head_groups), budget)
            )

        def rank(group):
            # Hotter first, then bigger merged groups (states the
            # recorder produced more often), then stable by sid.
            return (
                -max(hotness.get(state.sid, 0) for state in members[group]),
                -len(members[group]),
                members[group][0].sid,
            )

        # Grow greedily from the head classes so every kept class stays
        # reachable and the budget is actually used: repeatedly admit
        # the best-ranked class adjacent to the kept set.
        kept = set(head_groups)
        fringe = set()

        def expand(group):
            for dest in members[group][0].transitions.values():
                dest_group = class_of[dest.sid]
                if dest_group and dest_group not in kept:
                    fringe.add(dest_group)

        for group in head_groups:
            expand(group)
        while len(kept) < budget - 1 and fringe:
            best = min(fringe, key=rank)
            fringe.discard(best)
            kept.add(best)
            expand(best)
    # Transitive reachability from the heads (the only NTE entrances):
    # budget spills — or dead weight already present in the source —
    # must not leave TEA003-unreachable states behind.
    representative = {
        group: states[0] for group, states in members.items()
    }
    reachable = set()
    frontier = [group for group in head_groups if group in kept]
    reachable.update(frontier)
    while frontier:
        group = frontier.pop()
        for dest in representative[group].transitions.values():
            dest_group = class_of[dest.sid]
            if dest_group in kept and dest_group not in reachable:
                reachable.add(dest_group)
                frontier.append(dest_group)
    return reachable


def minimize_tea(tea, mode="exact", budget=None, hotness=None, obs=None):
    """Minimize ``tea``; returns a :class:`MinimizationResult`.

    Parameters
    ----------
    tea:
        The automaton to minimize (left untouched).
    mode:
        ``"exact"`` (replay-bit-exact, the default) or ``"aggressive"``
        (full quotient); see the module docstring.
    budget:
        Optional cap on the minimized state count (including NTE).
        Must leave room for NTE plus every head state.
    hotness:
        Optional mapping of original state id -> weight used to rank
        spill victims under a budget (e.g. profile execution counts).
        Without it, larger merged groups — states the recorder produced
        more often — are considered hotter.
    obs:
        Optional :class:`~repro.obs.Observability`; the pass reports
        ``minimize.*`` counters and the ``minimize.run`` timer.
    """
    if mode not in MODES:
        raise ValueError(
            "mode must be one of %s" % ", ".join(repr(name) for name in MODES)
        )
    obs = obs if obs is not None else Observability()
    metrics = obs.metrics
    with metrics.timer("minimize.run"):
        head_sids = {head.sid for head in tea.heads.values()}
        class_of, n_groups = _initial_partition(tea, mode, head_sids)
        class_of, n_groups = _refine(tea, class_of, n_groups)

        members = {}
        for state in tea.states[1:]:
            members.setdefault(class_of[state.sid], []).append(state)
        kept = _select_groups(tea, class_of, members, head_sids, budget,
                              hotness or {})

        # Quotient: one representative per surviving group, renumbered
        # in original sid order so the layout stays deterministic.
        minimized = TEA()
        new_state_of = {}
        order = sorted(kept, key=lambda group: members[group][0].sid)
        for group in order:
            new_state_of[group] = minimized.add_tbb_state(
                members[group][0].tbb
            )
        for group in order:
            source = new_state_of[group]
            for label, dest in members[group][0].transitions.items():
                target = new_state_of.get(class_of[dest.sid])
                if target is not None:
                    minimized.add_transition(source, label, target)
        # Head registry: same entries, same insertion order — the
        # lookup directory's shape (and probe-unit accounting) is a
        # function of both.
        for entry, head in tea.heads.items():
            minimized.heads[entry] = new_state_of[class_of[head.sid]]

        state_map = [None] * tea.n_states
        state_map[NTE_SID] = NTE_SID
        spilled = []
        for state in tea.states[1:]:
            kept_state = new_state_of.get(class_of[state.sid])
            if kept_state is None:
                spilled.append(state.sid)
            else:
                state_map[state.sid] = kept_state.sid

        result = MinimizationResult(tea, minimized, state_map, mode,
                                    budget, spilled)
    metrics.counter("minimize.runs").inc()
    metrics.counter("minimize.merged_states").inc(result.merged)
    metrics.counter("minimize.spilled_states").inc(len(spilled))
    metrics.set_gauge("minimize.states_before", result.states_before)
    metrics.set_gauge("minimize.states_after", result.states_after)
    return result
