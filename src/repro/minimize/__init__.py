"""TEA minimization: partition-refinement state merging + budgets.

See :mod:`repro.minimize.partition` for the algorithm and the
bit-exactness argument, and ``docs/minimize_and_diff.md`` for the
user-facing tour.
"""

from repro.minimize.partition import (
    MODES,
    MinimizationResult,
    mergeable_estimate,
    minimize_tea,
    state_cache_safe,
)

__all__ = [
    "MODES",
    "MinimizationResult",
    "mergeable_estimate",
    "minimize_tea",
    "state_cache_safe",
]
