"""The SX86 interpreter.

Replaces the hardware + OS the paper ran on.  The executor runs a
:class:`~repro.isa.program.Program` and emits the *dynamic branch-edge
stream*: one event per control transfer (and per Pin-style block splitter),
carrying the two instruction counts the paper's Section 4.1 contrasts —
StarDBT counts a REP-prefixed instruction once, Pin counts every iteration.

Every higher layer (the DBT, MiniPin, trace recorders, the TEA replayer)
consumes this event stream rather than re-executing instructions, so all
engines observe the identical dynamic control flow.
"""

from repro.cpu.events import (
    EDGE_CALL,
    EDGE_COND,
    EDGE_IND_CALL,
    EDGE_IND_JMP,
    EDGE_JMP,
    EDGE_RET,
    EDGE_SPLIT,
    EdgeEvent,
)
from repro.cpu.executor import ExecutionResult, Executor, run_program
from repro.cpu.machine import Machine

__all__ = [
    "EdgeEvent",
    "EDGE_COND",
    "EDGE_JMP",
    "EDGE_CALL",
    "EDGE_RET",
    "EDGE_IND_JMP",
    "EDGE_IND_CALL",
    "EDGE_SPLIT",
    "ExecutionResult",
    "Executor",
    "Machine",
    "run_program",
]
