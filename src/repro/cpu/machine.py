"""Architectural state for the SX86 interpreter.

Registers live in a flat list indexed by the constants in
:mod:`repro.isa.registers`; flags are individual integer attributes
(0 or 1) mirroring the IA-32 ZF/SF/CF/OF bits; memory is a sparse
word-granular dictionary (address -> 32-bit value).  Word granularity is
sufficient because all SX86 memory traffic is 32-bit.
"""

from repro.isa.program import DEFAULT_STACK_TOP
from repro.isa.registers import ESP, NUM_REGISTERS

_MASK = 0xFFFFFFFF


class Machine:
    """Mutable register file, flags and memory."""

    __slots__ = ("regs", "zf", "sf", "cf", "of", "mem")

    def __init__(self, stack_top=DEFAULT_STACK_TOP):
        self.regs = [0] * NUM_REGISTERS
        self.regs[ESP] = stack_top
        self.zf = 0
        self.sf = 0
        self.cf = 0
        self.of = 0
        self.mem = {}

    def load(self, addr):
        """Read the 32-bit word at ``addr`` (uninitialised memory reads 0)."""
        return self.mem.get(addr & _MASK, 0)

    def store(self, addr, value):
        self.mem[addr & _MASK] = value & _MASK

    def load_words(self, addr, count):
        """Read ``count`` consecutive words starting at ``addr``."""
        mem = self.mem
        return [mem.get((addr + 4 * i) & _MASK, 0) for i in range(count)]

    def store_words(self, addr, values):
        for offset, value in enumerate(values):
            self.store(addr + 4 * offset, value)

    def apply_image(self, program):
        """Install a program's initial data section into memory."""
        self.mem.update(program.data)

    def snapshot(self):
        """Copy of the architectural state, for tests and determinism checks."""
        return {
            "regs": list(self.regs),
            "flags": (self.zf, self.sf, self.cf, self.of),
            "mem": dict(self.mem),
        }

    def __repr__(self):
        regs = " ".join(
            "%s=%#x" % (name, value)
            for name, value in zip(
                ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"), self.regs
            )
        )
        return "<Machine %s zf=%d sf=%d cf=%d of=%d |mem|=%d>" % (
            regs,
            self.zf,
            self.sf,
            self.cf,
            self.of,
            len(self.mem),
        )
