"""Dynamic control-flow events emitted by the executor.

The event stream is the contract between the interpreter and every
engine built on top of it.  One :class:`EdgeEvent` is emitted per control
transfer (taken or not) and per Pin-style block splitter (``cpuid``,
REP-prefixed ops).  An event carries:

- ``pc``: address of the instruction that ended the block,
- ``target``: address execution continues at (branch target when taken,
  fall-through otherwise),
- ``taken``: whether a branch actually redirected control,
- ``kind``: one of the ``EDGE_*`` constants below,
- ``instrs_dbt`` / ``instrs_pin``: instructions executed since the previous
  event *inclusive* of this one, under StarDBT counting (REP counts as one
  instruction) and Pin counting (REP counts each iteration) — the Section
  4.1 discrepancy, reproduced faithfully.

``EDGE_SPLIT`` events exist only so a Pin-flavour basic-block builder can
end blocks at splitters; a StarDBT-flavour builder merges them into the
surrounding block.
"""

EDGE_COND = "cond"
EDGE_JMP = "jmp"
EDGE_CALL = "call"
EDGE_RET = "ret"
EDGE_IND_JMP = "ind_jmp"
EDGE_IND_CALL = "ind_call"
EDGE_SPLIT = "split"

#: Edge kinds produced by genuine control transfers (not splitters).
CONTROL_KINDS = frozenset(
    (EDGE_COND, EDGE_JMP, EDGE_CALL, EDGE_RET, EDGE_IND_JMP, EDGE_IND_CALL)
)


class EdgeEvent:
    """One dynamic control-flow edge.  See module docstring for fields."""

    __slots__ = ("pc", "target", "taken", "kind", "instrs_dbt", "instrs_pin")

    def __init__(self, pc, target, taken, kind, instrs_dbt, instrs_pin):
        self.pc = pc
        self.target = target
        self.taken = taken
        self.kind = kind
        self.instrs_dbt = instrs_dbt
        self.instrs_pin = instrs_pin

    @property
    def is_backward(self):
        """True for a taken transfer to a lower or equal address.

        Backward taken branches are the MRET/TT hot-spot detector's
        trigger (Dynamo's "start-of-trace" heuristic).
        """
        return self.taken and self.target <= self.pc

    @property
    def is_split(self):
        return self.kind == EDGE_SPLIT

    def __repr__(self):
        return "<Edge %s %#x->%#x taken=%s dbt=%d pin=%d>" % (
            self.kind,
            self.pc,
            self.target,
            self.taken,
            self.instrs_dbt,
            self.instrs_pin,
        )
