"""The SX86 interpreter core.

Instructions are pre-compiled once per :class:`Executor` into small
closures over the machine (operand addressing resolved at compile time),
so the hot loop only dispatches on a per-instruction *category* integer.
The loop emits :class:`~repro.cpu.events.EdgeEvent` objects at every
control transfer and block splitter; straight-line instructions are just
counted.

Flag semantics follow IA-32 for the subset the ISA defines: ``cmp``/``sub``
set CF on unsigned borrow and OF on signed overflow; logical ops clear
CF/OF; ``inc``/``dec`` preserve CF.  See the per-opcode compilers below.
"""

import operator

from repro.errors import ExecutionError, InstructionLimitExceeded
from repro.cpu.events import (
    EDGE_CALL,
    EDGE_COND,
    EDGE_IND_CALL,
    EDGE_IND_JMP,
    EDGE_JMP,
    EDGE_RET,
    EDGE_SPLIT,
    EdgeEvent,
)
from repro.cpu.machine import Machine
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import EAX, EBX, ECX, EDI, EDX, ESI, ESP

_MASK = 0xFFFFFFFF

# Instruction categories for the dispatch loop.
_PLAIN = 0
_COND = 1
_JMP = 2
_CALL = 3
_RET = 4
_IND_JMP = 5
_IND_CALL = 6
_REP = 7
_SPLIT = 8
_HLT = 9

#: Default per-run instruction budget (StarDBT counting).
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


def _reader(operand):
    """Compile an operand into a ``fn(machine) -> value`` closure."""
    if isinstance(operand, Reg):
        index = operand.index
        return lambda m: m.regs[index]
    if isinstance(operand, Imm):
        value = operand.value & _MASK
        return lambda m: value
    if isinstance(operand, Mem):
        address = _address(operand)
        return lambda m: m.mem.get(address(m), 0)
    raise ExecutionError("unreadable operand %r" % (operand,))


def _address(mem):
    """Compile a memory operand into an effective-address closure."""
    base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
    if base is not None and index is not None:
        return lambda m: (m.regs[base] + m.regs[index] * scale + disp) & _MASK
    if base is not None:
        return lambda m: (m.regs[base] + disp) & _MASK
    if index is not None:
        return lambda m: (m.regs[index] * scale + disp) & _MASK
    fixed = disp & _MASK
    return lambda m: fixed


def _writer(operand):
    """Compile an operand into a ``fn(machine, value)`` closure."""
    if isinstance(operand, Reg):
        index = operand.index
        def write_reg(m, value):
            m.regs[index] = value
        return write_reg
    if isinstance(operand, Mem):
        address = _address(operand)
        def write_mem(m, value):
            m.mem[address(m)] = value
        return write_mem
    raise ExecutionError("unwritable operand %r" % (operand,))


def _signed(value):
    return value - 0x100000000 if value & 0x80000000 else value


def _compile_alu(opcode, instr):
    dst, src = instr.operands
    read_dst = _reader(dst)
    read_src = _reader(src)
    write_dst = _writer(dst)

    if opcode == "add":
        def execute(m):
            a = read_dst(m)
            b = read_src(m)
            total = a + b
            r = total & _MASK
            write_dst(m, r)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.cf = 1 if total > _MASK else 0
            m.of = ((~(a ^ b) & (a ^ r)) >> 31) & 1
        return execute
    if opcode == "sub":
        def execute(m):
            a = read_dst(m)
            b = read_src(m)
            r = (a - b) & _MASK
            write_dst(m, r)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.cf = 1 if a < b else 0
            m.of = (((a ^ b) & (a ^ r)) >> 31) & 1
        return execute
    if opcode in ("and", "or", "xor"):
        combine = {
            "and": operator.and_, "or": operator.or_, "xor": operator.xor,
        }[opcode]
        def execute(m):
            r = combine(read_dst(m), read_src(m)) & _MASK
            write_dst(m, r)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.cf = 0
            m.of = 0
        return execute
    if opcode == "imul":
        def execute(m):
            product = _signed(read_dst(m)) * _signed(read_src(m))
            r = product & _MASK
            write_dst(m, r)
            overflow = 0 if -0x80000000 <= product <= 0x7FFFFFFF else 1
            m.cf = overflow
            m.of = overflow
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
        return execute
    if opcode == "shl":
        def execute(m):
            a = read_dst(m)
            count = read_src(m) & 31
            r = (a << count) & _MASK
            write_dst(m, r)
            if count:
                m.cf = (a >> (32 - count)) & 1
                m.zf = 1 if r == 0 else 0
                m.sf = (r >> 31) & 1
                m.of = 0
        return execute
    if opcode == "shr":
        def execute(m):
            a = read_dst(m)
            count = read_src(m) & 31
            r = a >> count
            write_dst(m, r)
            if count:
                m.cf = (a >> (count - 1)) & 1
                m.zf = 1 if r == 0 else 0
                m.sf = (r >> 31) & 1
                m.of = 0
        return execute
    if opcode == "sar":
        def execute(m):
            a = _signed(read_dst(m))
            count = read_src(m) & 31
            r = (a >> count) & _MASK
            write_dst(m, r)
            if count:
                m.cf = (a >> (count - 1)) & 1
                m.zf = 1 if r == 0 else 0
                m.sf = (r >> 31) & 1
                m.of = 0
        return execute
    raise ExecutionError("unhandled ALU opcode %r" % opcode)


def _compile_unary(opcode, instr):
    (operand,) = instr.operands
    read = _reader(operand)
    write = _writer(operand)
    if opcode == "inc":
        def execute(m):
            r = (read(m) + 1) & _MASK
            write(m, r)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.of = 1 if r == 0x80000000 else 0
        return execute
    if opcode == "dec":
        def execute(m):
            r = (read(m) - 1) & _MASK
            write(m, r)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.of = 1 if r == 0x7FFFFFFF else 0
        return execute
    if opcode == "neg":
        def execute(m):
            a = read(m)
            r = (-a) & _MASK
            write(m, r)
            m.cf = 1 if a != 0 else 0
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.of = 1 if r == 0x80000000 else 0
        return execute
    if opcode == "not":
        def execute(m):
            write(m, (~read(m)) & _MASK)
        return execute
    raise ExecutionError("unhandled unary opcode %r" % opcode)


def _compile_plain(instr):
    """Compile a non-control, non-REP instruction to an executor closure."""
    opcode = instr.opcode
    kind = instr.kind
    if kind == "alu":
        return _compile_alu(opcode, instr)
    if kind == "unary":
        return _compile_unary(opcode, instr)
    if kind == "mov":
        dst, src = instr.operands
        read_src = _reader(src)
        write_dst = _writer(dst)
        def execute(m):
            write_dst(m, read_src(m) & _MASK)
        return execute
    if kind == "lea":
        dst, src = instr.operands
        if not isinstance(src, Mem):
            raise ExecutionError("lea needs a memory operand")
        address = _address(src)
        write_dst = _writer(dst)
        def execute(m):
            write_dst(m, address(m))
        return execute
    if kind == "cmp":
        a_read = _reader(instr.operands[0])
        b_read = _reader(instr.operands[1])
        def execute(m):
            a = a_read(m)
            b = b_read(m)
            r = (a - b) & _MASK
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.cf = 1 if a < b else 0
            m.of = (((a ^ b) & (a ^ r)) >> 31) & 1
        return execute
    if kind == "test":
        a_read = _reader(instr.operands[0])
        b_read = _reader(instr.operands[1])
        def execute(m):
            r = a_read(m) & b_read(m)
            m.zf = 1 if r == 0 else 0
            m.sf = (r >> 31) & 1
            m.cf = 0
            m.of = 0
        return execute
    if kind == "push":
        read = _reader(instr.operands[0])
        def execute(m):
            esp = (m.regs[ESP] - 4) & _MASK
            m.regs[ESP] = esp
            m.mem[esp] = read(m) & _MASK
        return execute
    if kind == "pop":
        write = _writer(instr.operands[0])
        def execute(m):
            esp = m.regs[ESP]
            write(m, m.mem.get(esp, 0))
            m.regs[ESP] = (esp + 4) & _MASK
        return execute
    if opcode == "nop":
        def execute(m):
            pass
        return execute
    raise ExecutionError("unhandled opcode %r" % opcode)


_CONDITIONS = {
    "z": lambda m: m.zf,
    "nz": lambda m: not m.zf,
    "l": lambda m: m.sf != m.of,
    "ge": lambda m: m.sf == m.of,
    "le": lambda m: m.zf or m.sf != m.of,
    "g": lambda m: not m.zf and m.sf == m.of,
    "b": lambda m: m.cf,
    "ae": lambda m: not m.cf,
    "be": lambda m: m.cf or m.zf,
    "a": lambda m: not m.cf and not m.zf,
    "s": lambda m: m.sf,
    "ns": lambda m: not m.sf,
}


def _compile_rep(instr):
    """Compile a REP string op; the closure returns the iteration count."""
    if instr.opcode == "rep_movsd":
        def execute(m):
            count = m.regs[ECX]
            mem = m.mem
            esi = m.regs[ESI]
            edi = m.regs[EDI]
            for _ in range(count):
                mem[edi & _MASK] = mem.get(esi & _MASK, 0)
                esi += 4
                edi += 4
            m.regs[ESI] = esi & _MASK
            m.regs[EDI] = edi & _MASK
            m.regs[ECX] = 0
            return count
        return execute
    if instr.opcode == "rep_stosd":
        def execute(m):
            count = m.regs[ECX]
            mem = m.mem
            edi = m.regs[EDI]
            value = m.regs[EAX]
            for _ in range(count):
                mem[edi & _MASK] = value
                edi += 4
            m.regs[EDI] = edi & _MASK
            m.regs[ECX] = 0
            return count
        return execute
    raise ExecutionError("unhandled REP opcode %r" % instr.opcode)


def _compile_cpuid():
    """``cpuid``: deterministic vendor answer; exists to split Pin blocks."""
    def execute(m):
        m.regs[EAX] = 0x0000_0001
        m.regs[EBX] = 0x53583836  # "SX86"
        m.regs[ECX] = 0
        m.regs[EDX] = 0
    return execute


class _Decoded:
    """A pre-compiled instruction ready for the dispatch loop."""

    __slots__ = ("category", "run", "instr", "target", "fallthrough")

    def __init__(self, category, run, instr, target=None):
        self.category = category
        self.run = run
        self.instr = instr
        self.target = target
        self.fallthrough = instr.addr + instr.length


class ExecutionResult:
    """Summary of one executor run."""

    __slots__ = ("instrs_dbt", "instrs_pin", "edges", "halted", "final_pc")

    def __init__(self, instrs_dbt, instrs_pin, edges, halted, final_pc):
        self.instrs_dbt = instrs_dbt
        self.instrs_pin = instrs_pin
        self.edges = edges
        self.halted = halted
        self.final_pc = final_pc

    def __repr__(self):
        return "<ExecutionResult dbt=%d pin=%d edges=%d halted=%s>" % (
            self.instrs_dbt,
            self.instrs_pin,
            self.edges,
            self.halted,
        )


class Executor:
    """Runs a program, emitting the dynamic edge stream.

    Parameters
    ----------
    program:
        The assembled program.
    machine:
        Optional pre-configured machine; a fresh one is created otherwise
        and the program's data image is applied either way.
    max_instructions:
        Budget in StarDBT-counted instructions; exceeding it raises
        :class:`~repro.errors.InstructionLimitExceeded`.
    obs:
        Optional :class:`~repro.obs.Observability`.  The dispatch loop
        itself is never instrumented; run totals are flushed into
        ``exec.*`` counters and the ``exec.run`` phase timer at run
        boundaries, so observation costs nothing per instruction.
    """

    def __init__(self, program, machine=None,
                 max_instructions=DEFAULT_MAX_INSTRUCTIONS, obs=None):
        self.program = program
        self.machine = machine if machine is not None else Machine()
        self.machine.apply_image(program)
        self.max_instructions = max_instructions
        self.obs = obs
        self._decoded = self._decode_all(program)

    @staticmethod
    def _decode_all(program):
        decoded = {}
        for instr in program.instructions:
            kind = instr.kind
            if kind == "jcc":
                condition = _CONDITIONS[instr.condition]
                entry = _Decoded(_COND, condition, instr, instr.target)
            elif kind == "jmp":
                if instr.is_indirect:
                    read = _reader(instr.operands[0])
                    entry = _Decoded(_IND_JMP, read, instr)
                else:
                    entry = _Decoded(_JMP, None, instr, instr.target)
            elif kind == "call":
                if instr.is_indirect:
                    read = _reader(instr.operands[0])
                    entry = _Decoded(_IND_CALL, read, instr)
                else:
                    entry = _Decoded(_CALL, None, instr, instr.target)
            elif kind == "ret":
                entry = _Decoded(_RET, None, instr)
            elif kind == "rep":
                entry = _Decoded(_REP, _compile_rep(instr), instr)
            elif instr.opcode == "cpuid":
                entry = _Decoded(_SPLIT, _compile_cpuid(), instr)
            elif instr.opcode == "hlt":
                entry = _Decoded(_HLT, None, instr)
            else:
                entry = _Decoded(_PLAIN, _compile_plain(instr), instr)
            decoded[instr.addr] = entry
        return decoded

    def run(self, on_event=None):
        """Execute from the program entry until ``hlt`` or budget exhaustion.

        ``on_event`` is called with every :class:`EdgeEvent`; pass ``None``
        to run silently (native-execution baseline).
        """
        obs = self.obs
        if obs is None:
            return self._run(on_event)
        with obs.metrics.timer("exec.run"):
            result = self._run(on_event)
        metrics = obs.metrics
        metrics.counter("exec.runs").inc()
        metrics.counter("exec.instructions_dbt").inc(result.instrs_dbt)
        metrics.counter("exec.instructions_pin").inc(result.instrs_pin)
        metrics.counter("exec.edges").inc(result.edges)
        return result

    def _run(self, on_event):
        machine = self.machine
        decoded = self._decoded
        budget = self.max_instructions
        pc = self.program.entry

        total_dbt = 0
        total_pin = 0
        span_dbt = 0  # instructions since the previous event, inclusive
        span_pin = 0
        edges = 0
        halted = False

        while True:
            entry = decoded.get(pc)
            if entry is None:
                raise ExecutionError("control reached non-code address %#x" % pc)
            category = entry.category

            if category == _PLAIN:
                entry.run(machine)
                span_dbt += 1
                span_pin += 1
                pc = entry.fallthrough
                continue

            if category == _COND:
                span_dbt += 1
                span_pin += 1
                taken = bool(entry.run(machine))
                target = entry.target if taken else entry.fallthrough
                if on_event is not None:
                    on_event(
                        EdgeEvent(entry.instr.addr, target, taken, EDGE_COND,
                                  span_dbt, span_pin)
                    )
                edges += 1
                total_dbt += span_dbt
                total_pin += span_pin
                if total_dbt > budget:
                    raise InstructionLimitExceeded(
                        "exceeded %d instructions" % budget
                    )
                span_dbt = 0
                span_pin = 0
                pc = target
                continue

            span_dbt += 1
            span_pin += 1

            if category == _JMP or category == _CALL:
                target = entry.target
                if category == _CALL:
                    esp = (machine.regs[ESP] - 4) & _MASK
                    machine.regs[ESP] = esp
                    machine.mem[esp] = entry.fallthrough
                    kind = EDGE_CALL
                else:
                    kind = EDGE_JMP
                taken = True
            elif category == _RET:
                esp = machine.regs[ESP]
                target = machine.mem.get(esp, 0)
                machine.regs[ESP] = (esp + 4) & _MASK
                kind = EDGE_RET
                taken = True
            elif category == _IND_JMP:
                target = entry.run(machine) & _MASK
                kind = EDGE_IND_JMP
                taken = True
            elif category == _IND_CALL:
                target = entry.run(machine) & _MASK
                esp = (machine.regs[ESP] - 4) & _MASK
                machine.regs[ESP] = esp
                machine.mem[esp] = entry.fallthrough
                kind = EDGE_IND_CALL
                taken = True
            elif category == _REP:
                iterations = entry.run(machine)
                span_pin += max(iterations, 1) - 1  # Pin counts each iteration
                target = entry.fallthrough
                kind = EDGE_SPLIT
                taken = False
            elif category == _SPLIT:
                entry.run(machine)
                target = entry.fallthrough
                kind = EDGE_SPLIT
                taken = False
            else:  # _HLT
                halted = True
                target = entry.instr.addr
                kind = EDGE_JMP
                taken = False

            if halted:
                total_dbt += span_dbt
                total_pin += span_pin
                return ExecutionResult(total_dbt, total_pin, edges, True, pc)

            if on_event is not None:
                on_event(
                    EdgeEvent(entry.instr.addr, target, taken, kind,
                              span_dbt, span_pin)
                )
            edges += 1
            total_dbt += span_dbt
            total_pin += span_pin
            if total_dbt > budget:
                raise InstructionLimitExceeded("exceeded %d instructions" % budget)
            span_dbt = 0
            span_pin = 0
            pc = target


def run_program(program, on_event=None, machine=None,
                max_instructions=DEFAULT_MAX_INSTRUCTIONS, obs=None):
    """One-shot convenience: build an :class:`Executor` and run it."""
    executor = Executor(program, machine=machine,
                        max_instructions=max_instructions, obs=obs)
    return executor.run(on_event)
