"""TEA-to-TEA structural diff and similarity.

Two recordings of the same program rarely build byte-identical
automata: a different hot threshold, recording limit, or minimization
pass moves trace boundaries, merges states, or retargets side exits.
The diff engine answers "what actually changed?" by aligning the two
automata on their **interned PC labels** — the one vocabulary both
sides share regardless of state numbering:

1. Heads are matched by entry PC (the head registry is keyed by the
   trace's entry address on both sides), and NTE matches NTE.
2. The match set grows breadth-first: when two matched states both
   transition on the same label, their destinations are paired —
   exactly how the replayer itself would co-execute the automata.
3. Everything the walk cannot pair is reported as added/removed
   states, added/removed/retargeted transitions, and head churn,
   plus a symmetric similarity score in ``[0, 1]``.

The alignment consumes :class:`~repro.verify.views.AutomatonView`, so
a TEA object graph, a :class:`~repro.core.compiled.CompiledTea`, and
raw TEAB bytes (via ``compile_tea_binary(data, verify=False)``) all
diff through the same code — no program image required.

``identical`` is intentionally strict: it holds exactly when both
automata have the same shape under the alignment (it is ``True`` for
any automaton diffed against itself, including across the object /
compiled representations).
"""

from repro.core.automaton import NTE_SID
from repro.obs import Observability
from repro.verify.views import AutomatonView


def _view(automaton):
    """Coerce a TEA / CompiledTea / AutomatonView to a view."""
    if isinstance(automaton, AutomatonView):
        return automaton
    if hasattr(automaton, "states") and hasattr(automaton, "heads"):
        return AutomatonView.from_tea(automaton)
    return AutomatonView.from_compiled(automaton)


class TeaDiff:
    """Structured outcome of :func:`diff_automata`.

    All counters are plain ints; ``to_json()`` is the wire/CLI shape
    (validated by verify rule TEA054) and ``render_text()`` the human
    one.  ``matching`` maps matched state ids of *a* to their partner
    in *b* (it always contains ``NTE -> NTE``).
    """

    __slots__ = ("label_a", "label_b", "a", "b", "matching", "states",
                 "transitions", "heads", "similarity", "identical")

    def __init__(self, label_a, label_b, a, b, matching, states,
                 transitions, heads, similarity, identical):
        self.label_a = label_a
        self.label_b = label_b
        #: Per-side totals: {"states": n, "transitions": n, "heads": n}.
        self.a = a
        self.b = b
        self.matching = matching
        self.states = states
        self.transitions = transitions
        self.heads = heads
        self.similarity = similarity
        self.identical = identical

    def to_json(self):
        return {
            "a": dict(self.a, label=self.label_a),
            "b": dict(self.b, label=self.label_b),
            "states": dict(self.states),
            "transitions": dict(self.transitions),
            "heads": dict(self.heads),
            "similarity": self.similarity,
            "identical": self.identical,
        }

    def render_text(self):
        lines = [
            "tea diff: %s vs %s" % (self.label_a, self.label_b),
            "  a: %(states)d states, %(transitions)d transitions, "
            "%(heads)d heads" % self.a,
            "  b: %(states)d states, %(transitions)d transitions, "
            "%(heads)d heads" % self.b,
            "  states:      %d matched, %d removed, %d added" % (
                self.states["matched"], self.states["removed"],
                self.states["added"],
            ),
            "  transitions: %d matched, %d removed, %d added, "
            "%d retargeted" % (
                self.transitions["matched"], self.transitions["removed"],
                self.transitions["added"], self.transitions["retargeted"],
            ),
            "  heads:       %d matched, %d removed, %d added, "
            "%d retargeted" % (
                self.heads["matched"], self.heads["removed"],
                self.heads["added"], self.heads["retargeted"],
            ),
            "  similarity:  %.4f%s" % (
                self.similarity, "  (identical)" if self.identical else "",
            ),
        ]
        for side, key in ((self.label_a, "removed_names"),
                          (self.label_b, "added_names")):
            names = self.states[key]
            if names:
                shown = ", ".join(names[:8])
                if len(names) > 8:
                    shown += ", ... (%d total)" % len(names)
                lines.append("  only in %s: %s" % (side, shown))
        return "\n".join(lines)

    def __repr__(self):
        return "<TeaDiff %s vs %s similarity=%.4f%s>" % (
            self.label_a, self.label_b, self.similarity,
            " identical" if self.identical else "",
        )


def _align(va, vb):
    """Greedy BFS state alignment; returns (match_ab, match_ba)."""
    match_ab = {NTE_SID: NTE_SID}
    match_ba = {NTE_SID: NTE_SID}
    queue = []

    def pair(sa, sb):
        if sa not in match_ab and sb not in match_ba:
            match_ab[sa] = sb
            match_ba[sb] = sa
            queue.append((sa, sb))

    heads_b = dict(vb.heads)
    for entry, sa in va.heads:
        sb = heads_b.get(entry)
        if sb is not None:
            pair(sa, sb)
    cursor = 0
    while cursor < len(queue):
        sa, sb = queue[cursor]
        cursor += 1
        edges_b = dict(vb.edges[sb])
        for label, da in va.edges[sa]:
            db = edges_b.get(label)
            if db is not None:
                pair(da, db)
    return match_ab, match_ba


def diff_automata(a, b, label_a="a", label_b="b", obs=None):
    """Diff two automata; returns a :class:`TeaDiff`.

    ``a`` and ``b`` may each be a :class:`~repro.core.automaton.TEA`,
    a :class:`~repro.core.compiled.CompiledTea`, or a pre-built
    :class:`~repro.verify.views.AutomatonView` — mixing representations
    is fine (used by the tests to cross-check object vs compiled).
    """
    obs = obs if obs is not None else Observability()
    metrics = obs.metrics
    with metrics.timer("compare.run"):
        va, vb = _view(a), _view(b)
        match_ab, match_ba = _align(va, vb)

        removed_names = sorted(
            va.names[sid] for sid in range(va.n_states) if sid not in match_ab
        )
        added_names = sorted(
            vb.names[sid] for sid in range(vb.n_states) if sid not in match_ba
        )
        states = {
            "matched": len(match_ab),
            "removed": va.n_states - len(match_ab),
            "added": vb.n_states - len(match_ba),
            "removed_names": removed_names,
            "added_names": added_names,
        }

        trans = {"matched": 0, "removed": 0, "added": 0, "retargeted": 0}
        for sa in range(va.n_states):
            sb = match_ab.get(sa)
            if sb is None:
                trans["removed"] += len(va.edges[sa])
                continue
            edges_b = dict(vb.edges[sb])
            for label, da in va.edges[sa]:
                db = edges_b.get(label)
                if db is None:
                    trans["removed"] += 1
                elif match_ab.get(da) == db:
                    trans["matched"] += 1
                else:
                    trans["retargeted"] += 1
        for sb in range(vb.n_states):
            sa = match_ba.get(sb)
            if sa is None:
                trans["added"] += len(vb.edges[sb])
                continue
            labels_a = {label for label, _ in va.edges[sa]}
            trans["added"] += sum(
                1 for label, _ in vb.edges[sb] if label not in labels_a
            )

        heads = {"matched": 0, "removed": 0, "added": 0, "retargeted": 0,
                 "removed_entries": [], "added_entries": []}
        heads_b = dict(vb.heads)
        entries_a = set()
        for entry, sa in va.heads:
            entries_a.add(entry)
            sb = heads_b.get(entry)
            if sb is None:
                heads["removed"] += 1
                heads["removed_entries"].append(entry)
            elif match_ab.get(sa) == sb:
                heads["matched"] += 1
            else:
                heads["retargeted"] += 1
        for entry, _ in vb.heads:
            if entry not in entries_a:
                heads["added"] += 1
                heads["added_entries"].append(entry)

        totals_a = {
            "states": va.n_states,
            "transitions": sum(len(edges) for edges in va.edges),
            "heads": len(va.heads),
        }
        totals_b = {
            "states": vb.n_states,
            "transitions": sum(len(edges) for edges in vb.edges),
            "heads": len(vb.heads),
        }
        shared = states["matched"] + trans["matched"] + heads["matched"]
        weight = (sum(totals_a.values()) + sum(totals_b.values()))
        similarity = (2.0 * shared / weight) if weight else 1.0

        identical = (
            states["removed"] == 0 and states["added"] == 0
            and trans["removed"] == 0 and trans["added"] == 0
            and trans["retargeted"] == 0
            and heads["removed"] == 0 and heads["added"] == 0
            and heads["retargeted"] == 0
        )
        diff = TeaDiff(label_a, label_b, totals_a, totals_b, match_ab,
                       states, trans, heads, round(similarity, 6),
                       identical)
    metrics.counter("compare.runs").inc()
    metrics.counter("compare.states_removed").inc(states["removed"])
    metrics.counter("compare.states_added").inc(states["added"])
    return diff


def replay_delta(result_a, result_b):
    """Numeric deltas (b minus a) between two replay-report dicts.

    Accepts the shape produced by the service ``replay`` RPC /
    :class:`~repro.core.replay.TeaReplayer` reports: top-level numeric
    fields (``cycles``, ``coverage_pin`` ...) and the nested ``stats``
    counter dict.  Non-numeric and one-sided fields are skipped, so the
    helper is safe across report versions.
    """
    delta = {}
    for key in sorted(set(result_a) & set(result_b)):
        xa, xb = result_a[key], result_b[key]
        if isinstance(xa, bool) or isinstance(xb, bool):
            continue
        if isinstance(xa, (int, float)) and isinstance(xb, (int, float)):
            delta[key] = xb - xa
    stats_a = result_a.get("stats")
    stats_b = result_b.get("stats")
    if isinstance(stats_a, dict) and isinstance(stats_b, dict):
        delta["stats"] = {
            key: stats_b[key] - stats_a[key]
            for key in sorted(set(stats_a) & set(stats_b))
            if isinstance(stats_a[key], (int, float))
            and isinstance(stats_b[key], (int, float))
        }
    return delta
