"""TEA-to-TEA diffing: label-keyed alignment + similarity scoring.

See :mod:`repro.compare.diff` for the algorithm and
``docs/minimize_and_diff.md`` for the user-facing tour.
"""

from repro.compare.diff import TeaDiff, diff_automata, replay_delta

__all__ = ["TeaDiff", "diff_automata", "replay_delta"]
