"""Blocking client for the TEA replay service.

A thin synchronous library over the length-prefixed JSON protocol so
tests, the harness and scripts can talk to a running server without
touching asyncio.  One :class:`ServiceClient` wraps one TCP connection;
it is not thread-safe — give each thread its own client (connections
are cheap, and the server multiplexes them all).

Responses are matched to requests by ``id``, so a client may also
pipeline: :meth:`call_many` sends a batch of requests back-to-back and
collects the replies in request order even if the server answers out
of order.

Against a cluster router the interesting failures are *transient* —
``overloaded`` (every worker queue full), ``quota-exceeded`` (token
bucket empty) and ``worker-unavailable`` (ring mid-eviction) — so the
client takes an optional :class:`RetryPolicy`: retryable errors are
retried with capped exponential backoff, everything else raises
immediately, and each retry/giveup is counted in ``client.*`` metrics.
"""

import socket
import time

from repro.obs import Observability
from repro.service.protocol import (
    MAX_PAYLOAD_DEFAULT,
    RETRYABLE_CODES,
    ProtocolError,
    ServiceError,
    read_frame_blocking,
    write_frame_blocking,
)


class RetryPolicy:
    """Capped exponential backoff for transient service errors.

    ``attempts`` bounds the *total* number of tries (so ``attempts=1``
    disables retries); the delay before retry ``n`` (0-based) is
    ``min(max_delay, base_delay * multiplier ** n)``.  ``sleep`` is
    injectable so tests can count backoffs without waiting them out.
    """

    __slots__ = ("attempts", "base_delay", "max_delay", "multiplier",
                 "sleep")

    def __init__(self, attempts=4, base_delay=0.05, max_delay=2.0,
                 multiplier=2.0, sleep=time.sleep):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.sleep = sleep

    def delay(self, attempt):
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** attempt)


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.TeaService`
    or :class:`~repro.cluster.ClusterRouter` (same wire protocol).

    Usable as a context manager::

        with ServiceClient(host, port) as client:
            report = client.replay(snapshot=key)

    With a :class:`RetryPolicy`, retryable structured errors
    (``overloaded``, ``quota-exceeded``, ``worker-unavailable``) and
    transport drops are retried with backoff; see docs/cluster.md.
    """

    def __init__(self, host="127.0.0.1", port=7321, timeout=60.0,
                 max_payload=MAX_PAYLOAD_DEFAULT, retry=None, obs=None):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_payload = max_payload
        self.retry = retry
        self.obs = obs if obs is not None else Observability()
        self._sock = None
        self._next_id = 0
        self._stash = {}  # responses received for other request ids

    # ------------------------------------------------------------------

    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------

    def _send_request(self, method, params):
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        write_frame_blocking(
            self._sock,
            {"id": request_id, "method": method, "params": params},
        )
        return request_id

    def _receive(self, request_id):
        if request_id in self._stash:
            return self._stash.pop(request_id)
        while True:
            reply = read_frame_blocking(self._sock, self.max_payload)
            if reply is None:
                raise ProtocolError(
                    "server closed the connection before replying"
                )
            if reply.get("id") == request_id:
                return reply
            self._stash[reply.get("id")] = reply

    @staticmethod
    def _unwrap(reply):
        if reply.get("ok"):
            return reply.get("result")
        error = reply.get("error") or {}
        raise ServiceError(
            error.get("code", "unknown"), error.get("message", "")
        )

    def call(self, method, **params):
        """One RPC round-trip; returns the result or raises ServiceError.

        With a :class:`RetryPolicy` set, retryable errors back off and
        retry (the RPCs are idempotent reads, so a retry after a
        transport drop cannot double-apply anything); attempts are
        capped by ``retry.attempts`` and the final error re-raises.
        """
        policy = self.retry
        self.obs.metrics.counter("client.requests").inc()
        if policy is None:
            request_id = self._send_request(method, params)
            return self._unwrap(self._receive(request_id))
        for attempt in range(policy.attempts):
            last = attempt + 1 >= policy.attempts
            try:
                request_id = self._send_request(method, params)
                return self._unwrap(self._receive(request_id))
            except ServiceError as error:
                if error.code not in RETRYABLE_CODES:
                    raise
                if last:
                    self.obs.metrics.counter(
                        "client.retries_exhausted").inc()
                    raise
                self.obs.metrics.counter("client.retries").inc()
                self.obs.metrics.counter(
                    "client.retry.%s" % error.code).inc()
            except (ConnectionError, ProtocolError, OSError):
                # The far end dropped us mid-call (e.g. a router or
                # worker restart).  Reconnect fresh and retry.
                self.close()
                self._stash.clear()
                if last:
                    self.obs.metrics.counter(
                        "client.retries_exhausted").inc()
                    raise
                self.obs.metrics.counter("client.retries").inc()
                self.obs.metrics.counter("client.retry.transport").inc()
            policy.sleep(policy.delay(attempt))

    def call_many(self, requests):
        """Pipeline ``[(method, params), ...]`` on this connection.

        All requests are written before any reply is read; results come
        back in request order.  Raises on the first failed reply.
        """
        ids = [
            self._send_request(method, params)
            for method, params in requests
        ]
        return [self._unwrap(self._receive(request_id)) for request_id in ids]

    # -- convenience wrappers ------------------------------------------

    def ping(self):
        return self.call("ping")

    def snapshots(self):
        return self.call("snapshots")["snapshots"]

    def snapshot_info(self, snapshot=None):
        params = {} if snapshot is None else {"snapshot": snapshot}
        return self.call("snapshot-info", **params)

    def replay(self, snapshot=None, config="global_local", batch=None,
               engine=None):
        params = {"config": config}
        if snapshot is not None:
            params["snapshot"] = snapshot
        if batch is not None:
            params["batch"] = batch
        if engine is not None:
            params["engine"] = engine
        return self.call("replay", **params)

    def coverage(self, snapshot=None, config="global_local", engine=None):
        params = {"config": config}
        if snapshot is not None:
            params["snapshot"] = snapshot
        if engine is not None:
            params["engine"] = engine
        return self.call("coverage", **params)

    def diff(self, b, a=None, config=None, engine=None, replay=False):
        """Diff snapshot ``a`` (default resolution) against ``b``."""
        params = {"b": b}
        if a is not None:
            params["snapshot"] = a
        if config is not None:
            params["config"] = config
        if engine is not None:
            params["engine"] = engine
        if replay:
            params["replay"] = True
        return self.call("diff", **params)

    def step_batch(self, labels, snapshot=None, start=0,
                   return_states=False):
        params = {"labels": list(labels), "start": start,
                  "return_states": return_states}
        if snapshot is not None:
            params["snapshot"] = snapshot
        return self.call("step-batch", **params)

    def stats(self):
        return self.call("stats")

    def shutdown(self):
        return self.call("shutdown")

    def __repr__(self):
        state = "connected" if self._sock is not None else "idle"
        return "<ServiceClient %s:%d %s>" % (self.host, self.port, state)
