"""Blocking client for the TEA replay service.

A thin synchronous library over the length-prefixed JSON protocol so
tests, the harness and scripts can talk to a running server without
touching asyncio.  One :class:`ServiceClient` wraps one TCP connection;
it is not thread-safe — give each thread its own client (connections
are cheap, and the server multiplexes them all).

Responses are matched to requests by ``id``, so a client may also
pipeline: :meth:`call_many` sends a batch of requests back-to-back and
collects the replies in request order even if the server answers out
of order.
"""

import socket

from repro.service.protocol import (
    MAX_PAYLOAD_DEFAULT,
    ProtocolError,
    ServiceError,
    read_frame_blocking,
    write_frame_blocking,
)


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.TeaService`.

    Usable as a context manager::

        with ServiceClient(host, port) as client:
            report = client.replay(snapshot=key)
    """

    def __init__(self, host="127.0.0.1", port=7321, timeout=60.0,
                 max_payload=MAX_PAYLOAD_DEFAULT):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_payload = max_payload
        self._sock = None
        self._next_id = 0
        self._stash = {}  # responses received for other request ids

    # ------------------------------------------------------------------

    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------

    def _send_request(self, method, params):
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        write_frame_blocking(
            self._sock,
            {"id": request_id, "method": method, "params": params},
        )
        return request_id

    def _receive(self, request_id):
        if request_id in self._stash:
            return self._stash.pop(request_id)
        while True:
            reply = read_frame_blocking(self._sock, self.max_payload)
            if reply is None:
                raise ProtocolError(
                    "server closed the connection before replying"
                )
            if reply.get("id") == request_id:
                return reply
            self._stash[reply.get("id")] = reply

    @staticmethod
    def _unwrap(reply):
        if reply.get("ok"):
            return reply.get("result")
        error = reply.get("error") or {}
        raise ServiceError(
            error.get("code", "unknown"), error.get("message", "")
        )

    def call(self, method, **params):
        """One RPC round-trip; returns the result or raises ServiceError."""
        request_id = self._send_request(method, params)
        return self._unwrap(self._receive(request_id))

    def call_many(self, requests):
        """Pipeline ``[(method, params), ...]`` on this connection.

        All requests are written before any reply is read; results come
        back in request order.  Raises on the first failed reply.
        """
        ids = [
            self._send_request(method, params)
            for method, params in requests
        ]
        return [self._unwrap(self._receive(request_id)) for request_id in ids]

    # -- convenience wrappers ------------------------------------------

    def ping(self):
        return self.call("ping")

    def snapshots(self):
        return self.call("snapshots")["snapshots"]

    def snapshot_info(self, snapshot=None):
        params = {} if snapshot is None else {"snapshot": snapshot}
        return self.call("snapshot-info", **params)

    def replay(self, snapshot=None, config="global_local", batch=None,
               engine=None):
        params = {"config": config}
        if snapshot is not None:
            params["snapshot"] = snapshot
        if batch is not None:
            params["batch"] = batch
        if engine is not None:
            params["engine"] = engine
        return self.call("replay", **params)

    def coverage(self, snapshot=None, config="global_local", engine=None):
        params = {"config": config}
        if snapshot is not None:
            params["snapshot"] = snapshot
        if engine is not None:
            params["engine"] = engine
        return self.call("coverage", **params)

    def step_batch(self, labels, snapshot=None, start=0,
                   return_states=False):
        params = {"labels": list(labels), "start": start,
                  "return_states": return_states}
        if snapshot is not None:
            params["snapshot"] = snapshot
        return self.call("step-batch", **params)

    def stats(self):
        return self.call("stats")

    def shutdown(self):
        return self.call("shutdown")

    def __repr__(self):
        state = "connected" if self._sock is not None else "idle"
        return "<ServiceClient %s:%d %s>" % (self.host, self.port, state)
