"""The TEA replay service: an asyncio JSON-over-TCP automaton server.

The paper's headline result is cross-system replay — traces recorded in
one world (StarDBT) driving execution observation in another (Pin).
This server is the "many futures" version of that hand-off: it preloads
binary automaton snapshots from an :class:`~repro.store.AutomatonStore`
once, then serves replay, coverage, automaton-walk and introspection
requests to any number of concurrent clients, none of which ever
re-runs Algorithm 1.

Concurrency model
-----------------
- one asyncio task per connection reads frames and spawns one task per
  request, so a single connection can pipeline requests (responses are
  matched by ``id``, written under a per-connection lock);
- CPU-bound replays run in a configurable thread worker pool via
  ``run_in_executor``; the preloaded program image, trace set and TEA
  are shared read-only across workers (each replay builds its own
  directory, local caches and stats);
- every request is bounded by ``request_timeout`` and every frame by
  ``max_payload`` — violations produce structured error replies
  (:mod:`repro.service.protocol` error codes), never a silent hangup;
- ``SIGTERM``/``shutdown`` drain gracefully: the listener closes, new
  requests are refused with ``shutting-down``, and every in-flight
  request completes and is answered before the process exits.

All traffic is metered through ``repro.obs`` (``service.*`` counters,
per-method latency timers) and exported via the ``stats`` RPC.
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import __version__
from repro.cfg.basic_block import BlockIndex
from repro.core import ReplayConfig
from repro.errors import ReproError, SerializationError, VerificationError
from repro.obs import Observability
from repro.pin import Pin, TeaReplayTool, run_native
from repro.service.protocol import (
    E_INTERNAL,
    E_INVALID,
    E_METHOD,
    E_PARAMS,
    E_PARSE,
    E_SHUTDOWN,
    E_SNAPSHOT,
    E_TIMEOUT,
    E_TOO_LARGE,
    MAX_PAYLOAD_DEFAULT,
    PayloadTooLarge,
    ProtocolError,
    encode_frame,
    error_reply,
    read_frame,
    result_reply,
)
from repro.store.binary import (
    compile_tea_binary,
    load_tea_binary,
    peek_tea_binary,
)
from repro.workloads import load_benchmark

#: Replay configuration names accepted by the ``replay``/``coverage``
#: RPCs (the Table 4 axes, same names as the tools CLI).
REPLAY_CONFIGS = {
    "global_local": ReplayConfig.global_local,
    "global_no_local": ReplayConfig.global_no_local,
    "no_global_local": ReplayConfig.no_global_local,
    "no_global_no_local": ReplayConfig.no_global_no_local,
}

#: Engines the ``replay``/``coverage`` RPCs accept.  The compiled
#: flat-table engine is the default: every preloaded snapshot carries a
#: ready :class:`~repro.core.compiled.CompiledTea` (lowered straight
#: from the snapshot bytes), the accounting is identical, and it is the
#: faster dispatch loop.  ``engine="object"`` keeps the TeaReplayer
#: object walk for differential checks; ``engine="jit"`` drives
#: per-automaton generated code (specialized lazily per config on first
#: request, shared read-only across workers thereafter) — identical
#: accounting again, faster still.  The default stays ``compiled``
#: until the JIT bench gate has soaked.
REPLAY_ENGINES = ("object", "compiled", "jit")
DEFAULT_ENGINE = "compiled"


class ServiceSetupError(ReproError):
    """The service could not preload its snapshots."""


class _BadParams(ReproError):
    """Internal: invalid params for an RPC (mapped to ``bad-params``)."""


class _UnknownSnapshot(ReproError):
    """Internal: no such snapshot (mapped to ``unknown-snapshot``)."""


class _InvalidSnapshot(ReproError):
    """Internal: snapshot failed verification (``invalid-automaton``)."""


class ServiceConfig:
    """Operational knobs for one :class:`TeaService` instance."""

    __slots__ = ("host", "port", "workers", "request_timeout",
                 "max_payload", "drain_timeout", "debug", "verify")

    def __init__(self, host="127.0.0.1", port=0, workers=4,
                 request_timeout=60.0, max_payload=MAX_PAYLOAD_DEFAULT,
                 drain_timeout=30.0, debug=False, verify=True):
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.request_timeout = request_timeout
        self.max_payload = max_payload
        self.drain_timeout = drain_timeout
        #: Enables the ``sleep`` RPC (used by the timeout/drain tests).
        self.debug = debug
        #: Opt-out gate: statically verify every snapshot at preload;
        #: failing snapshots are quarantined (``invalid-automaton``
        #: RPC errors) instead of crashing startup.
        self.verify = bool(verify)


class SnapshotEntry:
    """One preloaded snapshot: program image + trace set + automaton.

    v2 snapshots additionally carry the read-only
    :class:`~repro.store.mapping.SnapshotMapping` their compiled tables
    view into (``mapping``); hot-reload retires an entry by flagging
    ``retired`` and closes the mapping once ``inflight`` — the number
    of replay/diff requests currently using the entry, maintained on
    the event loop — drains to zero.
    """

    __slots__ = ("key", "meta", "label", "program", "block_index",
                 "trace_set", "tea", "compiled", "profile", "n_bytes",
                 "mapping", "inflight", "retired",
                 "_native_cycles", "_jit_codes", "_jit_lock")

    def __init__(self, key, meta, program, trace_set, tea, profile, n_bytes,
                 compiled=None, mapping=None):
        self.key = key
        self.meta = meta or {}
        self.label = self.meta.get("label") or self.meta.get("benchmark") or key
        self.program = program
        self.block_index = BlockIndex(program)
        self.trace_set = trace_set
        self.tea = tea
        self.compiled = compiled
        self.profile = profile
        self.n_bytes = n_bytes
        self.mapping = mapping
        self.inflight = 0
        self.retired = False
        self._native_cycles = None
        # JIT codes are specialized per replay config, lazily, on the
        # worker threads — hence the lock (JitCode itself is immutable
        # and shared read-only once built).
        self._jit_codes = {}
        self._jit_lock = threading.Lock()

    def jit_for(self, config):
        """The (cached) specialized :class:`~repro.core.jit.JitCode`
        for this snapshot under ``config``."""
        from repro.core.jit import JitCode, jit_config_token

        token = jit_config_token(config)
        with self._jit_lock:
            code = self._jit_codes.get(token)
        if code is None:
            code = JitCode.from_compiled(self.compiled, config=config)
            with self._jit_lock:
                code = self._jit_codes.setdefault(token, code)
        return code

    def describe(self):
        return {
            "key": self.key,
            "label": self.label,
            "benchmark": self.meta.get("benchmark"),
            "scale": self.meta.get("scale"),
            "kind": self.trace_set.kind,
            "traces": len(self.trace_set),
            "tbbs": self.trace_set.n_tbbs,
            "edges": self.trace_set.n_edges,
            "states": self.tea.n_states,
            "transitions": self.tea.n_transitions,
            "heads": self.tea.n_traces,
            "profile": self.profile is not None,
            "bytes": self.n_bytes,
            "meta": self.meta,
        }


def load_entry(key, data, verify=True, mapping=None):
    """Preload one snapshot's bytes into a :class:`SnapshotEntry`.

    The snapshot's meta must name the benchmark it was recorded from
    (``repro.service build`` records it) so the program image can be
    regenerated — the service equivalent of the paper's requirement
    that both systems agree on the program's address space.

    With ``verify=True`` the static snapshot rules run over the bytes
    first; damage raises :class:`~repro.errors.VerificationError` with
    the offending rule ids, which :meth:`TeaService.preload` turns
    into a quarantined entry rather than a startup crash.

    ``mapping`` (a :class:`~repro.store.mapping.SnapshotMapping` whose
    bytes ``data`` must be) makes the entry zero-copy: the compiled
    automaton's tables become views into the shared read-only ``mmap``
    instead of private decoded arrays, so N service workers mapping the
    same snapshot share one page-cache copy.
    """
    if verify:
        from repro.verify import verify_snapshot_bytes

        verify_snapshot_bytes(data, source=key, deep=False).raise_on_error()
    info = peek_tea_binary(data)
    meta = info["meta"] or {}
    benchmark = meta.get("benchmark")
    if not benchmark:
        raise ServiceSetupError(
            "snapshot %s has no 'benchmark' in its meta; rebuild it with "
            "'python -m repro.service build'" % key[:12]
        )
    scale = float(meta.get("scale", 1.0))
    program = load_benchmark(benchmark, scale=scale).program
    trace_set, tea, profile = load_tea_binary(data, BlockIndex(program))
    # Lower the snapshot's automaton tables into the compiled flat-table
    # layout once, up front; the successor dispatch dicts are built
    # eagerly so the worker pool shares them read-only from the start.
    if mapping is not None:
        compiled = mapping.compiled()
    else:
        compiled = compile_tea_binary(data, verify=False)
    compiled.successor_maps()
    return SnapshotEntry(key, meta, program, trace_set, tea, profile,
                         len(data), compiled=compiled, mapping=mapping)


class TeaService:
    """The replay server.  ``await start()``, then ``serve_forever()``.

    Parameters
    ----------
    store:
        The :class:`~repro.store.AutomatonStore` to preload (every
        snapshot in it is served).
    config:
        :class:`ServiceConfig`; defaults are fine for tests.
    obs:
        Optional shared :class:`~repro.obs.Observability`.
    """

    def __init__(self, store, config=None, obs=None):
        self.store = store
        self.config = config or ServiceConfig()
        self.obs = obs if obs is not None else Observability()
        self.entries = {}          # key -> SnapshotEntry
        self.invalid = {}          # key -> {"error": ..., "rules": [...]}
        self._aliases = {}         # label/benchmark -> key
        self._server = None
        self._pool = None
        self._inflight = set()
        self._draining = False
        self._drain_hooks = []     # callables run as the drain begins
        self._stopped = None       # asyncio.Event, created in start()
        self._started_at = None
        self._replay_memo = {}     # (key, config) -> result dict
        self._replay_memo_lock = None
        metrics = self.obs.metrics
        self._requests = metrics.counter("service.requests")
        self._ok = metrics.counter("service.ok")
        self._errors = metrics.counter("service.errors")
        self._bytes_in = metrics.counter("service.bytes_in")
        self._bytes_out = metrics.counter("service.bytes_out")
        self._connections = metrics.counter("service.connections")
        self._verify_ok = metrics.counter("service.verify_ok")
        self._verify_failed = metrics.counter("service.verify_failed")
        self._active = metrics.gauge("service.connections_active")
        self._active.set(0)
        self._methods = {
            "ping": self._rpc_ping,
            "snapshots": self._rpc_snapshots,
            "snapshot-info": self._rpc_snapshot_info,
            "replay": self._rpc_replay,
            "coverage": self._rpc_coverage,
            "diff": self._rpc_diff,
            "step-batch": self._rpc_step_batch,
            "stats": self._rpc_stats,
            "reload": self._rpc_reload,
            "shutdown": self._rpc_shutdown,
        }
        if self.config.debug:
            self._methods["sleep"] = self._rpc_sleep

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def preload(self):
        """Load every snapshot in the store (idempotent, synchronous).

        Snapshots that fail static verification (or cannot be decoded
        at all) are *quarantined* in :attr:`invalid` — the service
        still starts, and requests naming them get a structured
        ``invalid-automaton`` error instead of a crash.  A snapshot
        without benchmark meta remains a hard setup error: that is a
        deployment mistake, not data damage.
        """
        with self.obs.metrics.timer("service.preload"):
            for key in self.store.keys():
                if key in self.entries or key in self.invalid:
                    continue
                try:
                    entry = self._load_key(key)
                except VerificationError as error:
                    self._verify_failed.inc()
                    self.invalid[key] = {
                        "error": str(error),
                        "rules": error.rule_ids,
                    }
                    continue
                except SerializationError as error:
                    self._verify_failed.inc()
                    self.invalid[key] = {"error": str(error), "rules": []}
                    continue
                self._verify_ok.inc()
                self.entries[key] = entry
                self._aliases.setdefault(entry.label, key)
                benchmark = entry.meta.get("benchmark")
                if benchmark:
                    self._aliases.setdefault(benchmark, key)
        self._refresh_gauges()

    def _load_key(self, key):
        """Load one snapshot — zero-copy off a shared ``mmap`` for v2
        files, a private decoded copy for v1."""
        from repro.store.mapping import open_snapshot_mapping

        mapping = open_snapshot_mapping(self.store.path_for(key))
        try:
            data = (mapping.data if mapping is not None
                    else self.store.get_bytes(key))
            return load_entry(key, data, verify=self.config.verify,
                              mapping=mapping)
        except BaseException:
            if mapping is not None:
                mapping.close()
            raise

    def _refresh_gauges(self):
        self.obs.metrics.set_gauge("service.snapshots", len(self.entries))
        self.obs.metrics.set_gauge("service.snapshots_invalid",
                                   len(self.invalid))

    async def start(self):
        """Preload snapshots, bind the listener, spin up the pool."""
        if not len(self.store):
            raise ServiceSetupError(
                "store %s holds no snapshots; build one with "
                "'python -m repro.service build'" % self.store.root
            )
        # Loop-bound primitives are created here, inside the running
        # loop, so the service object itself can be built anywhere.
        # The pool exists before the preload so the store walk (file
        # I/O, mmap, verify-on-load) runs off the event loop — the
        # loop stays responsive while a large fleet loads (TEA080).
        self._stopped = asyncio.Event()
        self._replay_memo_lock = asyncio.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="tea-replay"
        )
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(self._pool, self.preload)
        if not self.entries:
            raise ServiceSetupError(
                "all %d snapshot(s) in store %s failed verification"
                % (len(self.invalid), self.store.root)
            )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        self._started_at = time.monotonic()
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        sockets = self._server.sockets
        return sockets[0].getsockname()[:2]

    async def serve_forever(self):
        """Block until :meth:`stop` completes."""
        await self._stopped.wait()

    def initiate_shutdown(self):
        """Begin a graceful drain from the event loop (signal-safe)."""
        if not self._draining:
            asyncio.ensure_future(self.stop())

    def add_drain_hook(self, hook):
        """Register a callable to run when a drain begins.

        Hooks run synchronously, in registration order, right after the
        listener closes and before in-flight requests are awaited — a
        cluster worker uses one to deregister from its router so no new
        forwards race the drain.  Hook exceptions are swallowed: a
        failing deregistration must not block the drain.
        """
        self._drain_hooks.append(hook)

    async def stop(self):
        """Graceful drain: refuse new work, finish in-flight, close."""
        if self._server is None:
            return
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        for hook in self._drain_hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 — never block the drain
                pass
        pending = [task for task in self._inflight if not task.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for task in still_pending:
                task.cancel()
        self._pool.shutdown(wait=False)
        for entry in self.entries.values():
            if entry.mapping is not None:
                entry.mapping.close()
        self._stopped.set()

    # ------------------------------------------------------------------
    # hot-reload plumbing (all entry/memo mutation on the event loop)
    # ------------------------------------------------------------------

    def _retire(self, entry):
        """Take ``entry`` out of service; release it once it drains.

        The entry is already unreachable (popped from :attr:`entries`),
        so no new request can pick it up; requests that resolved it
        before the swap finish against the old tables and trigger
        :meth:`_finalize` from their own ``finally`` when the last one
        completes.
        """
        entry.retired = True
        if entry.inflight == 0:
            self._finalize(entry)

    def _finalize(self, entry):
        """Drop a drained retired entry's memoized results and mapping."""
        for memo_key in [key for key in self._replay_memo
                         if key[0] == entry.key]:
            del self._replay_memo[memo_key]
        if entry.mapping is not None:
            entry.mapping.close()

    def _release(self, entry):
        """Count one in-flight request done (event-loop-confined)."""
        entry.inflight -= 1
        if entry.retired and entry.inflight == 0:
            self._finalize(entry)

    def _load_new_entries(self, known):
        """Worker-pool body of ``reload``: load unseen store keys.

        Also returns the full set of keys currently present in the
        store — the retire scan needs it, and computing it here keeps
        the store's directory walk off the event loop (TEA080).
        """
        added = []
        invalid = []
        present = set(self.store.keys())
        for key in sorted(present):
            if key in known:
                continue
            try:
                entry = self._load_key(key)
            except VerificationError as error:
                invalid.append((key, {"error": str(error),
                                      "rules": error.rule_ids}))
            except SerializationError as error:
                invalid.append((key, {"error": str(error), "rules": []}))
            else:
                added.append((key, entry))
        return added, invalid, present

    async def _rpc_reload(self, params):
        """Hot-swap: pick up store changes without dropping a request.

        New snapshots are loaded off the event loop (in the worker
        pool), then applied atomically on it: entries registered,
        label/benchmark aliases repointed latest-wins, and every entry
        that a new snapshot's ``meta["supersedes"]`` names — or whose
        backing file is gone from the store (e.g. after ``store gc``) —
        is retired.  Retired entries stay alive for their in-flight
        replays and are finalized (memo purge + mapping close) when the
        last one drains, so concurrent clients see zero dropped or
        wrong answers across the swap.
        """
        loop = asyncio.get_event_loop()
        known = set(self.entries) | set(self.invalid)
        added, invalid, present = await loop.run_in_executor(
            self._pool, self._load_new_entries, known
        )
        for _key, _entry in added:
            self._verify_ok.inc()
        for key, info in invalid:
            self._verify_failed.inc()
            self.invalid[key] = info
        superseded = set()
        for key, entry in added:
            self.entries[key] = entry
            self._aliases[entry.label] = key
            benchmark = entry.meta.get("benchmark")
            if benchmark:
                self._aliases[benchmark] = key
            names = entry.meta.get("supersedes")
            if isinstance(names, str):
                names = (names,)
            superseded.update(name for name in names or () if name != key)
        retired = sorted(
            key for key in self.entries
            if key in superseded or key not in present
        )
        for key in retired:
            self._retire(self.entries.pop(key))
        for key in list(self.invalid):
            if key not in present:
                del self.invalid[key]
        self._aliases = {
            alias: key for alias, key in self._aliases.items()
            if key in self.entries
        }
        self._refresh_gauges()
        return {
            "loaded": sorted(key for key, _entry in added),
            "retired": retired,
            "invalid": sorted(key for key, _info in invalid),
            "snapshots": len(self.entries),
        }

    # ------------------------------------------------------------------
    # connection / request plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self._connections.inc()
        self._active.value = (self._active.value or 0) + 1
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, self.config.max_payload,
                        counter=self._bytes_in,
                    )
                except PayloadTooLarge as error:
                    await self._send(
                        writer, write_lock,
                        error_reply(None, E_TOO_LARGE, error),
                    )
                    self._errors.inc()
                    break
                except ProtocolError as error:
                    await self._send(
                        writer, write_lock,
                        error_reply(None, E_PARSE, error),
                    )
                    self._errors.inc()
                    break
                if request is None:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock)
                )
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # Answer everything already accepted before closing — this
            # is what "no pending-request loss" means on drain.
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._active.value = (self._active.value or 0) - 1

    async def _send(self, writer, lock, reply):
        data = encode_frame(reply)
        async with lock:
            writer.write(data)
            await writer.drain()
        self._bytes_out.inc(len(data))

    async def _serve_request(self, request, writer, write_lock):
        request_id = request.get("id")
        method = request.get("method")
        self._requests.inc()
        started = time.perf_counter()
        if self._draining:
            reply = error_reply(
                request_id, E_SHUTDOWN, "server is draining"
            )
        else:
            handler = self._methods.get(method)
            if handler is None:
                reply = error_reply(
                    request_id, E_METHOD, "unknown method %r" % method
                )
            else:
                reply = await self._invoke(handler, request, request_id)
        if reply.get("ok"):
            self._ok.inc()
        else:
            self._errors.inc()
        try:
            await self._send(writer, write_lock, reply)
        except (ConnectionError, OSError):
            pass
        if method in self._methods:
            # Manual latency accumulation: PhaseTimer's start/stop guard
            # rejects overlap, and requests of one method do overlap.
            timer = self.obs.metrics.timer("service.latency.%s" % method)
            timer.elapsed += time.perf_counter() - started
            timer.count += 1
            self.obs.metrics.counter("service.method.%s" % method).inc()

    async def _invoke(self, handler, request, request_id):
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return error_reply(request_id, E_PARAMS,
                               "params must be an object")
        try:
            result = await asyncio.wait_for(
                handler(params), timeout=self.config.request_timeout
            )
            return result_reply(request_id, result)
        except asyncio.TimeoutError:
            return error_reply(
                request_id, E_TIMEOUT,
                "request exceeded %.1fs" % self.config.request_timeout,
            )
        except _BadParams as error:
            return error_reply(request_id, E_PARAMS, error)
        except _UnknownSnapshot as error:
            return error_reply(request_id, E_SNAPSHOT, error)
        except _InvalidSnapshot as error:
            return error_reply(request_id, E_INVALID, error)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — structured reply
            return error_reply(
                request_id, E_INTERNAL,
                "%s: %s" % (type(error).__name__, error),
            )

    # ------------------------------------------------------------------
    # RPC methods
    # ------------------------------------------------------------------

    def _resolve(self, params):
        name = params.get("snapshot")
        if name is None:
            if len(self.entries) == 1:
                return next(iter(self.entries.values()))
            raise _BadParams(
                "'snapshot' is required when multiple snapshots are loaded"
            )
        key = self._aliases.get(name, name)
        entry = self.entries.get(key)
        if entry is None:
            quarantined = self.invalid.get(key)
            if quarantined is not None:
                raise _InvalidSnapshot(
                    "snapshot %r failed static verification (%s): %s"
                    % (name, ", ".join(quarantined["rules"]) or "decode",
                       quarantined["error"])
                )
            raise _UnknownSnapshot("no snapshot %r is loaded" % name)
        return entry

    async def _rpc_ping(self, params):
        return {"pong": True, "role": "worker", "version": __version__,
                "snapshots": len(self.entries)}

    async def _rpc_snapshots(self, params):
        result = {
            "snapshots": [
                self.entries[key].describe()
                for key in sorted(self.entries)
            ]
        }
        if self.invalid:
            result["invalid"] = [
                {"key": key, **self.invalid[key]}
                for key in sorted(self.invalid)
            ]
        return result

    async def _rpc_snapshot_info(self, params):
        return self._resolve(params).describe()

    def _replay_config(self, params):
        name = params.get("config", "global_local")
        factory = REPLAY_CONFIGS.get(name)
        if factory is None:
            raise _BadParams(
                "unknown replay config %r (expected one of %s)"
                % (name, ", ".join(sorted(REPLAY_CONFIGS)))
            )
        return name, factory

    def _replay_engine(self, params):
        engine = params.get("engine", DEFAULT_ENGINE)
        if engine not in REPLAY_ENGINES:
            raise _BadParams(
                "unknown replay engine %r (expected one of %s)"
                % (engine, ", ".join(REPLAY_ENGINES))
            )
        return engine

    async def _rpc_replay(self, params):
        entry = self._resolve(params)
        name, factory = self._replay_config(params)
        engine = self._replay_engine(params)
        batch = params.get("batch")
        if batch is not None and (not isinstance(batch, int) or batch < 1):
            raise _BadParams("'batch' must be a positive integer")
        loop = asyncio.get_event_loop()
        entry.inflight += 1
        try:
            result = await loop.run_in_executor(
                self._pool, self._replay_blocking, entry, factory(), batch,
                engine,
            )
        finally:
            self._release(entry)
        result["snapshot"] = entry.key
        result["config"] = name
        result["engine"] = engine
        async with self._replay_memo_lock:
            if not entry.retired:
                self._replay_memo.setdefault((entry.key, name, engine),
                                             result)
        return result

    async def _rpc_diff(self, params):
        """Structural diff between two loaded snapshots.

        ``snapshot`` (or its alias ``a``) names the left side — the
        usual single-snapshot default applies — and ``b`` the right
        side.  The router's consistent-hash affinity keys on
        ``snapshot``, so diffs pass through the cluster untouched and
        land on a worker holding the left snapshot.  With
        ``replay: true`` both sides are also replayed (honouring
        ``config`` / ``engine``) and the numeric deltas attached.
        """
        from repro.compare import diff_automata, replay_delta

        if "snapshot" not in params and "a" in params:
            params = dict(params, snapshot=params["a"])
        entry_a = self._resolve(params)
        name_b = params.get("b")
        if name_b is None:
            raise _BadParams("'b' (the snapshot to diff against) is required")
        entry_b = self._resolve({"snapshot": name_b})
        loop = asyncio.get_event_loop()
        entry_a.inflight += 1
        entry_b.inflight += 1
        try:
            diff = await loop.run_in_executor(
                self._pool, lambda: diff_automata(
                    entry_a.tea, entry_b.tea,
                    label_a=entry_a.label or entry_a.key,
                    label_b=entry_b.label or entry_b.key,
                    obs=self.obs,
                ),
            )
        finally:
            self._release(entry_a)
            self._release(entry_b)
        result = diff.to_json()
        result["snapshot_a"] = entry_a.key
        result["snapshot_b"] = entry_b.key
        if params.get("replay"):
            base = {
                key: params[key] for key in ("config", "engine", "batch")
                if key in params
            }
            report_a = await self._rpc_replay(
                dict(base, snapshot=entry_a.key)
            )
            report_b = await self._rpc_replay(
                dict(base, snapshot=entry_b.key)
            )
            result["replay"] = {
                "a": report_a,
                "b": report_b,
                "delta": replay_delta(report_a, report_b),
            }
        return result

    async def _rpc_coverage(self, params):
        entry = self._resolve(params)
        name, _ = self._replay_config(params)
        engine = self._replay_engine(params)
        async with self._replay_memo_lock:
            memo = self._replay_memo.get((entry.key, name, engine))
        if memo is None:
            memo = await self._rpc_replay(params)
        return {
            "snapshot": entry.key,
            "config": name,
            "engine": engine,
            "coverage_pin": memo["coverage_pin"],
            "coverage_dbt": memo["coverage_dbt"],
            "covered_pin": memo["stats"]["covered_pin"],
            "total_pin": memo["stats"]["total_pin"],
        }

    def _replay_blocking(self, entry, config, batch, engine):
        """Worker-pool body: one full replay over a shared automaton."""
        jit = entry.jit_for(config) if engine == "jit" else None
        tool = TeaReplayTool(
            trace_set=entry.trace_set, config=config,
            batch_size=batch, tea=entry.tea, engine=engine,
            compiled=(entry.compiled if engine in ("compiled", "jit")
                      else None),
            jit=jit,
        )
        result = Pin(entry.program, tool=tool).run()
        stats = tool.stats.as_dict()
        if entry._native_cycles is None:
            # Benign race: concurrent firsts compute the same number.
            entry._native_cycles = run_native(entry.program).cycles
        native = entry._native_cycles
        return {
            "coverage_pin": tool.stats.coverage(pin_counting=True),
            "coverage_dbt": tool.stats.coverage(pin_counting=False),
            "stats": stats,
            "cycles": result.cycles,
            "megacycles": result.megacycles,
            "native_cycles": native,
            "slowdown": (result.cycles / native) if native else 0.0,
            "states": entry.tea.n_states,
            "transitions": entry.tea.n_transitions,
        }

    async def _rpc_step_batch(self, params):
        entry = self._resolve(params)
        labels = params.get("labels")
        if not isinstance(labels, list) or not labels:
            raise _BadParams("'labels' must be a non-empty list of PCs")
        try:
            pcs = [
                int(label, 16) if isinstance(label, str) else int(label)
                for label in labels
            ]
        except (TypeError, ValueError):
            raise _BadParams(
                "labels must be integers or hex strings"
            ) from None
        tea = entry.tea
        start = params.get("start", 0)
        if not isinstance(start, int) or not 0 <= start < tea.n_states:
            raise _BadParams("'start' must be a state id in [0, %d)"
                             % tea.n_states)
        return_states = bool(params.get("return_states", False))
        sids = []
        in_trace = 0
        enters = 0
        exits = 0
        current = tea.states[start]
        next_state = tea.next_state
        for pc in pcs:
            following = next_state(current, pc)
            if return_states:
                sids.append(following.sid)
            if following.tbb is not None:
                in_trace += 1
            if current.trace_id != following.trace_id:
                if following.tbb is not None:
                    enters += 1
                if current.tbb is not None:
                    exits += 1
            current = following
        result = {
            "snapshot": entry.key,
            "steps": len(pcs),
            "final": current.sid,
            "final_name": current.name,
            "in_trace": in_trace,
            "nte": len(pcs) - in_trace,
            "trace_enters": enters,
            "trace_exits": exits,
        }
        if return_states:
            result["states"] = sids
        return result

    async def _rpc_stats(self, params):
        snapshot = self.obs.snapshot()
        methods = {
            name.split("service.method.", 1)[1]: value
            for name, value in snapshot["metrics"]["counters"].items()
            if name.startswith("service.method.")
        }
        return {
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None else 0.0
            ),
            "snapshots": len(self.entries),
            "draining": self._draining,
            "methods": methods,
            "metrics": snapshot["metrics"],
        }

    async def _rpc_shutdown(self, params):
        self.initiate_shutdown()
        return {"stopping": True}

    async def _rpc_sleep(self, params):
        seconds = float(params.get("seconds", 0.0))
        await asyncio.sleep(seconds)
        return {"slept": seconds}
