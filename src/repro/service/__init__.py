"""``repro.service`` — the concurrent TEA replay service.

Turns the reproduction from a batch pipeline into a long-running
server: automaton snapshots built once (``repro.store``) are preloaded
and served to many concurrent clients over a small length-prefixed
JSON-over-TCP protocol.

- :mod:`repro.service.protocol` — framing, error codes, both asyncio
  and blocking I/O flavours;
- :mod:`repro.service.server` — :class:`TeaService`: per-connection
  request pipelining, a worker pool for CPU-bound replays, request
  timeouts, payload limits, graceful drain, ``service.*`` metrics;
- :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  client library;
- :mod:`repro.service.testing` — :class:`ServiceThread`, an in-process
  server harness for tests;
- ``python -m repro.service`` — the CLI: ``serve`` / ``build`` /
  ``call``.

See ``docs/service.md`` for the wire protocol and operational knobs.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    ERROR_CODES,
    MAX_PAYLOAD_DEFAULT,
    PayloadTooLarge,
    ProtocolError,
    ServiceError,
)
from repro.service.server import (
    REPLAY_CONFIGS,
    ServiceConfig,
    ServiceSetupError,
    SnapshotEntry,
    TeaService,
)
from repro.service.testing import ServiceThread

__all__ = [
    "ERROR_CODES",
    "MAX_PAYLOAD_DEFAULT",
    "PayloadTooLarge",
    "ProtocolError",
    "ServiceError",
    "ServiceClient",
    "REPLAY_CONFIGS",
    "ServiceConfig",
    "ServiceSetupError",
    "SnapshotEntry",
    "TeaService",
    "ServiceThread",
]
