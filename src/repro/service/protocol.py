"""The replay service wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests carry ``{"id", "method", "params"}``;
responses echo the ``id`` and carry either ``{"ok": true, "result"}``
or ``{"ok": false, "error": {"code", "message"}}``.  Because every
response names its request, a connection can pipeline: a client may
have any number of requests in flight and responses may return in
completion order (see docs/service.md).

This module holds the framing plus both I/O flavours — asyncio reader/
writer helpers for the server and blocking socket helpers for the
client — so the two sides cannot drift apart.
"""

import json
import struct

from repro.errors import ReproError

#: Frame header: payload byte length, unsigned 32-bit big-endian.
HEADER = struct.Struct(">I")

#: Default cap on a single frame's payload (requests and responses).
MAX_PAYLOAD_DEFAULT = 8 * 1024 * 1024

# -- structured error codes (docs/service.md) -------------------------
E_PARSE = "parse-error"          # frame was not valid JSON / not an object
E_METHOD = "unknown-method"      # no such RPC method
E_PARAMS = "bad-params"          # params missing/invalid for the method
E_SNAPSHOT = "unknown-snapshot"  # no preloaded snapshot with that id
E_INVALID = "invalid-automaton"  # snapshot failed static verification
E_TOO_LARGE = "payload-too-large"
E_TIMEOUT = "request-timeout"
E_SHUTDOWN = "shutting-down"     # server is draining; request refused
E_INTERNAL = "internal-error"

# -- cluster-router codes (docs/cluster.md) ---------------------------
E_OVERLOADED = "overloaded"          # every eligible worker queue is full
E_QUOTA = "quota-exceeded"           # per-client token bucket is empty
E_UNAVAILABLE = "worker-unavailable"  # no healthy worker can take this

ERROR_CODES = (
    E_PARSE, E_METHOD, E_PARAMS, E_SNAPSHOT, E_INVALID, E_TOO_LARGE,
    E_TIMEOUT, E_SHUTDOWN, E_INTERNAL, E_OVERLOADED, E_QUOTA,
    E_UNAVAILABLE,
)

#: Error codes that signal a *transient* condition a client should
#: retry with backoff (the load will shed, the bucket will refill, the
#: ring will re-route around an evicted worker).
RETRYABLE_CODES = (E_OVERLOADED, E_QUOTA, E_UNAVAILABLE)


class ProtocolError(ReproError):
    """A malformed frame on the service connection."""


class PayloadTooLarge(ProtocolError):
    """A frame announced a payload beyond the configured limit."""


class ServiceError(ReproError):
    """A structured error reply from the service (client side).

    Carries the wire ``code`` so callers can branch on it.
    """

    def __init__(self, code, message):
        self.code = code
        super().__init__("%s: %s" % (code, message))


def encode_frame(obj):
    """Serialize ``obj`` to one wire frame (header + JSON payload)."""
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    data = payload.encode("utf-8")
    return HEADER.pack(len(data)) + data


def decode_payload(data):
    """Parse one frame's payload; raises :class:`ProtocolError`."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad frame payload: %s" % error) from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return obj


def error_reply(request_id, code, message):
    """A structured error response frame body."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": str(message)},
    }


def result_reply(request_id, result):
    """A success response frame body."""
    return {"id": request_id, "ok": True, "result": result}


# ---------------------------------------------------------------------
# asyncio flavour (server side)
# ---------------------------------------------------------------------

async def read_frame(reader, max_payload=MAX_PAYLOAD_DEFAULT, counter=None):
    """Read one frame from an asyncio stream reader.

    Returns the decoded object, or ``None`` on clean EOF at a frame
    boundary.  Oversized frames raise :class:`PayloadTooLarge` *before*
    the payload is read, so a hostile length can not balloon memory.
    ``counter`` (an object with ``inc``) receives the wire byte count.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (length,) = HEADER.unpack(header)
    if length > max_payload:
        raise PayloadTooLarge(
            "frame of %d bytes exceeds the %d-byte payload limit"
            % (length, max_payload)
        )
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    if counter is not None:
        counter.inc(HEADER.size + length)
    return decode_payload(data)


# ---------------------------------------------------------------------
# blocking flavour (client side)
# ---------------------------------------------------------------------

def read_frame_blocking(sock, max_payload=MAX_PAYLOAD_DEFAULT):
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_payload:
        raise PayloadTooLarge(
            "frame of %d bytes exceeds the %d-byte payload limit"
            % (length, max_payload)
        )
    return decode_payload(_recv_exactly(sock, length))


def write_frame_blocking(sock, obj):
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(obj))


def _recv_exactly(sock, count, allow_eof=False):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
