"""In-process harness for driving a :class:`TeaService` from tests.

:class:`ServiceThread` runs the asyncio server on a dedicated
background event-loop thread so ordinary blocking test code (and the
blocking :class:`~repro.service.client.ServiceClient`) can talk to a
real TCP server without subprocesses.  Used by ``tests/test_service.py``
and handy for interactive experiments::

    with ServiceThread(store) as service:
        with service.client() as client:
            print(client.ping())
"""

import asyncio
import threading

from repro.service.client import ServiceClient
from repro.service.server import TeaService


class ServiceThread:
    """Run a :class:`TeaService` on a background event loop thread."""

    def __init__(self, store, config=None, obs=None, start_timeout=120.0):
        self.service = TeaService(store, config=config, obs=obs)
        self.start_timeout = start_timeout
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    def start(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="tea-service", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop
        )
        try:
            future.result(timeout=self.start_timeout)
        except BaseException:
            self._shutdown_loop()
            raise
        return self

    def stop(self):
        """Graceful drain, then tear the loop down."""
        if self._loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self._loop
            ).result(timeout=self.start_timeout)
        finally:
            self._shutdown_loop()

    def _run_loop(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _shutdown_loop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    @property
    def address(self):
        return self.service.address

    @property
    def host(self):
        return self.address[0]

    @property
    def port(self):
        return self.address[1]

    def client(self, **kwargs):
        """A fresh blocking client aimed at this server."""
        host, port = self.address
        return ServiceClient(host, port, **kwargs)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
