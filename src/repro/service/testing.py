"""In-process harness for driving a :class:`TeaService` from tests.

:class:`ServiceThread` runs the asyncio server on a dedicated
background event-loop thread so ordinary blocking test code (and the
blocking :class:`~repro.service.client.ServiceClient`) can talk to a
real TCP server without subprocesses.  Used by ``tests/test_service.py``
and handy for interactive experiments::

    with ServiceThread(store) as service:
        with service.client() as client:
            print(client.ping())

The module also owns the ephemeral-port discipline for every service
and cluster test: :func:`ephemeral_config` builds a
:class:`~repro.service.server.ServiceConfig` pinned to ``port=0`` (the
kernel picks a free port at bind time, so parallel test runs can never
collide on a fixed port), and :func:`wait_for_port_file` reads the
bound port back from a subprocess worker's ``--port-file``.
"""

import asyncio
import os
import socket
import threading
import time

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, TeaService


def ephemeral_config(**kwargs):
    """A :class:`ServiceConfig` bound to an OS-assigned free port.

    Tests must never name a fixed port — two suites (or two pytest
    workers) racing for it is exactly the flakiness this helper
    removes.  Any explicit ``port=`` is rejected; all other
    :class:`ServiceConfig` knobs pass through.
    """
    if kwargs.get("port"):
        raise ValueError(
            "ephemeral_config pins port=0; do not pass a fixed port"
        )
    kwargs["port"] = 0
    return ServiceConfig(**kwargs)


def free_port(host="127.0.0.1"):
    """One currently-free TCP port on ``host``.

    Prefer ``port=0`` binds (:func:`ephemeral_config`) — the port here
    is only *probably* still free by the time the caller binds it.  It
    exists for the one case that genuinely needs a port before the
    process that will own it: restarting a killed cluster worker on its
    old address so ring rejoin can be observed.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def wait_for_port_file(path, timeout=120.0, poll=0.05):
    """Poll ``path`` (a ``--port-file``) until it holds a port number.

    Subprocess servers bind ``port=0`` and publish the resolved port
    atomically; this is the parent's side of that handshake.  Raises
    ``TimeoutError`` if the file never materializes.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            text = ""
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read().strip()
            except OSError:
                text = ""
            if text:
                return int(text)
        time.sleep(poll)
    raise TimeoutError("no port appeared in %s within %.1fs"
                       % (path, timeout))


class ServiceThread:
    """Run a :class:`TeaService` on a background event loop thread."""

    def __init__(self, store, config=None, obs=None, start_timeout=120.0):
        self.service = TeaService(store, config=config, obs=obs)
        self.start_timeout = start_timeout
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    def start(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="tea-service", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop
        )
        try:
            future.result(timeout=self.start_timeout)
        except BaseException:
            self._shutdown_loop()
            raise
        return self

    def stop(self):
        """Graceful drain, then tear the loop down."""
        if self._loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self._loop
            ).result(timeout=self.start_timeout)
        finally:
            self._shutdown_loop()

    def _run_loop(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _shutdown_loop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    @property
    def address(self):
        return self.service.address

    @property
    def host(self):
        return self.address[0]

    @property
    def port(self):
        return self.address[1]

    def client(self, **kwargs):
        """A fresh blocking client aimed at this server."""
        host, port = self.address
        return ServiceClient(host, port, **kwargs)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
