"""CLI for the TEA replay service.

Examples::

    # Build a snapshot into a store (records traces, replays for a
    # profile, writes the binary TEAB snapshot):
    python -m repro.service build --store .tea_store \\
        --benchmark 164.gzip --scale 0.5 --threshold 10 --profile

    # Serve every snapshot in the store:
    python -m repro.service serve --store .tea_store --port 7321

    # Fire one RPC from the shell:
    python -m repro.service call --port 7321 ping
    python -m repro.service call --port 7321 replay \\
        --params '{"config": "global_local"}'
"""

import argparse
import asyncio
import json
import signal
import sys

from repro.core import TeaProfile, build_tea
from repro.dbt import StarDBT
from repro.errors import ReproError
from repro.pin import Pin, TeaReplayTool
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, TeaService
from repro.store import DEFAULT_STORE_DIR, AutomatonStore
from repro.traces import STRATEGIES
from repro.traces.recorder import RecorderLimits
from repro.util import atomic_write_text
from repro.workloads import BENCHMARKS, load_benchmark


def _cmd_build(args):
    """Record a benchmark, build its TEA, snapshot it into the store."""
    workload = load_benchmark(args.benchmark, scale=args.scale)
    limits = RecorderLimits(hot_threshold=args.threshold)
    recorded = StarDBT(
        workload.program, strategy=args.strategy, limits=limits
    ).run()
    trace_set = recorded.trace_set
    tea = build_tea(trace_set)
    profile = None
    if args.profile:
        profile = TeaProfile()
        tool = TeaReplayTool(trace_set=trace_set, profile=profile, tea=tea)
        Pin(workload.program, tool=tool).run()
    meta = {
        "benchmark": args.benchmark,
        "scale": args.scale,
        "strategy": args.strategy,
        "hot_threshold": args.threshold,
    }
    if args.label:
        meta["label"] = args.label
    store = AutomatonStore(args.store)
    # A rebuild under the same alias supersedes the snapshots the alias
    # currently names: the service's ``reload`` RPC retires them on the
    # next hot swap and ``store gc`` prunes them from disk afterwards.
    alias = args.label or args.benchmark
    superseded = []
    for old_key in store.keys():
        try:
            old_meta = store.describe(old_key).get("meta") or {}
        except ReproError:
            continue
        if (old_meta.get("label") or old_meta.get("benchmark")) == alias:
            superseded.append(old_key)
    if superseded:
        meta["supersedes"] = sorted(superseded)
    key = store.put(trace_set, tea=tea, profile=profile, meta=meta)
    info = store.describe(key)
    print("snapshot %s" % key)
    print("  %d traces, %d states, %d transitions, %d heads, %s profile"
          % (info["traces"], info["states"], info["transitions"],
             info["heads"], "with" if info["profile"] else "no"))
    print("  %d bytes in %s" % (info["bytes"], store.path_for(key)))
    for old_key in superseded:
        print("  supersedes %s" % old_key)
    return 0


def _cmd_serve(args):
    """Run the server until SIGTERM/SIGINT, then drain gracefully."""
    store = AutomatonStore(args.store)
    config = ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        request_timeout=args.timeout, max_payload=args.max_payload,
        drain_timeout=args.drain_timeout, debug=args.debug,
    )
    service = TeaService(store, config=config)
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        loop.run_until_complete(service.start())
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service.initiate_shutdown)
        host, port = service.address
        print("repro.service listening on %s:%d (%d snapshots, %d workers)"
              % (host, port, len(service.entries), config.workers),
              flush=True)
        if args.port_file:
            atomic_write_text(args.port_file, "%d\n" % port)
        loop.run_until_complete(service.serve_forever())
        print("repro.service drained cleanly", flush=True)
    finally:
        loop.close()
    return 0


def _cmd_call(args):
    """One client RPC; prints the JSON result."""
    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as error:
        print("error: --params is not valid JSON: %s" % error,
              file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("error: --params must be a JSON object", file=sys.stderr)
        return 2
    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        result = client.call(args.method, **params)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="build, serve and query TEA automaton snapshots",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build", help="record a benchmark and snapshot its TEA into a store"
    )
    build.add_argument("--store", default=DEFAULT_STORE_DIR,
                       help="store directory (default %(default)s)")
    build.add_argument("--benchmark", required=True,
                       choices=sorted(BENCHMARKS))
    build.add_argument("--scale", type=float, default=1.0)
    build.add_argument("--strategy", choices=sorted(STRATEGIES),
                       default="mret")
    build.add_argument("--threshold", type=int, default=30,
                       help="hot threshold (default 30)")
    build.add_argument("--profile", action="store_true",
                       help="replay once to embed profile counters")
    build.add_argument("--label", help="friendly alias for the snapshot")

    serve = commands.add_parser("serve", help="run the replay server")
    serve.add_argument("--store", default=DEFAULT_STORE_DIR,
                       help="store directory (default %(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7321,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--workers", type=int, default=4,
                       help="replay worker threads (default 4)")
    serve.add_argument("--timeout", type=float, default=60.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--max-payload", type=int,
                       default=ServiceConfig().max_payload,
                       help="per-frame payload cap in bytes")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight work on shutdown")
    serve.add_argument("--port-file",
                       help="write the bound port here once listening")
    serve.add_argument("--debug", action="store_true",
                       help="enable debug RPCs (sleep) — tests only")

    call = commands.add_parser("call", help="fire one RPC as a client")
    call.add_argument("method", help="RPC method name (e.g. ping, stats)")
    call.add_argument("--host", default="127.0.0.1")
    call.add_argument("--port", type=int, default=7321)
    call.add_argument("--timeout", type=float, default=60.0)
    call.add_argument("--params", help="JSON object of method params")

    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    try:
        if args.command == "build":
            return _cmd_build(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_call(args)
    except (ReproError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
