"""Small shared utilities used across subsystems.

- :mod:`repro.util.fsio` — crash-safe on-disk writes (temp file +
  ``os.replace``), the discipline every persistent artifact in this
  repository follows (harness result cache, trace files, TEA documents,
  automaton store snapshots, metrics dumps).
"""

from repro.util.fsio import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]
