"""Atomic file writes: temp file in the target directory + ``os.replace``.

Every persistent artifact this repository produces (harness cache
entries, trace files, TEA documents, binary snapshots, metrics dumps)
goes through one of these helpers so that a crash — or a concurrent
reader — can never observe a torn, half-written file.  ``os.replace``
is atomic on POSIX and Windows as long as source and destination live
on the same filesystem, which is why the temp file is created *next to*
the destination rather than in ``/tmp``.

Originally private to ``repro.harness.cache``; extracted here so the
serialization layers and the automaton store share one discipline.
"""

import contextlib
import json
import os
import tempfile


@contextlib.contextmanager
def atomic_write(path, mode="w", encoding=None):
    """Context manager yielding a handle whose contents replace ``path``.

    The handle writes to a hidden temp file in ``path``'s directory
    (created if missing); on clean exit the temp file is atomically
    renamed over ``path``.  On any exception the temp file is removed
    and ``path`` is left untouched.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    if "w" not in mode:
        raise ValueError("atomic_write needs a write mode, got %r" % mode)
    path = str(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    suffix = os.path.splitext(path)[1] or ".tmp"
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=".tmp-", suffix=suffix, dir=directory
    )
    try:
        with os.fdopen(descriptor, mode, encoding=encoding) as handle:
            yield handle
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path, data):
    """Atomically replace ``path`` with ``data`` (bytes)."""
    with atomic_write(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path, text, encoding="utf-8"):
    """Atomically replace ``path`` with ``text``."""
    with atomic_write(path, "w", encoding=encoding) as handle:
        handle.write(text)


def atomic_write_json(path, document, **dump_kwargs):
    """Atomically replace ``path`` with ``document`` serialized as JSON."""
    with atomic_write(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, **dump_kwargs)
        handle.write("\n")
