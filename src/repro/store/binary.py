"""The binary TEA snapshot codec (format ``TEAB``; the v1 varint blob
lives here, the mmap-able v2 section layout in
:mod:`repro.store.binary_v2` — the public loaders below dispatch on the
version byte, so callers never care which format a snapshot uses).

The JSON TEA document (:mod:`repro.core.serialization`) stores only the
trace *shape* and rebuilds the automaton by re-running Algorithm 1 on
load.  A binary snapshot additionally stores the automaton itself —
state table, transition lists and the NTE head registry — so loading
rebuilds a TEA that is identical to the one that was saved (same state
ids, same transitions, same heads) *without* re-running Algorithm 1.
That is the paper's "storing trace shape and profiling information for
reuse in future executions" turned into a reusable artifact: the
:class:`~repro.store.store.AutomatonStore` keeps snapshots
content-addressed and the replay service serves them to many clients.

Layout
------
::

    magic   b"TEAB"
    u8      format version (1)
    u8      flags (bit 0: profile section, bit 1: meta section)
    ...     payload (varint-encoded sections, see below)
    u32le   CRC32 over everything above

All integers in the payload are unsigned LEB128 varints; deltas
(block start addresses, transition labels, head entries) are zigzag
encoded so occasional backwards jumps stay cheap.  Sections, in order:

1. **meta** (optional): length-prefixed UTF-8 JSON — free-form snapshot
   metadata (benchmark name, scale, recording strategy, label).  The
   service uses it to rebuild the program image a snapshot belongs to.
2. **traces**: the trace-set document — per trace: id, kind, anchor,
   delta-encoded TBB spans, and (from, to) edge pairs.  Edge labels are
   not stored: a label is by construction the successor TBB's start.
3. **automaton**: per non-NTE state its (trace_id, tbb_index) in state-id
   order, then per state the transition list as (label delta, dest sid)
   pairs sorted by label, then the head registry as (entry delta, sid)
   pairs sorted by entry.
4. **profile** (optional): state counts as (trace_id, tbb_index, count)
   triples plus the three per-trace counter maps — the same
   renumbering-safe keying the JSON format uses.
"""

from __future__ import annotations

import json
import zlib

from repro.core.automaton import NTE_SID, TEA
from repro.core.builder import build_tea
from repro.core.profile import TeaProfile
from repro.errors import SerializationError
from repro.traces.model import Trace, TraceSet

MAGIC = b"TEAB"
BINARY_VERSION = 1


def snapshot_version(data):
    """The format version byte of TEAB bytes, or ``None`` if not TEAB.

    The public loaders (:func:`load_tea_binary`,
    :func:`compile_tea_binary`, :func:`peek_tea_binary`) dispatch on
    this: v1 snapshots take the varint decode path below, v2 snapshots
    the zero-copy section path in :mod:`repro.store.binary_v2`.
    """
    if len(data) >= 5 and bytes(data[:4]) == MAGIC:
        return data[4]
    return None

FLAG_PROFILE = 0x01
FLAG_META = 0x02

#: Profile counter maps stored as (trace_id, value) pairs.
_PROFILE_TRACE_MAPS = ("trace_enters", "trace_exits", "trace_head_executions")


# ---------------------------------------------------------------------
# varint primitives
# ---------------------------------------------------------------------

def write_uvarint(out, value):
    """Append ``value`` (non-negative int) as unsigned LEB128."""
    if value < 0:
        raise SerializationError("uvarint cannot encode %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def zigzag(value):
    """Map a signed int to the unsigned zigzag encoding."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value):
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def write_svarint(out, value):
    """Append a signed int as zigzag + LEB128."""
    write_uvarint(out, zigzag(value))


class _Reader:
    """Bounded varint reader over the payload bytes."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data, start=0, end=None):
        self.data = data
        self.pos = start
        self.end = len(data) if end is None else end

    def uvarint(self):
        result = 0
        shift = 0
        data = self.data
        pos = self.pos
        end = self.end
        while True:
            if pos >= end:
                raise SerializationError("truncated varint in snapshot")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7
            if shift > 70:
                raise SerializationError("oversized varint in snapshot")

    def svarint(self):
        return unzigzag(self.uvarint())

    def uvarint_run(self, count):
        """Decode ``count`` consecutive varints in one tight loop.

        The payload is mostly long homogeneous varint runs (TBB spans,
        edge pairs, transition lists); decoding a run with locals
        instead of per-value method calls is what makes snapshot loads
        competitive with the C JSON parser.
        """
        data = self.data
        pos = self.pos
        end = self.end
        values = []
        append = values.append
        for _ in range(count):
            if pos >= end:
                raise SerializationError("truncated varint in snapshot")
            byte = data[pos]
            pos += 1
            if byte < 0x80:
                append(byte)
                continue
            result = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise SerializationError("truncated varint in snapshot")
                byte = data[pos]
                pos += 1
                result |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift > 70:
                    raise SerializationError("oversized varint in snapshot")
            append(result)
        self.pos = pos
        return values

    def take(self, count):
        if self.pos + count > self.end:
            raise SerializationError("truncated section in snapshot")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def string(self):
        return self.take(self.uvarint()).decode("utf-8")

    def optional_uvarint(self):
        # Presence is its own varint (0 = absent, 1 = present).
        if self.uvarint() == 0:
            return None
        return self.uvarint()

    @property
    def exhausted(self):
        return self.pos >= self.end


def _write_string(out, text):
    data = text.encode("utf-8")
    write_uvarint(out, len(data))
    out.extend(data)


def _write_optional_uvarint(out, value):
    if value is None:
        write_uvarint(out, 0)
    else:
        write_uvarint(out, 1)
        write_uvarint(out, value)


# ---------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------

def dump_tea_binary(trace_set, tea=None, profile=None, meta=None):
    """Serialize ``trace_set`` (+ automaton, profile, meta) to bytes.

    ``tea`` defaults to a fresh Algorithm 1 build over ``trace_set`` —
    passing the automaton you actually used guarantees the snapshot
    reproduces *its* state numbering exactly.  The output is
    deterministic: the same inputs always produce the same bytes, which
    is what makes the store content-addressable.
    """
    if tea is None:
        tea = build_tea(trace_set)
    flags = 0
    if profile is not None:
        flags |= FLAG_PROFILE
    if meta is not None:
        flags |= FLAG_META

    out = bytearray()
    out += MAGIC
    out.append(BINARY_VERSION)
    out.append(flags)

    if meta is not None:
        _write_string(
            out, json.dumps(meta, sort_keys=True, separators=(",", ":"))
        )

    _encode_traces(out, trace_set)
    _encode_automaton(out, trace_set, tea)
    if profile is not None:
        _encode_profile(out, tea, profile)

    out += zlib.crc32(out).to_bytes(4, "little")
    return bytes(out)


def _encode_traces(out, trace_set):
    _write_string(out, trace_set.kind or "")
    write_uvarint(out, len(trace_set.traces))
    for trace in trace_set:
        write_uvarint(out, trace.trace_id)
        _write_string(out, trace.kind)
        _write_optional_uvarint(out, trace.anchor)
        write_uvarint(out, len(trace.tbbs))
        previous = 0
        for tbb in trace:
            write_svarint(out, tbb.block.start - previous)
            write_uvarint(out, tbb.block.end - tbb.block.start)
            previous = tbb.block.start
        edges = [
            (tbb.index, successor)
            for tbb in trace
            for _, successor in sorted(tbb.successors.items())
        ]
        write_uvarint(out, len(edges))
        previous = 0
        for from_index, to_index in edges:
            write_uvarint(out, from_index - previous)
            write_uvarint(out, to_index)
            previous = from_index


def _encode_automaton(out, trace_set, tea):
    write_uvarint(out, tea.n_states)
    for state in tea.states:
        if state.sid == NTE_SID:
            continue
        if state.tbb is None:
            raise SerializationError(
                "state %d has no TBB and is not NTE" % state.sid
            )
        write_uvarint(out, state.tbb.trace_id)
        write_uvarint(out, state.tbb.index)
    for state in tea.states:
        write_uvarint(out, len(state.transitions))
        previous = 0
        for label, destination in sorted(state.transitions.items()):
            write_svarint(out, label - previous)
            write_uvarint(out, destination.sid)
            previous = label
    write_uvarint(out, len(tea.heads))
    previous = 0
    for entry, head in sorted(tea.heads.items()):
        write_svarint(out, entry - previous)
        write_uvarint(out, head.sid)
        previous = entry


def _encode_profile(out, tea, profile):
    counts = []
    for state in tea.states:
        if state.tbb is None:
            continue
        executed = profile.state_counts.get(state.sid, 0)
        if executed:
            counts.append((state.tbb.trace_id, state.tbb.index, executed))
    write_uvarint(out, len(counts))
    for trace_id, index, executed in counts:
        write_uvarint(out, trace_id)
        write_uvarint(out, index)
        write_uvarint(out, executed)
    for name in _PROFILE_TRACE_MAPS:
        items = sorted(getattr(profile, name).items())
        write_uvarint(out, len(items))
        for trace_id, value in items:
            write_uvarint(out, int(trace_id))
            write_uvarint(out, value)


# ---------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------

def _open_snapshot(data):
    """Validate the envelope; returns ``(reader, flags)`` over the payload."""
    if len(data) < len(MAGIC) + 2 + 4:
        raise SerializationError("snapshot too short to be a TEAB file")
    if data[:4] != MAGIC:
        raise SerializationError("bad magic: not a binary TEA snapshot")
    stored_crc = int.from_bytes(data[-4:], "little")
    actual_crc = zlib.crc32(data[:-4])
    if stored_crc != actual_crc:
        raise SerializationError(
            "snapshot CRC mismatch (stored %08x, computed %08x)"
            % (stored_crc, actual_crc)
        )
    version = data[4]
    if version != BINARY_VERSION:
        raise SerializationError(
            "unsupported binary TEA snapshot v%d" % version
        )
    flags = data[5]
    return _Reader(data, start=6, end=len(data) - 4), flags


def _decode_meta(reader, flags):
    if not flags & FLAG_META:
        return None
    try:
        return json.loads(reader.string())
    except json.JSONDecodeError as error:
        raise SerializationError(
            "malformed snapshot meta: %s" % error
        ) from None


def _decode_traces(reader, block_index):
    kind = reader.string() or None
    trace_set = TraceSet(kind=kind)
    n_traces = reader.uvarint()
    for _ in range(n_traces):
        trace_id = reader.uvarint()
        trace_kind = reader.string()
        anchor = reader.optional_uvarint()
        trace = Trace(trace_id, trace_kind, anchor=anchor)
        n_tbbs = reader.uvarint()
        spans = reader.uvarint_run(2 * n_tbbs)
        previous = 0
        block = block_index.block
        add_block = trace.add_block
        for position in range(0, 2 * n_tbbs, 2):
            start = previous + unzigzag(spans[position])
            add_block(block(start, start + spans[position + 1]))
            previous = start
        n_edges = reader.uvarint()
        pairs = reader.uvarint_run(2 * n_edges)
        previous = 0
        add_edge = trace.add_edge
        for position in range(0, 2 * n_edges, 2):
            from_index = previous + pairs[position]
            to_index = pairs[position + 1]
            if not 0 <= from_index < n_tbbs or not 0 <= to_index < n_tbbs:
                raise SerializationError(
                    "edge index out of range in trace T%d" % trace_id
                )
            add_edge(from_index, to_index)
            previous = from_index
        trace_set.traces.append(trace)
        if trace.entry in trace_set.by_entry:
            raise SerializationError(
                "duplicate trace entry %#x" % trace.entry
            )
        trace_set.by_entry[trace.entry] = trace
    trace_set.check()
    return trace_set


def _decode_automaton(reader, trace_set):
    """Rebuild the automaton tables directly — no Algorithm 1 pass."""
    by_key = {
        (tbb.trace_id, tbb.index): tbb
        for trace in trace_set
        for tbb in trace
    }
    n_states = reader.uvarint()
    if n_states < 1:
        raise SerializationError("snapshot automaton has no NTE state")
    tea = TEA()
    refs = reader.uvarint_run(2 * (n_states - 1))
    add_tbb_state = tea.add_tbb_state
    for position in range(0, len(refs), 2):
        key = (refs[position], refs[position + 1])
        tbb = by_key.get(key)
        if tbb is None:
            raise SerializationError(
                "automaton state refers to unknown TBB (T%d, #%d)" % key
            )
        add_tbb_state(tbb)
    states = tea.states
    for state in states:
        n_transitions = reader.uvarint()
        run = reader.uvarint_run(2 * n_transitions)
        previous = 0
        transitions = state.transitions
        for position in range(0, 2 * n_transitions, 2):
            label = previous + unzigzag(run[position])
            sid = run[position + 1]
            if not 0 <= sid < n_states:
                raise SerializationError(
                    "transition to unknown state %d" % sid
                )
            transitions[label] = states[sid]
            previous = label
    n_heads = reader.uvarint()
    run = reader.uvarint_run(2 * n_heads)
    previous = 0
    for position in range(0, 2 * n_heads, 2):
        entry = previous + unzigzag(run[position])
        sid = run[position + 1]
        if not 0 < sid < n_states:
            raise SerializationError("head refers to unknown state %d" % sid)
        tea.heads[entry] = states[sid]
        previous = entry
    return tea


def _decode_profile(reader, flags, trace_set, tea):
    if not flags & FLAG_PROFILE:
        return None
    by_key = {}
    for trace in trace_set:
        for tbb in trace:
            by_key[(tbb.trace_id, tbb.index)] = tea.state_for(tbb)
    profile = TeaProfile()
    n_counts = reader.uvarint()
    triples = reader.uvarint_run(3 * n_counts)
    for position in range(0, 3 * n_counts, 3):
        key = (triples[position], triples[position + 1])
        state = by_key.get(key)
        if state is None:
            raise SerializationError(
                "profile refers to unknown TBB (T%d, #%d)" % key
            )
        profile.state_counts[state.sid] = triples[position + 2]
    for name in _PROFILE_TRACE_MAPS:
        counters = getattr(profile, name)
        n_items = reader.uvarint()
        pairs = reader.uvarint_run(2 * n_items)
        for position in range(0, 2 * n_items, 2):
            counters[pairs[position]] = pairs[position + 1]
    return profile


def load_tea_binary(data, block_index, with_meta=False):
    """Rebuild ``(trace_set, tea, profile_or_None)`` from snapshot bytes.

    The automaton comes back exactly as saved — same state ids, same
    transition lists, same head registry — without re-running
    Algorithm 1.  With ``with_meta=True`` the result is a 4-tuple whose
    last element is the snapshot's meta dict (or ``None``).
    """
    from repro.store.binary_v2 import BINARY_VERSION_V2, load_tea_binary_v2

    if snapshot_version(data) == BINARY_VERSION_V2:
        return load_tea_binary_v2(data, block_index, with_meta=with_meta)
    reader, flags = _open_snapshot(data)
    meta = _decode_meta(reader, flags)
    trace_set = _decode_traces(reader, block_index)
    tea = _decode_automaton(reader, trace_set)
    profile = _decode_profile(reader, flags, trace_set, tea)
    if not reader.exhausted:
        raise SerializationError(
            "%d trailing bytes after snapshot payload"
            % (reader.end - reader.pos)
        )
    if with_meta:
        return trace_set, tea, profile, meta
    return trace_set, tea, profile


def _scan_traces(reader):
    """Skip the traces section; returns ``(kind, n_traces, n_tbbs, n_edges)``.

    Shared by the inspection paths that need the automaton section but
    no program image (:func:`peek_tea_binary`,
    :func:`compile_tea_binary`): block spans are scanned, not interned.
    """
    kind = reader.string() or None
    n_traces = reader.uvarint()
    n_tbbs = 0
    n_edges = 0
    for _ in range(n_traces):
        reader.uvarint()               # trace id
        reader.string()                # kind
        reader.optional_uvarint()      # anchor
        trace_tbbs = reader.uvarint()
        n_tbbs += trace_tbbs
        reader.uvarint_run(2 * trace_tbbs)
        trace_edges = reader.uvarint()
        n_edges += trace_edges
        reader.uvarint_run(2 * trace_edges)
    return kind, n_traces, n_tbbs, n_edges


def _decode_automaton_tables(reader):
    """Decode the v1 automaton section into flat CSR tables.

    Returns ``(n_states, refs, trans_offset, trans_labels, trans_dest,
    head_entries, head_sids)`` where ``refs`` is the flattened
    ``(trace_id, tbb_index)`` int list.  Shared by
    :func:`compile_tea_binary` and the v1 → v2 converter — the TEAB
    automaton section *is* the compiled layout (label-sorted transition
    runs, entry-sorted heads), so one pass fills every table.
    """
    from array import array

    n_states = reader.uvarint()
    if n_states < 1:
        raise SerializationError("snapshot automaton has no NTE state")
    refs = reader.uvarint_run(2 * (n_states - 1))
    trans_offset = array("q", [0] * (n_states + 1))
    trans_labels = array("q")
    trans_dest = array("q")
    for sid in range(n_states):
        n_transitions = reader.uvarint()
        run = reader.uvarint_run(2 * n_transitions)
        previous = 0
        for position in range(0, 2 * n_transitions, 2):
            label = previous + unzigzag(run[position])
            dest = run[position + 1]
            if not 0 <= dest < n_states:
                raise SerializationError(
                    "transition to unknown state %d" % dest
                )
            trans_labels.append(label)
            trans_dest.append(dest)
            previous = label
        trans_offset[sid + 1] = len(trans_labels)
    n_heads = reader.uvarint()
    run = reader.uvarint_run(2 * n_heads)
    head_entries = array("q")
    head_sids = array("q")
    previous = 0
    for position in range(0, 2 * n_heads, 2):
        entry = previous + unzigzag(run[position])
        sid = run[position + 1]
        if not 0 < sid < n_states:
            raise SerializationError("head refers to unknown state %d" % sid)
        head_entries.append(entry)
        head_sids.append(sid)
        previous = entry
    return (n_states, refs, trans_offset, trans_labels, trans_dest,
            head_entries, head_sids)


def compile_tea_binary(data, verify=True):
    """Lower snapshot bytes straight into a
    :class:`~repro.core.compiled.CompiledTea`.

    v2 snapshots take the zero-copy path
    (:func:`~repro.store.binary_v2.compile_tea_binary_v2`): the CSR
    tables are int64 views straight into ``data``, so passing an
    ``mmap`` shares the page cache across processes.  v1 snapshots are
    decoded below: the TEAB automaton section *is* the compiled layout
    — per-state transition runs sorted by label, heads sorted by entry
    — so the tables can be filled in one decoding pass without
    materializing the ``TeaState`` object graph, the trace set, or a
    program image.  The per-state instruction metadata arrays come back
    zeroed: the format does not store instruction counts (and must not
    change — snapshot bytes are content-addressed), and the compiled
    replayer never reads them (packed transition streams carry the
    dynamic counts).

    With ``verify=True`` (the default) the snapshot rule family
    (``TEA020``-``TEA026``) certifies the bytes first and a
    :class:`~repro.errors.VerificationError` — still a
    :class:`SerializationError` — carries the full diagnostics when
    they are damaged.  Pass ``verify=False`` to skip the pass (the
    verifier itself does, to avoid re-scanning).
    """
    from repro.core.compiled import CompiledTea
    from repro.store.binary_v2 import BINARY_VERSION_V2, compile_tea_binary_v2

    if snapshot_version(data) == BINARY_VERSION_V2:
        return compile_tea_binary_v2(data, verify=verify)
    if verify:
        from repro.verify.api import verify_snapshot_bytes

        verify_snapshot_bytes(data, deep=False).raise_on_error()
    reader, flags = _open_snapshot(data)
    _decode_meta(reader, flags)
    _scan_traces(reader)
    (n_states, _refs, trans_offset, trans_labels, trans_dest,
     head_entries, head_sids) = _decode_automaton_tables(reader)
    # Any trailing profile section is irrelevant to the tables.
    tbb_flag = b"\x00" + b"\x01" * (n_states - 1)
    return CompiledTea(n_states, tbb_flag, trans_offset, trans_labels,
                       trans_dest, head_entries, head_sids)


def peek_tea_binary(data):
    """Structural summary of snapshot bytes, without a program image.

    Unlike :func:`load_tea_binary` this needs no :class:`BlockIndex`:
    block spans are scanned but not interned.  Returns a dict with the
    version, counts, profile presence, meta, and byte size.  v2
    snapshots dispatch to the header-only
    :func:`~repro.store.binary_v2.peek_tea_binary_v2` (no varint decode
    at all) and additionally report the section table.
    """
    from repro.store.binary_v2 import BINARY_VERSION_V2, peek_tea_binary_v2

    if snapshot_version(data) == BINARY_VERSION_V2:
        return peek_tea_binary_v2(data)
    reader, flags = _open_snapshot(data)
    meta = _decode_meta(reader, flags)
    kind, n_traces, n_tbbs, n_edges = _scan_traces(reader)
    n_states = reader.uvarint()
    reader.uvarint_run(2 * (n_states - 1))
    n_transitions = 0
    for _ in range(n_states):
        state_transitions = reader.uvarint()
        n_transitions += state_transitions
        reader.uvarint_run(2 * state_transitions)
    n_heads = reader.uvarint()
    return {
        "format": "binary",
        "version": BINARY_VERSION,
        "kind": kind,
        "traces": n_traces,
        "tbbs": n_tbbs,
        "edges": n_edges,
        "states": n_states,
        "transitions": n_transitions,
        "heads": n_heads,
        "profile": bool(flags & FLAG_PROFILE),
        "meta": meta,
        "bytes": len(data),
    }


def save_tea_binary(path, trace_set, tea=None, profile=None, meta=None):
    """Write a binary snapshot to ``path`` atomically."""
    from repro.util import atomic_write_bytes

    atomic_write_bytes(
        path, dump_tea_binary(trace_set, tea=tea, profile=profile, meta=meta)
    )


def load_tea_binary_file(path, block_index, with_meta=False):
    """Read a snapshot previously written by :func:`save_tea_binary`."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SerializationError("cannot read %s: %s" % (path, error)) from None
    return load_tea_binary(data, block_index, with_meta=with_meta)
