"""Content-addressed on-disk store for binary TEA snapshots.

An :class:`AutomatonStore` is a directory of ``TEAB`` snapshots keyed
by the SHA-256 of their bytes — the same content-addressing discipline
as the harness result cache (``repro.harness.cache``), with the same
two-level hash-prefix sharding and the same atomic temp-file +
``os.replace`` writes (now shared via :mod:`repro.util.fsio`).  Because
the binary codec is deterministic, storing the same automaton twice is
a no-op, and a key fully identifies an automaton's shape, numbering and
profile.

New snapshots are written in the TEAB v2 section layout
(:mod:`repro.store.binary_v2`) so :meth:`AutomatonStore.map_compiled`
can serve them zero-copy off a shared read-only ``mmap``; v1 snapshots
load transparently everywhere and :meth:`AutomatonStore.migrate`
re-encodes a store in place.

The replay service (:mod:`repro.service`) preloads every snapshot in a
store at startup and serves them by key (or by the ``label`` /
``benchmark`` recorded in the snapshot meta) to concurrent clients.
"""

from __future__ import annotations

import hashlib
import os

from repro.errors import SerializationError
from repro.obs import Observability
from repro.store.binary import (
    BINARY_VERSION,
    compile_tea_binary,
    dump_tea_binary,
    load_tea_binary,
    peek_tea_binary,
    snapshot_version,
)
from repro.store.binary_v2 import (
    BINARY_VERSION_V2,
    DEFAULT_SNAPSHOT_VERSION,
    convert_v1_to_v2,
    convert_v2_to_v1,
    dump_tea_binary_v2,
)
from repro.util import atomic_write_bytes

#: File extension for stored snapshots.
SNAPSHOT_SUFFIX = ".teab"

#: File extension for cached generated JIT replay sources.  They sit in
#: the same shard directory as their snapshot, named
#: ``<key>.<config-token>.jit.py`` — the listing helpers filter on
#: :data:`SNAPSHOT_SUFFIX`, so cached code never aliases a content key.
JIT_SUFFIX = ".jit.py"

#: Default store directory (relative to the invoking CWD).
DEFAULT_STORE_DIR = ".tea_store"


def snapshot_key(data):
    """The content address (SHA-256 hex digest) of snapshot bytes."""
    return hashlib.sha256(data).hexdigest()


def stable_hash64(text, salt=""):
    """A deterministic 64-bit hash of a string (SHA-256 prefix).

    Unlike ``hash()``, this is independent of ``PYTHONHASHSEED`` and
    identical across processes and machines — the property the cluster
    router's consistent-hash ring needs so every router instance (and
    the ``repro tools cluster plan`` CLI) agrees on which worker owns a
    snapshot digest.  ``salt`` separates hash domains (ring points vs
    routed keys) so a node name can never collide with a content key
    by construction.
    """
    payload = ("%s\x00%s" % (salt, text)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class AutomatonStore:
    """A directory of content-addressed binary TEA snapshots.

    Parameters
    ----------
    root:
        Directory holding the snapshots (created lazily on first put).
    obs:
        Optional :class:`~repro.obs.Observability` receiving the
        ``store.*`` traffic counters; a private one is created
        otherwise.
    verify_on_load:
        When true (the default), :meth:`load` and :meth:`get_compiled`
        run the static snapshot rules (``TEA020``-``TEA025``) over the
        bytes before decoding and raise
        :class:`~repro.errors.VerificationError` — still a
        :class:`SerializationError` — on damage the CRC alone cannot
        see.  ``store.verify_ok`` / ``store.verify_failed`` count the
        outcomes.
    """

    def __init__(self, root=DEFAULT_STORE_DIR, obs=None,
                 verify_on_load=True):
        self.root = str(root)
        self.obs = obs if obs is not None else Observability()
        self.verify_on_load = bool(verify_on_load)
        metrics = self.obs.metrics
        self._puts = metrics.counter("store.puts")
        self._gets = metrics.counter("store.gets")
        self._bytes_written = metrics.counter("store.bytes_written")
        self._verify_ok = metrics.counter("store.verify_ok")
        self._verify_failed = metrics.counter("store.verify_failed")
        self._jit_hits = metrics.counter("store.jit_hits")
        self._jit_codegen = metrics.counter("store.jit_codegen")
        self._gc_removed = metrics.counter("store.gc_removed")
        self._mmap_opened = metrics.counter("store.mmap_opened")

    def _gate(self, key, data):
        """Run the snapshot rules over ``data`` when the gate is on."""
        if not self.verify_on_load:
            return
        from repro.verify.api import verify_snapshot_bytes

        report = verify_snapshot_bytes(data, source=key, deep=False)
        if report.ok():
            self._verify_ok.inc()
        else:
            self._verify_failed.inc()
            report.raise_on_error()

    # ------------------------------------------------------------------

    def path_for(self, key):
        """File backing ``key`` (two-level sharding by hash prefix)."""
        return os.path.join(self.root, key[:2], key + SNAPSHOT_SUFFIX)

    def put_bytes(self, data):
        """Store raw snapshot bytes; returns their content key.

        Validates the envelope first so a store can never hold a file
        that is not a parseable snapshot.  Re-putting existing content
        is a cheap no-op (the key already names identical bytes).
        """
        peek_tea_binary(data)  # envelope + CRC validation
        key = snapshot_key(data)
        path = self.path_for(key)
        if not os.path.exists(path):
            atomic_write_bytes(path, data)
            self._bytes_written.inc(len(data))
        self._puts.inc()
        return key

    def put(self, trace_set, tea=None, profile=None, meta=None,
            version=DEFAULT_SNAPSHOT_VERSION):
        """Encode and store one automaton; returns its content key.

        ``version`` selects the snapshot format: 2 (the default) writes
        the mmap-able section layout, 1 the legacy varint stream.  Both
        are canonical per version — the same automaton always produces
        the same bytes, hence the same content key, within a format.
        """
        if version == BINARY_VERSION_V2:
            data = dump_tea_binary_v2(trace_set, tea=tea, profile=profile,
                                      meta=meta)
        elif version == BINARY_VERSION:
            data = dump_tea_binary(trace_set, tea=tea, profile=profile,
                                   meta=meta)
        else:
            raise SerializationError(
                "unknown snapshot version %r (know 1 and 2)" % (version,)
            )
        return self.put_bytes(data)

    def get_bytes(self, key):
        """Raw snapshot bytes for ``key``; raises on unknown keys."""
        try:
            with open(self.path_for(key), "rb") as handle:
                data = handle.read()
        except OSError:
            raise SerializationError(
                "no snapshot %s in store %s" % (key, self.root)
            ) from None
        self._gets.inc()
        return data

    def load(self, key, block_index, with_meta=False):
        """Rebuild ``(trace_set, tea, profile)`` for ``key``.

        ``block_index`` must be backed by the program image the
        snapshot was recorded against, exactly as for the JSON loaders.
        """
        data = self.get_bytes(key)
        self._gate(key, data)
        return load_tea_binary(data, block_index, with_meta=with_meta)

    def get_compiled(self, key):
        """A :class:`~repro.core.compiled.CompiledTea` for ``key``.

        Lowers the snapshot's automaton tables straight into the
        compiled flat-table layout — no program image, no ``TeaState``
        object graph, no Algorithm 1 (see
        :func:`~repro.store.binary.compile_tea_binary`).
        """
        data = self.get_bytes(key)
        self._gate(key, data)
        return compile_tea_binary(data, verify=False)

    def map_compiled(self, key):
        """A zero-copy :class:`~repro.core.compiled.CompiledTea` for
        ``key``, backed by a shared read-only ``mmap``.

        For v2 snapshots the automaton tables are int64 views straight
        into the mapped file: every process (and every caller within a
        process) mapping the same snapshot shares one page-cache copy,
        so cold-start cost is O(section table) and resident growth per
        extra worker is near zero.  The verify gate runs once per
        mapping, not once per call; ``store.mmap_opened`` counts fresh
        mappings.  v1 snapshots have no zero-copy layout and fall back
        to :meth:`get_compiled` (a private decoded copy).
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                head = handle.read(5)
        except OSError:
            raise SerializationError(
                "no snapshot %s in store %s" % (key, self.root)
            ) from None
        if snapshot_version(head) != BINARY_VERSION_V2:
            return self.get_compiled(key)
        from repro.store.mapping import cached_mapping

        def gate(mapping):
            self._mmap_opened.inc()
            self._gate(key, mapping.data)

        self._gets.inc()
        return cached_mapping(path, gate=gate).compiled()

    def migrate(self, to_version=BINARY_VERSION_V2):
        """Re-encode every snapshot into ``to_version``; returns a dict
        mapping each re-encoded snapshot's old content key to its new
        one (unchanged snapshots are not in the dict).

        The conversion is checked before anything is deleted: the new
        bytes must convert *back* to the original image byte-for-byte
        (the TEA026 invariant), so a migration can never lose content.
        Because keys are content addresses, migrating changes them;
        cached JIT sources keyed by an old content key become orphans —
        run :meth:`gc` afterwards to prune them.
        """
        if to_version not in (BINARY_VERSION, BINARY_VERSION_V2):
            raise SerializationError(
                "unknown snapshot version %r (know 1 and 2)" % (to_version,)
            )
        forward = (convert_v1_to_v2 if to_version == BINARY_VERSION_V2
                   else convert_v2_to_v1)
        backward = (convert_v2_to_v1 if to_version == BINARY_VERSION_V2
                    else convert_v1_to_v2)
        migrated = {}
        for path in list(self._entry_paths()):
            with open(path, "rb") as handle:
                data = handle.read()
            if snapshot_version(data) == to_version:
                continue
            old_key = os.path.basename(path)[:-len(SNAPSHOT_SUFFIX)]
            self._gate(old_key, data)
            converted = forward(data)
            if backward(converted) != data:
                raise SerializationError(
                    "snapshot %s does not survive the v%d round-trip; "
                    "refusing to migrate it" % (old_key, to_version)
                )
            migrated[old_key] = self.put_bytes(converted)
            try:
                os.unlink(path)
            except OSError:
                pass
        return migrated

    def describe(self, key):
        """Structural summary of ``key`` (no program image needed)."""
        info = peek_tea_binary(self.get_bytes(key))
        info["key"] = key
        return info

    def put_minimized(self, key, block_index=None, mode="exact",
                      budget=None, hotness=None):
        """Minimize snapshot ``key`` and store the result next to it.

        Returns ``(new_key, result)`` — the minimized snapshot's
        content key and the :class:`~repro.minimize.MinimizationResult`
        that produced it.  The new snapshot's meta carries full
        provenance (gated by verify rule TEA050 at every load
        boundary): ``minimized_from`` names the original content key,
        ``minimize`` summarizes the pass, and any ``label`` gains a
        ``-min`` suffix so the two never alias in the service registry.

        ``block_index`` must cover the program the snapshot was
        recorded against; when omitted it is rebuilt from the
        snapshot's ``benchmark``/``scale`` meta (the service
        convention).  The profile section is dropped — its counts are
        keyed by original state identities.
        """
        from repro.minimize import minimize_tea

        data = self.get_bytes(key)
        self._gate(key, data)
        meta = peek_tea_binary(data).get("meta") or {}
        if block_index is None:
            from repro.cfg.basic_block import BlockIndex
            from repro.verify.api import program_for_meta

            program = program_for_meta(meta)
            if program is None:
                raise SerializationError(
                    "snapshot %s carries no benchmark meta; pass a "
                    "block_index to minimize it" % key
                )
            block_index = BlockIndex(program)
        trace_set, tea, _profile = load_tea_binary(data, block_index)
        result = minimize_tea(tea, mode=mode, budget=budget,
                              hotness=hotness, obs=self.obs)
        out_meta = dict(meta)
        out_meta["minimized_from"] = key
        out_meta["minimize"] = result.describe()
        if out_meta.get("label"):
            out_meta["label"] = "%s-min" % out_meta["label"]
        new_key = self.put(trace_set, tea=result.tea, meta=out_meta)
        return new_key, result

    # ------------------------------------------------------------------
    # JIT code cache

    def jit_path_for(self, key, config=None):
        """File caching ``key``'s generated replay source for ``config``."""
        from repro.core.jit import jit_config_token
        from repro.core.replay import ReplayConfig

        config = config or ReplayConfig.global_local()
        return os.path.join(
            self.root, key[:2],
            "%s.%s%s" % (key, jit_config_token(config), JIT_SUFFIX),
        )

    def get_jit(self, key, config=None, params=None):
        """``(compiled, code)`` for ``key``: the snapshot's compiled
        lowering plus its specialized :class:`~repro.core.jit.JitCode`.

        The generated source is cached on disk next to the TEAB blob,
        keyed by the snapshot's content key and the config token.  A
        cached source is reused only when it passes the same gates a
        fresh :class:`~repro.core.jit.JitReplayer` applies — the
        TEA033/TEA034 verify rules (when ``verify_on_load`` is set)
        plus the digest/config/params guard — otherwise it is
        regenerated and rewritten.  ``store.jit_hits`` counts reuses,
        ``store.jit_codegen`` counts (re)generations.
        """
        from repro.core.jit import JitCode, generate_replay_source
        from repro.core.replay import ReplayConfig
        from repro.dbt.cost import CostModel

        config = config or ReplayConfig.global_local()
        params = params if params is not None else CostModel().params
        compiled = self.get_compiled(key)
        path = self.jit_path_for(key, config)
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                source = None
            if source is not None and self._gate_jit(source, compiled, path):
                code = JitCode.from_source(source)
                if code.matches(compiled=compiled, config=config,
                                params=params):
                    self._jit_hits.inc()
                    return compiled, code
        source = generate_replay_source(compiled, config=config,
                                        params=params)
        atomic_write_bytes(path, source.encode("utf-8"))
        self._bytes_written.inc(len(source))
        self._jit_codegen.inc()
        return compiled, JitCode.from_source(source)

    def _gate_jit(self, source, compiled, path):
        """Run TEA033/TEA034 over a cached source when the gate is on.

        Returns True when the source may be executed; a failed gate
        counts in ``store.verify_failed`` and triggers regeneration
        rather than raising — stale cached code is recoverable, unlike
        a damaged snapshot.
        """
        if not self.verify_on_load:
            return True
        from repro.verify.api import verify_jit_source

        report = verify_jit_source(source, compiled=compiled, source_name=path)
        if report.ok():
            self._verify_ok.inc()
            return True
        self._verify_failed.inc()
        return False

    # ------------------------------------------------------------------

    def _entry_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for filename in sorted(os.listdir(shard_dir)):
                if (filename.endswith(SNAPSHOT_SUFFIX)
                        and not filename.startswith(".")):
                    yield os.path.join(shard_dir, filename)

    def keys(self):
        """Content keys of every stored snapshot (sorted)."""
        return [
            os.path.basename(path)[:-len(SNAPSHOT_SUFFIX)]
            for path in self._entry_paths()
        ]

    def __contains__(self, key):
        return os.path.exists(self.path_for(key))

    def __len__(self):
        return sum(1 for _ in self._entry_paths())

    def total_bytes(self):
        """Bytes used by all snapshots."""
        return sum(os.path.getsize(path) for path in self._entry_paths())

    def _jit_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for filename in sorted(os.listdir(shard_dir)):
                if (filename.endswith(JIT_SUFFIX)
                        and not filename.startswith(".")):
                    yield os.path.join(shard_dir, filename)

    def _superseded_keys(self):
        """Keys named in another present snapshot's ``supersedes`` meta.

        ``meta["supersedes"]`` (a content key or list of them) is the
        hot-reload breadcrumb: ``repro tools service build`` stamps it
        on a rebuilt snapshot so the swap it triggers leaves a record of
        what it replaced.  Chains resolve because the claims are
        collected before anything is removed — if C supersedes B and B
        supersedes A, one pass prunes both A and B.
        """
        superseded = set()
        for path in self._entry_paths():
            key = os.path.basename(path)[:-len(SNAPSHOT_SUFFIX)]
            try:
                with open(path, "rb") as handle:
                    meta = peek_tea_binary(handle.read()).get("meta") or {}
            except (OSError, SerializationError):
                continue
            names = meta.get("supersedes")
            if isinstance(names, str):
                names = (names,)
            for name in names or ():
                if name != key:
                    superseded.add(name)
        return superseded

    def gc(self):
        """Prune superseded snapshots and orphaned cached JIT sources;
        returns how many files were removed.

        Two passes, counted together in ``store.gc_removed``:

        1. Any snapshot named in another present snapshot's
           ``meta["supersedes"]`` is deleted — these are the old
           versions a hot-reload swap retired but left on disk so
           in-flight replays could drain.
        2. A ``<key>.<config>.jit.py`` cache entry is only meaningful
           next to its sibling ``<key>.teab`` snapshot (TEA034 proves
           the baked tables against it); orphans — including those the
           first pass just created — are pruned.
        """
        removed = 0
        superseded = self._superseded_keys()
        for key in superseded:
            path = self.path_for(key)
            if not os.path.exists(path):
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        for path in list(self._jit_paths()):
            key = os.path.basename(path).split(".", 1)[0]
            if os.path.exists(self.path_for(key)):
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._gc_removed.inc(removed)
        return removed

    def clear(self):
        """Delete every snapshot (and cached JIT source); returns how
        many snapshots were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        for path in list(self._jit_paths()):
            try:
                os.unlink(path)
            except OSError:
                pass
        return removed

    def __repr__(self):
        return "<AutomatonStore %s: %d snapshots>" % (self.root, len(self))


def describe_snapshot(path):
    """Format-sniffing summary of a TEA file (JSON document or binary).

    Backs ``repro tools tea info``: returns the same dict shape for
    both formats — version, format, state/transition/head counts,
    profile presence, on-disk size, plus the minimization-relevant
    ``mergeable_estimate`` (a first-order upper bound on how many
    states partition refinement could merge; see
    :func:`repro.minimize.mergeable_estimate`).  JSON documents rebuild
    their automaton with Algorithm 1, so the derived counts (one state
    per TBB plus NTE, one transition per edge, one head per trace) are
    reported for them.
    """
    import json

    from repro.minimize import mergeable_estimate

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SerializationError("cannot read %s: %s" % (path, error)) from None
    if data[:4] == b"TEAB":
        info = peek_tea_binary(data)
        if snapshot_version(data) == BINARY_VERSION_V2:
            # The CSR tables sit raw in the file: read them as int64
            # views, never materializing an automaton at all.
            from repro.store.binary_v2 import (
                SEC_HEAD_SIDS, SEC_TRANS_LABELS, SEC_TRANS_OFFSET,
                int64_section, open_v2,
            )

            sections = open_v2(data)
            offsets = int64_section(data, *sections[SEC_TRANS_OFFSET][:2])
            labels = int64_section(data, *sections[SEC_TRANS_LABELS][:2])
            head_sids = int64_section(data, *sections[SEC_HEAD_SIDS][:2])
            n_states = len(offsets) - 1
        else:
            compiled = compile_tea_binary(data, verify=False)
            offsets = compiled.trans_offset
            labels = compiled.trans_labels
            head_sids = compiled.head_sids
            n_states = compiled.n_states
        edge_labels = [
            list(labels[offsets[sid]:offsets[sid + 1]])
            for sid in range(n_states)
        ]
        info["mergeable_estimate"] = mergeable_estimate(
            edge_labels, set(head_sids)
        )
        return info
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SerializationError(
            "%s is neither a binary TEA snapshot nor a JSON document" % path
        ) from None
    if not isinstance(document, dict) or "version" not in document:
        raise SerializationError("%s is not a TEA document" % path)
    traces_doc = document.get("traces", document)
    traces = traces_doc.get("traces", [])
    n_tbbs = sum(len(trace.get("tbbs", ())) for trace in traces)
    n_edges = sum(len(trace.get("edges", ())) for trace in traces)
    # Mirror Algorithm 1's state numbering (NTE, then one state per TBB
    # in trace order) to estimate merge potential for documents too.
    edge_labels = [[]]
    head_sids = set()
    for trace in traces:
        first_sid = len(edge_labels)
        head_sids.add(first_sid)
        by_index = {}
        for from_index, _to_index, label in trace.get("edges", ()):
            by_index.setdefault(from_index, []).append(label)
        for index in range(len(trace.get("tbbs", ()))):
            edge_labels.append(by_index.get(index, []))
    return {
        "format": "json",
        "version": document.get("version"),
        "kind": traces_doc.get("kind"),
        "traces": len(traces),
        "tbbs": n_tbbs,
        "edges": n_edges,
        "states": n_tbbs + 1,
        "transitions": n_edges,
        "heads": len(traces),
        "profile": "profile" in document,
        "meta": None,
        "bytes": len(data),
        "mergeable_estimate": mergeable_estimate(edge_labels, head_sids),
    }
