"""Shared read-only snapshot mappings (``mmap`` + zero-copy compile).

A :class:`SnapshotMapping` is an open, read-only ``mmap`` of a TEAB v2
snapshot plus the :class:`~repro.core.compiled.CompiledTea` lowered
zero-copy over it.  Because the compiled tables are int64 views into
the mapping, every process that maps the same snapshot file shares one
copy of the automaton in the page cache — the per-process resident
cost of "loading" a snapshot collapses to a few dict builds.  This is
how the replay service, the cluster workers and the parallel-harness
worker pools hold fleet-wide automata without pickling them around.

:func:`cached_compiled` adds the per-process discipline: one mapping
per (path, mtime, size), reused by every caller in the process (e.g.
all threads of a service worker, or each ``multiprocessing`` pool
worker after the first task touching the snapshot).

Closing is cooperative: ``mmap.close()`` refuses while int64 views are
still exported, so :meth:`SnapshotMapping.close` drops its own
references and leaves the final unmap to garbage collection when
replays still hold the compiled automaton — exactly the "retire the
old mapping when in-flight replays drain" behavior hot-reload needs.
"""

from __future__ import annotations

import mmap
import os
import threading

from repro.errors import SerializationError
from repro.store.binary import snapshot_version
from repro.store.binary_v2 import BINARY_VERSION_V2, compile_tea_binary_v2


class SnapshotMapping:
    """One read-only ``mmap`` of a TEAB v2 snapshot file."""

    __slots__ = ("path", "_mmap", "_compiled", "closed")

    def __init__(self, path: object) -> None:
        self.path = str(path)
        try:
            with open(self.path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as error:
            raise SerializationError(
                "cannot map %s: %s" % (self.path, error)
            ) from None
        self._compiled = None
        self.closed = False

    @property
    def data(self):
        """The raw mapped bytes (a buffer; index/slice like bytes)."""
        return self._mmap

    @property
    def size(self) -> int:
        return len(self._mmap)

    def compiled(self):
        """The zero-copy :class:`~repro.core.compiled.CompiledTea`.

        Built on first call (the bytes must already be gated — the
        store's verify-on-load does that); cached, so every caller
        shares one instance whose tables are views into the mapping.
        """
        if self._compiled is None:
            self._compiled = compile_tea_binary_v2(self._mmap, verify=False)
        return self._compiled

    def close(self) -> bool:
        """Release this mapping's own references; returns True when the
        underlying ``mmap`` actually closed.

        When compiled views are still exported elsewhere (an in-flight
        replay), the unmap is deferred to garbage collection — the
        mapping is marked closed either way and must not be reused.
        """
        self.closed = True
        self._compiled = None
        try:
            self._mmap.close()
        except BufferError:
            return False
        return True

    def __repr__(self) -> str:
        return "<SnapshotMapping %s (%d bytes%s)>" % (
            self.path, self.size, ", closed" if self.closed else "",
        )


def open_snapshot_mapping(path):
    """A :class:`SnapshotMapping` over ``path``, or ``None``.

    Returns ``None`` when the file is not a TEAB v2 snapshot (v1 files
    have no zero-copy layout — read and decode them instead).  Raises
    :class:`SerializationError` when the file cannot be read at all.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(5)
    except OSError as error:
        raise SerializationError(
            "cannot read %s: %s" % (path, error)
        ) from None
    if snapshot_version(head) != BINARY_VERSION_V2:
        return None
    return SnapshotMapping(path)


#: Process-local mapping cache: (realpath, mtime_ns, size) -> mapping.
#: Guarded by ``_PROCESS_LOCK`` — service worker threads and the event
#: loop's executor all call :func:`cached_mapping` concurrently, and
#: the "open + gate exactly once" contract needs the whole check-open-
#: gate-insert sequence to be atomic (TEA082).  ``_PROCESS_LOCK`` is
#: the outermost lock in the documented acquisition order
#: (``_PROCESS_LOCK`` < ``_jit_lock`` < ``_replay_memo_lock``).
_PROCESS_CACHE = {}
_PROCESS_LOCK = threading.Lock()


def cached_mapping(path, gate=None):
    """The process-shared :class:`SnapshotMapping` for a v2 snapshot.

    The mapping is opened once per process per file version (keyed by
    path + mtime + size, so an atomically replaced snapshot gets a
    fresh mapping) and reused by every subsequent caller — worker pools
    fork or spawn, call this in the task body, and end up with all
    processes reading the same page-cache copy.  ``gate`` (if given) is
    called with the mapping exactly once, on first open; when it raises
    the mapping is closed and not cached — how the store runs its
    verify-on-load scan once per mapping instead of once per call.
    Raises :class:`SerializationError` for missing files or v1
    snapshots (no zero-copy layout to share).
    """
    real = os.path.realpath(path)
    try:
        stat = os.stat(real)
    except OSError as error:
        raise SerializationError(
            "cannot stat %s: %s" % (path, error)
        ) from None
    cache_key = (real, stat.st_mtime_ns, stat.st_size)
    with _PROCESS_LOCK:
        mapping = _PROCESS_CACHE.get(cache_key)
        if mapping is None:
            mapping = open_snapshot_mapping(real)
            if mapping is None:
                raise SerializationError(
                    "%s is not a TEAB v2 snapshot; only v2 has a "
                    "zero-copy layout (run 'repro tools store migrate')"
                    % path
                )
            if gate is not None:
                try:
                    gate(mapping)
                except BaseException:
                    mapping.close()
                    raise
            _PROCESS_CACHE[cache_key] = mapping
    return mapping


def cached_compiled(path):
    """The process-shared compiled automaton for a v2 snapshot file.

    Convenience over :func:`cached_mapping` — same cache, same
    errors — returning the zero-copy compiled automaton directly.
    """
    return cached_mapping(path).compiled()


def clear_mapping_cache() -> None:
    """Close and drop every cached mapping (tests; post-fork hygiene)."""
    with _PROCESS_LOCK:
        for mapping in _PROCESS_CACHE.values():
            mapping.close()
        _PROCESS_CACHE.clear()
