"""``repro.store`` — persistent, reusable TEA snapshots.

The paper's third listed use of TEA is "storing trace shape and
profiling information for reuse in future executions".  This package
turns that into a real artifact layer:

- :mod:`repro.store.binary` — the ``TEAB`` binary snapshot codec:
  magic + version + CRC32 envelope around varint/delta-encoded trace
  tables, the automaton's state/transition/head tables, and optional
  profile counters.  Loading rebuilds the saved automaton byte-exactly
  *without* re-running Algorithm 1.
- :mod:`repro.store.store` — :class:`AutomatonStore`, a
  content-addressed snapshot directory with atomic writes, plus
  :func:`describe_snapshot` for format-sniffing inspection of both the
  binary and the JSON TEA formats.

The replay service (:mod:`repro.service`) serves snapshots straight
out of a store; ``repro tools tea info`` inspects individual files.
"""

from repro.store.binary import (
    BINARY_VERSION,
    compile_tea_binary,
    dump_tea_binary,
    load_tea_binary,
    load_tea_binary_file,
    peek_tea_binary,
    save_tea_binary,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    AutomatonStore,
    describe_snapshot,
    snapshot_key,
    stable_hash64,
)

__all__ = [
    "BINARY_VERSION",
    "compile_tea_binary",
    "dump_tea_binary",
    "load_tea_binary",
    "load_tea_binary_file",
    "peek_tea_binary",
    "save_tea_binary",
    "AutomatonStore",
    "DEFAULT_STORE_DIR",
    "describe_snapshot",
    "snapshot_key",
    "stable_hash64",
]
