"""``repro.store`` — persistent, reusable TEA snapshots.

The paper's third listed use of TEA is "storing trace shape and
profiling information for reuse in future executions".  This package
turns that into a real artifact layer:

- :mod:`repro.store.binary` — the ``TEAB`` binary snapshot codec:
  magic + version + CRC32 envelope around varint/delta-encoded trace
  tables, the automaton's state/transition/head tables, and optional
  profile counters.  Loading rebuilds the saved automaton byte-exactly
  *without* re-running Algorithm 1.
- :mod:`repro.store.binary_v2` — the TEAB v2 section layout: the same
  content behind a fixed header + section table whose automaton tables
  are raw little-endian int64 runs, so a snapshot lowers to a
  :class:`~repro.core.compiled.CompiledTea` *zero-copy* from an
  ``mmap``.  ``convert_v1_to_v2`` / ``convert_v2_to_v1`` translate
  between the formats byte-canonically.
- :mod:`repro.store.mapping` — :class:`SnapshotMapping`, one shared
  read-only ``mmap`` of a v2 snapshot per process, and the cache that
  lets every worker in a fleet serve the same page-cache copy.
- :mod:`repro.store.store` — :class:`AutomatonStore`, a
  content-addressed snapshot directory with atomic writes (v2 by
  default, v1 read-compatible, ``migrate()`` between them), plus
  :func:`describe_snapshot` for format-sniffing inspection of both the
  binary and the JSON TEA formats.

The replay service (:mod:`repro.service`) serves snapshots straight
out of a store; ``repro tools tea info`` inspects individual files.
"""

from repro.store.binary import (
    BINARY_VERSION,
    compile_tea_binary,
    dump_tea_binary,
    load_tea_binary,
    load_tea_binary_file,
    peek_tea_binary,
    save_tea_binary,
    snapshot_version,
)
from repro.store.binary_v2 import (
    BINARY_VERSION_V2,
    DEFAULT_SNAPSHOT_VERSION,
    convert_v1_to_v2,
    convert_v2_to_v1,
    dump_tea_binary_v2,
)
from repro.store.mapping import (
    SnapshotMapping,
    cached_compiled,
    cached_mapping,
    clear_mapping_cache,
    open_snapshot_mapping,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    AutomatonStore,
    describe_snapshot,
    snapshot_key,
    stable_hash64,
)

__all__ = [
    "BINARY_VERSION",
    "BINARY_VERSION_V2",
    "DEFAULT_SNAPSHOT_VERSION",
    "compile_tea_binary",
    "convert_v1_to_v2",
    "convert_v2_to_v1",
    "dump_tea_binary",
    "dump_tea_binary_v2",
    "load_tea_binary",
    "load_tea_binary_file",
    "peek_tea_binary",
    "save_tea_binary",
    "snapshot_version",
    "AutomatonStore",
    "DEFAULT_STORE_DIR",
    "describe_snapshot",
    "snapshot_key",
    "stable_hash64",
    "SnapshotMapping",
    "cached_compiled",
    "cached_mapping",
    "clear_mapping_cache",
    "open_snapshot_mapping",
]
