"""The mmap-able binary TEA snapshot codec (format ``TEAB`` v2).

TEAB v1 (:mod:`repro.store.binary`) is a monolithic varint blob: every
load re-decodes every transition with a Python loop.  v2 keeps the v1
*content* — the same trace grammar, the same automaton, the same
optional profile and meta — but lays the automaton tables out exactly
the way :class:`~repro.core.compiled.CompiledTea` consumes them: raw
little-endian int64 arrays, each section 8-byte aligned, addressed by a
fixed header + section table.  Loading the compiled automaton is then
O(file size): one ``memoryview.cast('q')`` per section straight over an
``mmap`` (zero-copy, page cache shared across every process mapping the
same snapshot) or one ``array.frombytes`` per section, with no varint
decode loop and no per-element Python work.

Layout
------
::

    header (24 bytes)
        magic        b"TEAB"
        u8           format version (2)
        u8           flags (reserved, must be 0)
        u16le        n_sections
        u64le        file size in bytes
        u32le        CRC32 over header[0:16] + section table
        u32le        reserved (must be 0)
    section table (32 bytes per entry, ascending section id)
        u32le        section id
        u32le        CRC32 over the section payload
        u64le        payload offset from file start (8-byte aligned)
        u64le        payload length in bytes
        u64le        item count (0 for blob sections)
    sections, in table order, zero-padded to 8-byte alignment

Sections (``*`` = required):

==  =============  =====================================================
 1  SUMMARY*       canonical JSON: trace-set kind + trace/TBB/edge counts
 2  META           canonical JSON snapshot metadata (v1 meta section)
 3  TRACES*        the v1 traces section, byte-for-byte (varint grammar)
 4  STATE_REFS*    (trace_id, tbb_index) int64 pairs, state-id order
 5  TBB_FLAG*      one byte per state (0 = NTE, 1 = in-trace)
 6  TRANS_OFFSET*  CSR row offsets, (n_states + 1) int64
 7  TRANS_LABELS*  transition labels, label-sorted per state
 8  TRANS_DEST*    transition destination state ids
 9  HEAD_ENTRIES*  head registry entry PCs, ascending
10  HEAD_SIDS*     head registry state ids (parallel to 9)
11  LABEL_POOL*    interned PC pool: sorted distinct labels + entries
12  PROFILE        the v1 profile section, byte-for-byte
==  =============  =====================================================

The encoding is fully deterministic — same content, same bytes — so v2
snapshots content-address exactly like v1, and the conversions
:func:`convert_v1_to_v2` / :func:`convert_v2_to_v1` are exact inverses
on canonical inputs (verify rule ``TEA026`` checks that round trip).
All multi-byte integers are little-endian regardless of host byte
order; big-endian hosts fall back to a byteswapping ``array`` copy.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array

from repro.errors import SerializationError
from repro.store.binary import (
    FLAG_META,
    FLAG_PROFILE,
    MAGIC,
    _decode_automaton_tables,
    _decode_profile,
    _decode_traces,
    _open_snapshot,
    _Reader,
    _scan_traces,
    dump_tea_binary,
    write_svarint,
    write_uvarint,
)

BINARY_VERSION_V2 = 2

#: The format new snapshots are written in (:meth:`AutomatonStore.put`).
DEFAULT_SNAPSHOT_VERSION = 2

HEADER_SIZE = 24
ENTRY_SIZE = 32

_HEADER = struct.Struct("<4sBBHQII")   # magic, ver, flags, n, size, crc, rsvd
_ENTRY = struct.Struct("<IIQQQ")       # id, crc, offset, length, count

SEC_SUMMARY = 1
SEC_META = 2
SEC_TRACES = 3
SEC_STATE_REFS = 4
SEC_TBB_FLAG = 5
SEC_TRANS_OFFSET = 6
SEC_TRANS_LABELS = 7
SEC_TRANS_DEST = 8
SEC_HEAD_ENTRIES = 9
SEC_HEAD_SIDS = 10
SEC_LABEL_POOL = 11
SEC_PROFILE = 12

SECTION_NAMES = {
    SEC_SUMMARY: "summary",
    SEC_META: "meta",
    SEC_TRACES: "traces",
    SEC_STATE_REFS: "state_refs",
    SEC_TBB_FLAG: "tbb_flag",
    SEC_TRANS_OFFSET: "trans_offset",
    SEC_TRANS_LABELS: "trans_labels",
    SEC_TRANS_DEST: "trans_dest",
    SEC_HEAD_ENTRIES: "head_entries",
    SEC_HEAD_SIDS: "head_sids",
    SEC_LABEL_POOL: "label_pool",
    SEC_PROFILE: "profile",
}

#: Sections every v2 snapshot must carry.
REQUIRED_SECTIONS = frozenset((
    SEC_SUMMARY, SEC_TRACES, SEC_STATE_REFS, SEC_TBB_FLAG,
    SEC_TRANS_OFFSET, SEC_TRANS_LABELS, SEC_TRANS_DEST,
    SEC_HEAD_ENTRIES, SEC_HEAD_SIDS, SEC_LABEL_POOL,
))

#: Sections whose payload is a packed little-endian int64 array.
INT64_SECTIONS = frozenset((
    SEC_STATE_REFS, SEC_TRANS_OFFSET, SEC_TRANS_LABELS, SEC_TRANS_DEST,
    SEC_HEAD_ENTRIES, SEC_HEAD_SIDS, SEC_LABEL_POOL,
))


def _canon_json(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _int64_bytes(values):
    """Pack an int sequence as little-endian int64 bytes."""
    packed = array("q", values)
    if sys.byteorder != "little":
        packed.byteswap()
    return packed.tobytes()


def int64_section(buffer, offset, length):
    """A zero-copy int64 view over ``buffer[offset:offset+length]``.

    On little-endian hosts this is a ``memoryview.cast('q')`` — no copy,
    and the view keeps the underlying buffer (e.g. an ``mmap``) alive.
    Big-endian hosts get a byteswapped ``array('q')`` copy instead; both
    behave identically for indexing, slicing, iteration and equality.
    """
    view = memoryview(buffer)[offset:offset + length]
    if sys.byteorder == "little":
        return view.cast("q")
    swapped = array("q")
    swapped.frombytes(view)
    swapped.byteswap()
    return swapped


# ---------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------

def _assemble_v2(kind, n_traces, n_tbbs, n_edges, meta_raw, traces_raw,
                 tables, profile_raw):
    """Build v2 bytes from pre-encoded blobs + decoded automaton tables."""
    (n_states, refs, trans_offset, trans_labels, trans_dest,
     head_entries, head_sids) = tables
    summary = _canon_json({
        "edges": n_edges, "kind": kind, "tbbs": n_tbbs, "traces": n_traces,
    }).encode("utf-8")
    label_pool = sorted(set(trans_labels) | set(head_entries))
    sections = [(SEC_SUMMARY, summary, 0)]
    if meta_raw is not None:
        sections.append((SEC_META, meta_raw, 0))
    sections.extend([
        (SEC_TRACES, traces_raw, n_traces),
        (SEC_STATE_REFS, _int64_bytes(refs), 2 * (n_states - 1)),
        (SEC_TBB_FLAG, b"\x00" + b"\x01" * (n_states - 1), n_states),
        (SEC_TRANS_OFFSET, _int64_bytes(trans_offset), n_states + 1),
        (SEC_TRANS_LABELS, _int64_bytes(trans_labels), len(trans_labels)),
        (SEC_TRANS_DEST, _int64_bytes(trans_dest), len(trans_dest)),
        (SEC_HEAD_ENTRIES, _int64_bytes(head_entries), len(head_entries)),
        (SEC_HEAD_SIDS, _int64_bytes(head_sids), len(head_sids)),
        (SEC_LABEL_POOL, _int64_bytes(label_pool), len(label_pool)),
    ])
    if profile_raw is not None:
        sections.append((SEC_PROFILE, profile_raw, 0))
    return _pack_v2(sections)


def _pack_v2(sections):
    """Serialize ``(id, payload, count)`` triples into a v2 file."""
    n_sections = len(sections)
    position = HEADER_SIZE + ENTRY_SIZE * n_sections
    body = bytearray()
    entries = []
    for sec_id, payload, count in sections:
        pad = (-position) % 8
        body += b"\x00" * pad
        position += pad
        entries.append(
            (sec_id, zlib.crc32(payload), position, len(payload), count)
        )
        body += payload
        position += len(payload)
    table = b"".join(_ENTRY.pack(*entry) for entry in entries)
    prefix = struct.pack("<4sBBHQ", MAGIC, BINARY_VERSION_V2, 0,
                         n_sections, position)
    table_crc = zlib.crc32(table, zlib.crc32(prefix))
    return prefix + struct.pack("<II", table_crc, 0) + table + bytes(body)


def dump_tea_binary_v2(trace_set, tea=None, profile=None, meta=None):
    """Serialize to v2 bytes (same content model as v1's dump).

    Implemented as encode-v1 + :func:`convert_v1_to_v2`, which makes the
    canonical-roundtrip guarantee structural: the v2 bytes for any
    content are *defined* as the conversion of its canonical v1 bytes.
    Writes are rare and loads are the hot path, so the extra encode is
    the right trade.
    """
    return convert_v1_to_v2(
        dump_tea_binary(trace_set, tea=tea, profile=profile, meta=meta)
    )


def convert_v1_to_v2(data):
    """Re-encode canonical v1 snapshot bytes as v2 bytes (exact inverse
    of :func:`convert_v2_to_v1` on canonical inputs)."""
    reader, flags = _open_snapshot(data)
    meta_raw = None
    if flags & FLAG_META:
        meta_raw = bytes(reader.take(reader.uvarint()))
    traces_start = reader.pos
    kind, n_traces, n_tbbs, n_edges = _scan_traces(reader)
    traces_raw = bytes(data[traces_start:reader.pos])
    tables = _decode_automaton_tables(reader)
    profile_raw = None
    if flags & FLAG_PROFILE:
        profile_raw = bytes(data[reader.pos:reader.end])
        reader.pos = reader.end
    if not reader.exhausted:
        raise SerializationError(
            "%d trailing bytes after snapshot payload"
            % (reader.end - reader.pos)
        )
    return _assemble_v2(kind, n_traces, n_tbbs, n_edges, meta_raw,
                        traces_raw, tables, profile_raw)


def convert_v2_to_v1(data):
    """Re-encode v2 snapshot bytes as canonical v1 bytes."""
    sections = open_v2(data)
    out = bytearray()
    out += MAGIC
    out.append(1)
    flags = 0
    if SEC_META in sections:
        flags |= FLAG_META
    if SEC_PROFILE in sections:
        flags |= FLAG_PROFILE
    out.append(flags)
    if SEC_META in sections:
        meta_raw = _section_bytes(data, sections, SEC_META)
        write_uvarint(out, len(meta_raw))
        out += meta_raw
    out += _section_bytes(data, sections, SEC_TRACES)
    refs = _int64_of(data, sections, SEC_STATE_REFS)
    trans_offset = _int64_of(data, sections, SEC_TRANS_OFFSET)
    trans_labels = _int64_of(data, sections, SEC_TRANS_LABELS)
    trans_dest = _int64_of(data, sections, SEC_TRANS_DEST)
    head_entries = _int64_of(data, sections, SEC_HEAD_ENTRIES)
    head_sids = _int64_of(data, sections, SEC_HEAD_SIDS)
    n_states = sections[SEC_TBB_FLAG][2]
    write_uvarint(out, n_states)
    for value in refs:
        if value < 0:
            raise SerializationError(
                "negative state reference %d in v2 snapshot" % value
            )
        write_uvarint(out, value)
    for sid in range(n_states):
        low, high = trans_offset[sid], trans_offset[sid + 1]
        write_uvarint(out, high - low)
        previous = 0
        for position in range(low, high):
            label = trans_labels[position]
            write_svarint(out, label - previous)
            write_uvarint(out, trans_dest[position])
            previous = label
    write_uvarint(out, len(head_entries))
    previous = 0
    for entry, sid in zip(head_entries, head_sids):
        write_svarint(out, entry - previous)
        write_uvarint(out, sid)
        previous = entry
    if SEC_PROFILE in sections:
        out += _section_bytes(data, sections, SEC_PROFILE)
    out += zlib.crc32(out).to_bytes(4, "little")
    return bytes(out)


# ---------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------

def open_v2(data, check_crc=True):
    """Validate the v2 envelope; returns ``{id: (offset, length, count)}``.

    Checks magic/version/flags, the header + section-table CRC, table
    entry sanity (known ids, ascending, aligned, in bounds,
    non-overlapping), required-section presence, int64 section size
    consistency, and (with ``check_crc``, the default) every
    per-section CRC.  Raises :class:`SerializationError` on the first
    problem — the collecting equivalent lives in the verifier
    (``TEA024``/``TEA025``).
    """
    size = len(data)
    if size < HEADER_SIZE:
        raise SerializationError(
            "snapshot is %d bytes, shorter than the %d-byte v2 header"
            % (size, HEADER_SIZE)
        )
    magic, version, flags, n_sections, file_size, table_crc, reserved = (
        _HEADER.unpack_from(data, 0)
    )
    if magic != MAGIC:
        raise SerializationError("bad magic: not a binary TEA snapshot")
    if version != BINARY_VERSION_V2:
        raise SerializationError(
            "unsupported binary TEA snapshot v%d" % version
        )
    if flags or reserved:
        raise SerializationError(
            "reserved v2 header bits are set (flags=%#x reserved=%#x)"
            % (flags, reserved)
        )
    if file_size != size:
        raise SerializationError(
            "v2 header names %d bytes but the snapshot is %d"
            % (file_size, size)
        )
    table_end = HEADER_SIZE + ENTRY_SIZE * n_sections
    if n_sections < 1 or table_end > size:
        raise SerializationError(
            "v2 section table (%d entries) does not fit in %d bytes"
            % (n_sections, size)
        )
    actual_crc = zlib.crc32(memoryview(data)[HEADER_SIZE:table_end],
                            zlib.crc32(memoryview(data)[:16]))
    if actual_crc != table_crc:
        raise SerializationError(
            "v2 section table CRC mismatch (stored %08x, computed %08x)"
            % (table_crc, actual_crc)
        )
    sections = {}
    previous_id = 0
    cursor = table_end
    for index in range(n_sections):
        sec_id, crc, offset, length, count = _ENTRY.unpack_from(
            data, HEADER_SIZE + ENTRY_SIZE * index
        )
        if sec_id not in SECTION_NAMES:
            raise SerializationError("unknown v2 section id %d" % sec_id)
        if sec_id <= previous_id:
            raise SerializationError(
                "v2 section ids are not strictly ascending (%d after %d)"
                % (sec_id, previous_id)
            )
        previous_id = sec_id
        if offset % 8:
            raise SerializationError(
                "section %s at offset %d is not 8-byte aligned"
                % (SECTION_NAMES[sec_id], offset)
            )
        if offset < cursor or offset + length > size:
            raise SerializationError(
                "section %s [%d, %d) overlaps or escapes the file"
                % (SECTION_NAMES[sec_id], offset, offset + length)
            )
        if sec_id in INT64_SECTIONS and length != 8 * count:
            raise SerializationError(
                "int64 section %s declares %d items but %d bytes"
                % (SECTION_NAMES[sec_id], count, length)
            )
        if sec_id == SEC_TBB_FLAG and length != count:
            raise SerializationError(
                "tbb_flag section declares %d states but %d bytes"
                % (count, length)
            )
        if check_crc:
            actual = zlib.crc32(memoryview(data)[offset:offset + length])
            if actual != crc:
                raise SerializationError(
                    "section %s CRC mismatch (stored %08x, computed %08x)"
                    % (SECTION_NAMES[sec_id], crc, actual)
                )
        sections[sec_id] = (offset, length, count)
        cursor = offset + length
    missing = REQUIRED_SECTIONS - sections.keys()
    if missing:
        raise SerializationError(
            "v2 snapshot is missing required section(s): %s"
            % ", ".join(sorted(SECTION_NAMES[m] for m in missing))
        )
    n_states = sections[SEC_TBB_FLAG][2]
    if n_states < 1:
        raise SerializationError("snapshot automaton has no NTE state")
    if sections[SEC_STATE_REFS][2] != 2 * (n_states - 1):
        raise SerializationError(
            "state_refs holds %d values for %d states"
            % (sections[SEC_STATE_REFS][2], n_states)
        )
    if sections[SEC_TRANS_OFFSET][2] != n_states + 1:
        raise SerializationError(
            "trans_offset holds %d values for %d states"
            % (sections[SEC_TRANS_OFFSET][2], n_states)
        )
    if sections[SEC_TRANS_LABELS][2] != sections[SEC_TRANS_DEST][2]:
        raise SerializationError("trans_labels/trans_dest length mismatch")
    if sections[SEC_HEAD_ENTRIES][2] != sections[SEC_HEAD_SIDS][2]:
        raise SerializationError("head_entries/head_sids length mismatch")
    return sections


def _section_bytes(data, sections, sec_id):
    offset, length, _count = sections[sec_id]
    return bytes(memoryview(data)[offset:offset + length])


def _int64_of(data, sections, sec_id):
    offset, length, _count = sections[sec_id]
    return int64_section(data, offset, length)


def _json_of(data, sections, sec_id, what):
    try:
        return json.loads(_section_bytes(data, sections, sec_id))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(
            "malformed snapshot %s: %s" % (what, error)
        ) from None


def peek_tea_binary_v2(data):
    """Header-only structural summary of v2 bytes.

    Counts come straight from the section table and the SUMMARY/META
    JSON — no automaton tables are materialized and no varint is
    decoded, so this is O(header) plus the CRC sweep.  The returned
    dict matches :func:`~repro.store.binary.peek_tea_binary` and adds a
    ``sections`` list with per-section sizes.
    """
    sections = open_v2(data)
    summary = _json_of(data, sections, SEC_SUMMARY, "summary")
    meta = None
    if SEC_META in sections:
        meta = _json_of(data, sections, SEC_META, "meta")
    return {
        "format": "binary",
        "version": BINARY_VERSION_V2,
        "kind": summary.get("kind"),
        "traces": summary.get("traces"),
        "tbbs": summary.get("tbbs"),
        "edges": summary.get("edges"),
        "states": sections[SEC_TBB_FLAG][2],
        "transitions": sections[SEC_TRANS_LABELS][2],
        "heads": sections[SEC_HEAD_ENTRIES][2],
        "labels": sections[SEC_LABEL_POOL][2],
        "profile": SEC_PROFILE in sections,
        "meta": meta,
        "bytes": len(data),
        "sections": [
            {
                "id": sec_id,
                "name": SECTION_NAMES[sec_id],
                "offset": offset,
                "bytes": length,
                "count": count,
            }
            for sec_id, (offset, length, count) in sorted(sections.items())
        ],
    }


def compile_tea_binary_v2(data, verify=True):
    """Lower v2 bytes into a :class:`~repro.core.compiled.CompiledTea`
    zero-copy.

    Every CSR table becomes an int64 view *into* ``data`` — pass an
    ``mmap`` (or any buffer) and the compiled automaton reads the page
    cache directly; N processes mapping the same snapshot share those
    pages.  The views keep ``data`` alive for the compiled automaton's
    lifetime.

    With ``verify=True`` the snapshot rule family certifies the bytes
    first.  Structural validation of the adopted tables is *not*
    repeated here: the v2 scan (rule ``TEA024``) already proves CSR
    sanity, which is what makes this path O(file size).
    """
    if verify:
        from repro.verify.api import verify_snapshot_bytes

        verify_snapshot_bytes(data, deep=False).raise_on_error()
    from repro.core.compiled import CompiledTea

    sections = open_v2(data, check_crc=not verify)
    offset, length, n_states = sections[SEC_TBB_FLAG]
    tbb_flag = bytes(memoryview(data)[offset:offset + length])
    return CompiledTea.from_buffers(
        n_states,
        tbb_flag,
        _int64_of(data, sections, SEC_TRANS_OFFSET),
        _int64_of(data, sections, SEC_TRANS_LABELS),
        _int64_of(data, sections, SEC_TRANS_DEST),
        _int64_of(data, sections, SEC_HEAD_ENTRIES),
        _int64_of(data, sections, SEC_HEAD_SIDS),
        labels=_int64_of(data, sections, SEC_LABEL_POOL),
        validate=False,
    )


def load_tea_binary_v2(data, block_index, with_meta=False):
    """Rebuild ``(trace_set, tea, profile_or_None)`` from v2 bytes.

    Bit-exact with the v1 loader on converted snapshots: the TRACES and
    PROFILE sections carry the v1 grammar verbatim, and the automaton
    is rebuilt from the CSR sections in the same state/transition/head
    order the v1 decoder produces.
    """
    from repro.core.automaton import TEA

    sections = open_v2(data)
    meta = None
    if SEC_META in sections:
        meta = _json_of(data, sections, SEC_META, "meta")
    reader = _Reader(_section_bytes(data, sections, SEC_TRACES))
    trace_set = _decode_traces(reader, block_index)
    if not reader.exhausted:
        raise SerializationError(
            "%d trailing bytes after the traces section"
            % (reader.end - reader.pos)
        )
    by_key = {
        (tbb.trace_id, tbb.index): tbb
        for trace in trace_set
        for tbb in trace
    }
    n_states = sections[SEC_TBB_FLAG][2]
    refs = _int64_of(data, sections, SEC_STATE_REFS)
    tea = TEA()
    for position in range(0, len(refs), 2):
        key = (refs[position], refs[position + 1])
        tbb = by_key.get(key)
        if tbb is None:
            raise SerializationError(
                "automaton state refers to unknown TBB (T%d, #%d)" % key
            )
        tea.add_tbb_state(tbb)
    states = tea.states
    trans_offset = _int64_of(data, sections, SEC_TRANS_OFFSET)
    trans_labels = _int64_of(data, sections, SEC_TRANS_LABELS)
    trans_dest = _int64_of(data, sections, SEC_TRANS_DEST)
    for sid in range(n_states):
        transitions = states[sid].transitions
        for position in range(trans_offset[sid], trans_offset[sid + 1]):
            dest = trans_dest[position]
            if not 0 <= dest < n_states:
                raise SerializationError(
                    "transition to unknown state %d" % dest
                )
            transitions[trans_labels[position]] = states[dest]
    for entry, sid in zip(_int64_of(data, sections, SEC_HEAD_ENTRIES),
                          _int64_of(data, sections, SEC_HEAD_SIDS)):
        if not 0 < sid < n_states:
            raise SerializationError("head refers to unknown state %d" % sid)
        tea.heads[entry] = states[sid]
    profile = None
    if SEC_PROFILE in sections:
        reader = _Reader(_section_bytes(data, sections, SEC_PROFILE))
        profile = _decode_profile(reader, FLAG_PROFILE, trace_set, tea)
        if not reader.exhausted:
            raise SerializationError(
                "%d trailing bytes after the profile section"
                % (reader.end - reader.pos)
            )
    if with_meta:
        return trace_set, tea, profile, meta
    return trace_set, tea, profile
