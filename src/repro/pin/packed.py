"""Packed transition streams for the compiled replay engine.

The Pin engine delivers one :class:`~repro.cfg.builder.BlockTransition`
object per executed block.  The compiled engine
(:class:`~repro.core.compiled.CompiledReplayer`) does not want objects —
it wants flat integers.  This module is the bridge: it packs transition
objects into ``array('q')`` batches of ``(next_start, instrs_dbt,
instrs_pin)`` triples, with a terminal transition's ``next_start=None``
encoded as :data:`~repro.core.compiled.END_OF_RUN` (-1; real PCs are
non-negative).

Two entry points:

- :func:`pack_transitions` — one-shot packing of a whole stream, for
  benchmarks and tests that pre-capture transitions;
- :class:`PackedTransitionEncoder` — incremental packing with batch
  hand-off, what :class:`~repro.pin.tea_tool.TeaReplayTool` uses on the
  live callback path: ``add()`` returns a full batch when one is ready,
  ``flush()`` drains the remainder at end of run.
"""

from array import array

from repro.core.compiled import END_OF_RUN

#: Triples per batch handed to ``CompiledReplayer.run()`` when no
#: explicit batch size is configured.
DEFAULT_PACKED_BATCH = 4096


def pack_transitions(transitions):
    """Pack an iterable of block transitions into one flat ``array('q')``.

    The result holds ``3 * len(transitions)`` ints — consume it with
    :meth:`CompiledReplayer.run`.
    """
    packed = array("q")
    append = packed.append
    for transition in transitions:
        next_start = transition.next_start
        append(END_OF_RUN if next_start is None else next_start)
        append(transition.instrs_dbt)
        append(transition.instrs_pin)
    return packed


class PackedTransitionEncoder:
    """Incremental transition packer with fixed-size batch hand-off.

    ``batch_size`` counts *transitions* (triples), not ints.  Each full
    batch is returned exactly once from :meth:`add` and a fresh buffer
    is started, so the consumer may keep or discard the array freely.
    """

    __slots__ = ("batch_size", "_buffer")

    def __init__(self, batch_size=DEFAULT_PACKED_BATCH):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._buffer = array("q")

    def __len__(self):
        """Transitions currently buffered (not yet handed off)."""
        return len(self._buffer) // 3

    def add(self, transition):
        """Buffer one transition; returns a full batch or ``None``."""
        buffer = self._buffer
        next_start = transition.next_start
        buffer.append(END_OF_RUN if next_start is None else next_start)
        buffer.append(transition.instrs_dbt)
        buffer.append(transition.instrs_pin)
        if len(buffer) >= 3 * self.batch_size:
            self._buffer = array("q")
            return buffer
        return None

    def flush(self):
        """Hand off whatever is buffered; returns ``None`` when empty."""
        buffer = self._buffer
        if not buffer:
            return None
        self._buffer = array("q")
        return buffer
