"""Packed transition streams for the compiled replay engine.

The Pin engine delivers one :class:`~repro.cfg.builder.BlockTransition`
object per executed block.  The compiled engine
(:class:`~repro.core.compiled.CompiledReplayer`) does not want objects —
it wants flat integers.  This module is the bridge: it packs transition
objects into ``array('q')`` batches of ``(next_start, instrs_dbt,
instrs_pin)`` triples, with a terminal transition's ``next_start=None``
encoded as :data:`~repro.core.compiled.END_OF_RUN` (-1; real PCs are
non-negative).  A transition carrying a *genuinely negative* PC is
rejected with :class:`~repro.errors.PackedStreamError` at pack time —
letting it through would silently alias corrupt input onto the terminal
sentinel and end the replayed run early.

Two entry points:

- :func:`pack_transitions` — one-shot packing of a whole stream, for
  benchmarks and tests that pre-capture transitions;
- :class:`PackedTransitionEncoder` — incremental packing with batch
  hand-off, what :class:`~repro.pin.tea_tool.TeaReplayTool` uses on the
  live callback path: ``add()`` returns a full batch when one is ready,
  ``flush()`` drains the remainder at end of run.
"""

from array import array

from repro.core.compiled import END_OF_RUN
from repro.errors import PackedStreamError

#: Triples per batch handed to ``CompiledReplayer.run()`` when no
#: explicit batch size is configured.
DEFAULT_PACKED_BATCH = 4096


def _encode_next_start(next_start, index):
    """``None`` -> END_OF_RUN; negative real PCs are rejected."""
    if next_start is None:
        return END_OF_RUN
    if next_start < 0:
        raise PackedStreamError(
            "transition %d has negative next_start %d: negative values "
            "are reserved for the END_OF_RUN sentinel (use "
            "next_start=None for a terminal transition)"
            % (index, next_start),
            index=index, value=next_start,
        )
    return next_start


def pack_transitions(transitions):
    """Pack an iterable of block transitions into one flat ``array('q')``.

    The result holds ``3 * len(transitions)`` ints — consume it with
    :meth:`CompiledReplayer.run`.  Raises
    :class:`~repro.errors.PackedStreamError` on a transition whose
    ``next_start`` is negative (reserved for the terminal sentinel).
    """
    packed = array("q")
    append = packed.append
    for index, transition in enumerate(transitions):
        append(_encode_next_start(transition.next_start, index))
        append(transition.instrs_dbt)
        append(transition.instrs_pin)
    return packed


class PackedTransitionEncoder:
    """Incremental transition packer with fixed-size batch hand-off.

    ``batch_size`` counts *transitions* (triples), not ints.  Each full
    batch is returned exactly once from :meth:`add` and a fresh buffer
    is started, so the consumer may keep or discard the array freely.
    """

    __slots__ = ("batch_size", "_buffer")

    def __init__(self, batch_size=DEFAULT_PACKED_BATCH):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._buffer = array("q")

    def __len__(self):
        """Transitions currently buffered (not yet handed off)."""
        return len(self._buffer) // 3

    def add(self, transition):
        """Buffer one transition; returns a full batch or ``None``.

        Raises :class:`~repro.errors.PackedStreamError` on a negative
        ``next_start`` (the transition is *not* buffered; the index in
        the error counts transitions within the current batch).
        """
        buffer = self._buffer
        encoded = _encode_next_start(transition.next_start,
                                     len(buffer) // 3)
        buffer.append(encoded)
        buffer.append(transition.instrs_dbt)
        buffer.append(transition.instrs_pin)
        if len(buffer) >= 3 * self.batch_size:
            self._buffer = array("q")
            return buffer
        return None

    def flush(self):
        """Hand off whatever is buffered; returns ``None`` when empty."""
        buffer = self._buffer
        if not buffer:
            return None
        self._buffer = array("q")
        return buffer
