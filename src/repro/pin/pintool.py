"""The pintool API.

A pintool registers interest in block transitions; MiniPin calls
``on_transition`` for every completed dynamic basic block (StarDBT
flavour — taken/fall-through edges, per the Section 4.1 workaround) and
``on_finish`` once at program end.  ``attach`` hands the tool the engine
so it can reach the shared cost model, the block index and the program
image — analysis work the tool performs must be charged to that cost
model, the way real analysis routines cost real cycles.
"""


class Pintool:
    """Base class for instrumentation tools; override the hooks."""

    def __init__(self):
        self.pin = None

    def attach(self, pin):
        """Called by the engine before the run starts."""
        self.pin = pin

    @property
    def cost(self):
        return self.pin.cost

    def on_transition(self, transition):
        """One dynamic basic block completed (StarDBT-flavour blocks)."""

    def on_finish(self):
        """Program ended; finalize analysis state."""


class CallbackTool(Pintool):
    """Adapter: wrap plain callables as a pintool (handy in tests)."""

    def __init__(self, on_transition=None, on_finish=None):
        super().__init__()
        self._transition_fn = on_transition
        self._finish_fn = on_finish

    def on_transition(self, transition):
        if self._transition_fn is not None:
            self._transition_fn(transition)

    def on_finish(self):
        if self._finish_fn is not None:
            self._finish_fn()


class MultiTool(Pintool):
    """Run several pintools over one execution.

    Real Pin runs one tool per process; analyses that want to share a run
    compose inside the tool.  ``MultiTool`` is that composition: each
    sub-tool is attached to the same engine (one shared cost model — each
    tool still charges its own analysis work) and receives every
    transition in registration order.

    Example: replay a TEA *and* collect the DCFG in a single pass::

        tool = MultiTool([TeaReplayTool(trace_set=traces), DcfgTool()])
        Pin(program, tool=tool).run()
    """

    def __init__(self, tools):
        super().__init__()
        if not tools:
            raise ValueError("MultiTool needs at least one tool")
        self.tools = list(tools)

    def attach(self, pin):
        super().attach(pin)
        for tool in self.tools:
            tool.attach(pin)

    def on_transition(self, transition):
        for tool in self.tools:
            tool.on_transition(transition)

    def on_finish(self):
        for tool in self.tools:
            tool.on_finish()

    def __getitem__(self, index):
        return self.tools[index]

    def __len__(self):
        return len(self.tools)
