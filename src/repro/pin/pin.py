"""The MiniPin engine.

Runs a program on the interpreter while (a) charging Pin's own overheads
per the cost model and (b) delivering StarDBT-flavour block transitions
to the attached pintool.  Engine overheads, per the cost-model docs:

- ``PIN_BLOCK_STUB`` per *Pin-flavour* dynamic block (splits at
  cpuid/REP), modelling code-cache block dispatch;
- ``PIN_TRANSLATION_PER_INSTR`` the first time each block is executed;
- ``PIN_INDIRECT_EXTRA`` per indirect jump/call/return edge.

Instruction totals are exposed under both counting semantics; coverage
figures computed by TEA tools use Pin counting (REP iterations counted),
which is what makes our Table 2/3 coverages differ slightly from the
DBT's — the Section 4.1 effect.
"""

from repro.cfg.basic_block import BlockIndex
from repro.cfg.builder import FLAVOR_STARDBT, DynamicBlockBuilder
from repro.cpu.events import EDGE_IND_CALL, EDGE_IND_JMP, EDGE_RET
from repro.cpu.executor import DEFAULT_MAX_INSTRUCTIONS, Executor
from repro.dbt.cost import CostModel, CostParameters

_INDIRECT_KINDS = (EDGE_IND_JMP, EDGE_IND_CALL, EDGE_RET)


class PinResult:
    """Outcome of a MiniPin run."""

    __slots__ = ("cost", "instrs_dbt", "instrs_pin", "blocks", "tool", "halted")

    def __init__(self, cost, instrs_dbt, instrs_pin, blocks, tool, halted):
        self.cost = cost
        self.instrs_dbt = instrs_dbt
        self.instrs_pin = instrs_pin
        self.blocks = blocks
        self.tool = tool
        self.halted = halted

    @property
    def cycles(self):
        return self.cost.cycles

    @property
    def megacycles(self):
        return self.cost.megacycles

    def slowdown(self, native_cycles=None):
        """Slowdown versus native execution of the same run."""
        baseline = (
            native_cycles
            if native_cycles is not None
            else self.instrs_pin * self.cost.params.NATIVE_INSTRUCTION
        )
        return self.cycles / baseline if baseline else 0.0

    def __repr__(self):
        return "<PinResult %.1f Mcycles, %d blocks>" % (
            self.megacycles,
            self.blocks,
        )


class Pin:
    """The engine: one instance per program run.

    ``obs`` (optional :class:`~repro.obs.Observability`) is shared with
    the executor and exposed to the attached pintool, so one registry
    holds the whole stack's metrics; engine totals are flushed into
    ``pin.*`` counters at the end of the run.
    """

    def __init__(self, program, tool=None, cost_params=None,
                 max_instructions=DEFAULT_MAX_INSTRUCTIONS, obs=None):
        self.program = program
        self.tool = tool
        self.cost = CostModel(cost_params or CostParameters())
        self.block_index = BlockIndex(program)
        self.max_instructions = max_instructions
        self.obs = obs
        self._seen_block_ends = set()

    def run(self):
        """Execute under instrumentation; returns :class:`PinResult`."""
        obs = self.obs
        if obs is None:
            return self._run()
        with obs.metrics.timer("pin.run"):
            result = self._run()
        metrics = obs.metrics
        metrics.counter("pin.runs").inc()
        metrics.counter("pin.blocks").inc(result.blocks)
        metrics.counter("pin.translated_blocks").inc(
            len(self._seen_block_ends))
        metrics.counter("pin.instructions_dbt").inc(result.instrs_dbt)
        metrics.counter("pin.instructions_pin").inc(result.instrs_pin)
        return result

    def _run(self):
        cost = self.cost
        params = cost.params
        tool = self.tool
        if tool is not None:
            tool.attach(self)

        builder = DynamicBlockBuilder(
            self.block_index, self.program.entry, flavor=FLAVOR_STARDBT
        )
        executor = Executor(self.program, max_instructions=self.max_instructions,
                            obs=self.obs)
        consumed = [0, 0]
        pin_blocks = [0]
        indirects = [0]
        seen_ends = self._seen_block_ends
        deliver = tool.on_transition if tool is not None else None

        def on_event(event):
            consumed[0] += event.instrs_dbt
            consumed[1] += event.instrs_pin
            # Engine-side costs are per Pin-flavour block: every event
            # (control transfer or splitter) ends one.
            pin_blocks[0] += 1
            cost.charge("pin_dispatch", params.PIN_BLOCK_STUB)
            if event.pc not in seen_ends:
                seen_ends.add(event.pc)
                cost.charge(
                    "pin_translation",
                    params.PIN_TRANSLATION_PER_INSTR * event.instrs_dbt,
                )
            if event.kind in _INDIRECT_KINDS:
                indirects[0] += 1
                cost.charge("pin_indirect", params.PIN_INDIRECT_EXTRA)
            cost.charge_instructions(event.instrs_pin)
            transition = builder.feed(event)
            if transition is not None and deliver is not None:
                deliver(transition)

        result = executor.run(on_event)
        residual_dbt = result.instrs_dbt - consumed[0]
        residual_pin = result.instrs_pin - consumed[1]
        cost.charge_instructions(residual_pin)
        final = builder.flush(result.final_pc, residual_dbt, residual_pin)
        if deliver is not None:
            deliver(final)
        if tool is not None:
            tool.on_finish()
        if self.obs is not None:
            self.obs.metrics.counter("pin.indirect_edges").inc(indirects[0])
        return PinResult(
            cost,
            result.instrs_dbt,
            result.instrs_pin,
            pin_blocks[0] + 1,
            tool,
            result.halted,
        )


def run_native(program, max_instructions=DEFAULT_MAX_INSTRUCTIONS,
               cost_params=None):
    """Native baseline: the program alone, one cycle per instruction.

    Returns a :class:`PinResult`-shaped object so harness code can treat
    every configuration uniformly.
    """
    cost = CostModel(cost_params or CostParameters())
    executor = Executor(program, max_instructions=max_instructions)
    result = executor.run(None)
    cost.charge_instructions(result.instrs_pin)
    return PinResult(
        cost, result.instrs_dbt, result.instrs_pin, result.edges + 1, None,
        result.halted,
    )
