"""The TEA pintools: the paper's experimental tools under MiniPin.

"For this paper, we implemented a pintool that loads traces from a input
file and uses the traces for program execution.  Our tool is also capable
of recording traces if they are not available prior to program
execution."  That pintool is these two classes:

- :class:`TeaReplayTool` — loads a trace set (typically recorded by
  StarDBT and serialized), builds the TEA with Algorithm 1, and replays
  it against the executing program (Tables 2 and 4).
- :class:`TeaRecordTool` — records traces online with Algorithm 2 while
  maintaining the TEA (Table 3).
"""

from repro.core.builder import build_tea
from repro.core.compiled import CompiledReplayer, CompiledTea
from repro.core.jit import JitReplayer
from repro.core.online import OnlineTeaRecorder
from repro.core.replay import REPLAY_ENGINES, ReplayConfig, TeaReplayer
from repro.pin.packed import DEFAULT_PACKED_BATCH, PackedTransitionEncoder
from repro.pin.pintool import Pintool
from repro.traces import make_recorder
from repro.traces.model import TraceSet


class TeaReplayTool(Pintool):
    """Replay previously recorded traces via TEA.

    Parameters
    ----------
    trace_set:
        The traces to replay (pass an empty/None set for the Table 4
        "Empty" configuration).
    config:
        The transition-function configuration (Table 4 axes).
    profile:
        Optional :class:`~repro.core.profile.TeaProfile` to fill
        (object engine only — the compiled engine consumes packed int
        streams, which carry no per-transition objects to profile).
    link_traces:
        Materialise statically known trace-to-trace transitions in the
        automaton (ablation; the paper resolves them dynamically).
    obs:
        Optional :class:`~repro.obs.Observability` for the replayer's
        metrics; when omitted, the engine's own (``Pin(obs=...)``) is
        used so the whole run reports into one registry.
    batch_size:
        When set (> 0), transitions are buffered and fed to the batched
        engine in chunks of this size instead of per-call :meth:`step` —
        same accounting, lower interpreter overhead.  ``None`` (default)
        keeps exact per-call behaviour for the object engine
        (bit-identical float charge ordering); the compiled engine is
        batch-only and defaults to
        :data:`~repro.pin.packed.DEFAULT_PACKED_BATCH`.
    tea:
        A prebuilt automaton to replay.  When given, Algorithm 1 is
        *not* re-run — this is how the replay service drives automata
        loaded from binary store snapshots (``link_traces`` is ignored;
        the snapshot already fixed the transition tables).
    engine:
        ``"object"``, ``"compiled"`` or ``"jit"``; defaults to
        ``config.engine``.  The compiled and jit engines pack
        transitions into flat int batches and drive
        :class:`~repro.core.compiled.CompiledReplayer` /
        :class:`~repro.core.jit.JitReplayer` respectively.
    compiled:
        A prebuilt :class:`~repro.core.compiled.CompiledTea` (e.g. from
        :func:`repro.store.compile_tea_binary`).  Lowered from ``tea``
        on attach when omitted and the compiled or jit engine is
        selected.
    jit:
        A prebuilt :class:`~repro.core.jit.JitCode` (e.g. from
        :meth:`repro.store.AutomatonStore.get_jit`).  Generated from
        the compiled automaton on attach when omitted and the jit
        engine is selected.
    """

    def __init__(self, trace_set=None, config=None, profile=None,
                 link_traces=False, obs=None, batch_size=None, tea=None,
                 engine=None, compiled=None, jit=None):
        super().__init__()
        self.trace_set = trace_set if trace_set is not None else TraceSet()
        self.config = config or ReplayConfig.global_local()
        self.engine = engine if engine is not None else self.config.engine
        if self.engine not in REPLAY_ENGINES:
            raise ValueError(
                "engine must be one of %s" % ", ".join(
                    repr(name) for name in REPLAY_ENGINES
                )
            )
        if profile is not None and self.engine in ("compiled", "jit"):
            raise ValueError(
                "the %s engine cannot fill a TeaProfile (it replays "
                "packed int streams, not transition objects); use "
                "engine='object' for profiling runs" % self.engine
            )
        self.profile = profile
        self.obs = obs
        self.batch_size = batch_size if batch_size and batch_size > 0 else None
        self._buffer = []
        self._encoder = None
        self.tea = tea if tea is not None else build_tea(
            self.trace_set, link_traces=link_traces
        )
        self.compiled = compiled
        self.jit = jit
        self.replayer = None

    def attach(self, pin):
        super().attach(pin)
        obs = self.obs if self.obs is not None else pin.obs
        if self.engine in ("compiled", "jit"):
            if self.compiled is None:
                self.compiled = CompiledTea.from_tea(self.tea)
            if self.engine == "jit":
                self.replayer = JitReplayer(
                    self.compiled, config=self.config, cost=pin.cost,
                    obs=obs, code=self.jit,
                )
                self.jit = self.replayer.code
            else:
                self.replayer = CompiledReplayer(
                    self.compiled, config=self.config, cost=pin.cost,
                    obs=obs,
                )
            self._encoder = PackedTransitionEncoder(
                self.batch_size or DEFAULT_PACKED_BATCH
            )
            return
        self.replayer = TeaReplayer(
            self.tea, config=self.config, cost=pin.cost, profile=self.profile,
            obs=obs,
        )

    def on_transition(self, transition):
        encoder = self._encoder
        if encoder is not None:
            batch = encoder.add(transition)
            if batch is not None:
                self.replayer.run(batch)
            return
        if self.batch_size is None:
            self.replayer.step(transition)
            return
        buffer = self._buffer
        buffer.append(transition)
        if len(buffer) >= self.batch_size:
            self.replayer.run(buffer)
            buffer.clear()

    def on_finish(self):
        if self._encoder is not None:
            batch = self._encoder.flush()
            if batch is not None:
                self.replayer.run(batch)
            return
        if self._buffer:
            self.replayer.run(self._buffer)
            self._buffer.clear()

    @property
    def stats(self):
        return self.replayer.stats

    @property
    def coverage(self):
        """Covered instruction fraction under Pin counting (Section 4.1)."""
        return self.replayer.stats.coverage(pin_counting=True)

    def snapshot(self):
        """The replayer's observability snapshot (see TeaReplayer)."""
        return self.replayer.snapshot()


class TeaRecordTool(Pintool):
    """Record traces online (Algorithm 2) and grow the TEA as they finish."""

    def __init__(self, strategy="mret", limits=None, config=None,
                 profile=None, recorder_kwargs=None, obs=None):
        super().__init__()
        kwargs = dict(recorder_kwargs or {})
        kwargs["limits"] = limits
        self.recorder = make_recorder(strategy, **kwargs)
        self.config = config or ReplayConfig.global_local()
        self.profile = profile
        self.obs = obs
        self.online = None
        self.trace_set = None

    def attach(self, pin):
        super().attach(pin)
        obs = self.obs if self.obs is not None else pin.obs
        self.online = OnlineTeaRecorder(
            self.recorder, config=self.config, cost=pin.cost,
            profile=self.profile, obs=obs,
        )

    def on_transition(self, transition):
        self.online.observe(transition)

    def on_finish(self):
        self.trace_set = self.online.finish()

    @property
    def tea(self):
        return self.online.tea

    @property
    def stats(self):
        return self.online.stats

    @property
    def coverage(self):
        return self.online.stats.coverage(pin_counting=True)

    def snapshot(self):
        """The online recorder's observability snapshot."""
        return self.online.snapshot()
