"""MiniPin: a Pin-like dynamic instrumentation engine.

Pin JIT-compiles the running binary and lets a "pintool" insert analysis
callbacks.  MiniPin reproduces the parts the paper depends on:

- per-block dispatch and one-time translation overhead (the bare-Pin
  "Without Pintool" slowdown of Table 4);
- extra cost on indirect transfers (Pin resolves them through its code
  cache hash — why call-heavy eon/perlbmk are pricier);
- dynamic blocks that split at ``cpuid``/REP, while *tools* instrument
  taken/fall-through edges so they observe StarDBT-shaped transitions
  (the Section 4.1 workaround, implemented in
  :class:`~repro.pin.pin.Pin`);
- Pin-style instruction counting (REP iterations count individually).

The TEA pintools of the paper's experiments live in
:mod:`repro.pin.tea_tool`.
"""

from repro.pin.packed import (
    DEFAULT_PACKED_BATCH,
    PackedTransitionEncoder,
    pack_transitions,
)
from repro.pin.pin import Pin, PinResult, run_native
from repro.pin.pintool import CallbackTool, MultiTool, Pintool
from repro.pin.tea_tool import TeaRecordTool, TeaReplayTool

__all__ = [
    "Pin",
    "PinResult",
    "run_native",
    "Pintool",
    "CallbackTool",
    "MultiTool",
    "TeaReplayTool",
    "TeaRecordTool",
    "pack_transitions",
    "PackedTransitionEncoder",
    "DEFAULT_PACKED_BATCH",
]
