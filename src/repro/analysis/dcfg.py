"""Dynamic control-flow graph — TEA's explicit counterpart.

Section 3: "The TEA is logically similar to the dynamic control flow
graph (DCFG) for the traces ... TEA, however, contains just the *state*
information, whereas the DCFG contains code replication.  TEA also
models the whole program execution with the aid of the NTE state, while
the DCFG only represents the hot code."

:class:`DynamicCFG` collects the executed blocks and edges from the
block-transition stream (via :class:`DcfgTool` under MiniPin), accounts
the bytes an explicit code-carrying representation would need, and
renders to Graphviz.  :func:`compare_with_tea` quantifies the paper's
"state information vs code replication" contrast on real executions.
"""

from repro.core.memory_model import MemoryModel
from repro.pin.pintool import Pintool


class DcfgNode:
    """One executed basic block with its execution count."""

    __slots__ = ("block", "executions", "instrs_dbt")

    def __init__(self, block):
        self.block = block
        self.executions = 0
        self.instrs_dbt = 0

    def __repr__(self):
        return "<DcfgNode %#x x%d>" % (self.block.start, self.executions)


class DynamicCFG:
    """Executed blocks + executed edges, with counts."""

    def __init__(self):
        self.nodes = {}   # block start -> DcfgNode
        self.edges = {}   # (src start, dst start) -> count

    def add_transition(self, transition):
        start = transition.block.start
        node = self.nodes.get(start)
        if node is None:
            node = DcfgNode(transition.block)
            self.nodes[start] = node
        node.executions += 1
        node.instrs_dbt += transition.instrs_dbt
        if transition.next_start is not None:
            key = (start, transition.next_start)
            self.edges[key] = self.edges.get(key, 0) + 1

    @property
    def n_nodes(self):
        return len(self.nodes)

    @property
    def n_edges(self):
        return len(self.edges)

    @property
    def code_bytes(self):
        """Original code bytes across all executed blocks."""
        return sum(node.block.size_bytes for node in self.nodes.values())

    def representation_bytes(self, model=None):
        """Bytes to materialise this DCFG *with code* (the paper's
        contrast object): replicated/translated block code plus an edge
        record per distinct edge."""
        model = model or MemoryModel()
        code = self.code_bytes * model.translation_expansion
        edges = self.n_edges * model.link_record_bytes
        descriptors = self.n_nodes * 8  # block descriptor (addr + meta)
        return code + edges + descriptors

    def hottest_nodes(self, limit=10):
        ranked = sorted(self.nodes.values(), key=lambda n: -n.executions)
        return ranked[:limit]

    def hot_subgraph(self, min_executions):
        """Node starts executed at least ``min_executions`` times — the
        'hot code' subset a trace DCFG would represent."""
        return {
            start for start, node in self.nodes.items()
            if node.executions >= min_executions
        }

    def to_dot(self, min_executions=0):
        lines = ["digraph dcfg {", "  node [shape=box, fontname=monospace];"]
        kept = self.hot_subgraph(min_executions)
        for start, node in sorted(self.nodes.items()):
            if start not in kept:
                continue
            lines.append(
                '  b%x [label="%#x..%#x\\nx%d"];'
                % (start, node.block.start, node.block.end, node.executions)
            )
        for (src, dst), count in sorted(self.edges.items()):
            if src in kept and dst in kept:
                lines.append('  b%x -> b%x [label="%d"];' % (src, dst, count))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return "<DynamicCFG %d nodes, %d edges>" % (self.n_nodes, self.n_edges)


class DcfgTool(Pintool):
    """MiniPin tool that collects the whole-program DCFG."""

    def __init__(self):
        super().__init__()
        self.dcfg = DynamicCFG()

    def on_transition(self, transition):
        self.dcfg.add_transition(transition)


def compare_with_tea(dcfg, trace_set, model=None):
    """Quantify the Section 3 contrast for one execution.

    Returns a dict with the DCFG-with-code footprint, the TEA footprint
    for the recorded traces, and their ratio.
    """
    model = model or MemoryModel()
    dcfg_bytes = dcfg.representation_bytes(model)
    tea_bytes = model.tea_total_bytes(trace_set)
    return {
        "dcfg_bytes": dcfg_bytes,
        "tea_bytes": tea_bytes,
        "tea_over_dcfg": tea_bytes / dcfg_bytes if dcfg_bytes else 0.0,
        "dcfg_nodes": dcfg.n_nodes,
        "dcfg_edges": dcfg.n_edges,
        "tea_states": 1 + trace_set.n_tbbs,
    }
