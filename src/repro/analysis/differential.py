"""Differential validation: TEA replay vs DBT trace execution.

The paper's correctness argument (Properties 1 and 2) says the TEA
"models the exact behavior of the program's traces".  This module checks
that claim *dynamically*: it walks a DBT-style trace cursor (what
replicated code would execute) and the TEA replayer in lockstep over one
block-transition stream and verifies that, at every step, the automaton
state names exactly the TBB the code cache would be executing.

Useful as a library feature too: ``validate_trace_file`` proves a
serialized trace set is consistent with a program before an expensive
replay/optimization run on it.
"""

from repro.cfg.basic_block import BlockIndex
from repro.cfg.builder import FLAVOR_STARDBT, DynamicBlockBuilder
from repro.core.builder import build_tea
from repro.core.replay import ReplayConfig, TeaReplayer
from repro.cpu import Executor
from repro.errors import TeaError


class Divergence:
    """One disagreement between the cursor and the automaton."""

    __slots__ = ("step", "block_start", "cursor_tbb", "state_name")

    def __init__(self, step, block_start, cursor_tbb, state_name):
        self.step = step
        self.block_start = block_start
        self.cursor_tbb = cursor_tbb
        self.state_name = state_name

    def __repr__(self):
        return "<Divergence step=%d block=%#x cursor=%s tea=%s>" % (
            self.step,
            self.block_start,
            self.cursor_tbb,
            self.state_name,
        )


class DifferentialChecker:
    """Lockstep DBT cursor + TEA replayer over one transition stream."""

    def __init__(self, trace_set, tea=None, config=None):
        self.trace_set = trace_set
        self.tea = tea if tea is not None else build_tea(trace_set)
        self.replayer = TeaReplayer(
            self.tea, config=config or ReplayConfig.global_local()
        )
        self._cursor = None  # (trace, index) the code cache would be in
        self.steps = 0
        self.agreements = 0
        self.divergences = []

    def _advance_cursor(self, next_start):
        """The DBT-side reference semantics (mirrors StarDBT linking)."""
        if next_start is None:
            self._cursor = None
            return
        cursor = self._cursor
        if cursor is not None:
            trace, index = cursor
            successor = trace.tbbs[index].successors.get(next_start)
            if successor is not None:
                self._cursor = (trace, successor)
                return
            if next_start == trace.entry:
                self._cursor = (trace, 0)
                return
        entered = self.trace_set.trace_at(next_start)
        self._cursor = (entered, 0) if entered is not None else None

    def on_transition(self, transition):
        """Feed one block transition; records any divergence."""
        self.steps += 1
        # Compare the state that covered this block.
        state = self.replayer.state
        cursor = self._cursor
        if cursor is None:
            matches = state.tbb is None
            cursor_name = None
        else:
            trace, index = cursor
            tbb = trace.tbbs[index]
            matches = (
                state.tbb is not None
                and state.tbb.trace_id == tbb.trace_id
                and state.tbb.index == tbb.index
            )
            cursor_name = tbb.name
        if matches:
            self.agreements += 1
        else:
            self.divergences.append(
                Divergence(self.steps, transition.block.start, cursor_name,
                           state.name)
            )
        self.replayer.step(transition)
        self._advance_cursor(transition.next_start)

    @property
    def is_equivalent(self):
        return not self.divergences

    def raise_on_divergence(self):
        if self.divergences:
            raise TeaError(
                "TEA diverged from trace execution %d time(s); first: %r"
                % (len(self.divergences), self.divergences[0])
            )


def check_equivalence(program, trace_set, tea=None, config=None,
                      max_instructions=50_000_000):
    """Run ``program`` once, validating TEA against the DBT cursor.

    Returns the :class:`DifferentialChecker` with its verdict.
    """
    checker = DifferentialChecker(trace_set, tea=tea, config=config)
    builder = DynamicBlockBuilder(
        BlockIndex(program), program.entry, flavor=FLAVOR_STARDBT,
        on_transition=checker.on_transition,
    )
    executor = Executor(program, max_instructions=max_instructions)
    consumed = [0, 0]

    def on_event(event):
        consumed[0] += event.instrs_dbt
        consumed[1] += event.instrs_pin
        builder.feed(event)

    result = executor.run(on_event)
    builder.flush(result.final_pc, result.instrs_dbt - consumed[0],
                  result.instrs_pin - consumed[1])
    return checker


class MinimizationChecker:
    """Lockstep original vs minimized replay over one transition stream.

    Drives two :class:`~repro.core.replay.TeaReplayer` instances (with
    independent cost models and caches) over the same recording and
    compares the *observable* verdict at every step: is the replayer
    in-trace, and which basic block does its state cover?  Merged
    states have different names but must cover the same block; with
    budget spills the minimized side may fall out of trace early, which
    is tolerated only in ``lossy`` mode (minimized in-trace implies
    original in-trace, never the converse).

    After the run, :meth:`stats_match` reports whether the full
    Table 4 accounting (stats, coverage, cost breakdown) is
    bit-identical — the stronger exact-mode guarantee.
    """

    def __init__(self, trace_set, original, minimized, config=None,
                 lossy=False):
        config = config or ReplayConfig.global_local()
        self.trace_set = trace_set
        # The replayers never mutate their config, so sharing one is
        # safe; each still gets its own cost model and caches.
        self.original = TeaReplayer(original, config=config)
        self.minimized = TeaReplayer(minimized, config=config)
        self.lossy = lossy
        self.steps = 0
        self.agreements = 0
        self.divergences = []

    def on_transition(self, transition):
        """Feed one block transition to both sides; record divergence."""
        self.steps += 1
        state_a = self.original.state
        state_b = self.minimized.state
        in_a = state_a.tbb is not None
        in_b = state_b.tbb is not None
        if in_a == in_b:
            matches = (not in_a) or state_a.tbb.start == state_b.tbb.start
        else:
            # One side fell out of trace: only legal as a budget spill
            # on the minimized side.
            matches = self.lossy and in_a and not in_b
        if matches:
            self.agreements += 1
        else:
            self.divergences.append(
                Divergence(self.steps, transition.block.start,
                           state_a.name, state_b.name)
            )
        self.original.step(transition)
        self.minimized.step(transition)

    @property
    def is_equivalent(self):
        return not self.divergences

    def stats_match(self):
        """True when both sides' full accounting is bit-identical."""
        snap_a = self.original.snapshot()
        snap_b = self.minimized.snapshot()
        return (
            self.original.stats.as_dict() == self.minimized.stats.as_dict()
            and snap_a["cost"] == snap_b["cost"]
        )

    def raise_on_divergence(self):
        if self.divergences:
            raise TeaError(
                "minimized TEA diverged from the original %d time(s); "
                "first: %r"
                % (len(self.divergences), self.divergences[0])
            )


def check_minimization(program, trace_set, original, minimized,
                       config=None, lossy=False,
                       max_instructions=50_000_000):
    """Replay ``program`` once through original and minimized automata.

    Returns the :class:`MinimizationChecker` with its verdict; callers
    assert :attr:`~MinimizationChecker.is_equivalent` (every step
    agreed) and, for exact-mode minimization, :meth:`stats_match`.
    """
    checker = MinimizationChecker(trace_set, original, minimized,
                                  config=config, lossy=lossy)
    builder = DynamicBlockBuilder(
        BlockIndex(program), program.entry, flavor=FLAVOR_STARDBT,
        on_transition=checker.on_transition,
    )
    executor = Executor(program, max_instructions=max_instructions)
    consumed = [0, 0]

    def on_event(event):
        consumed[0] += event.instrs_dbt
        consumed[1] += event.instrs_pin
        builder.feed(event)

    result = executor.run(on_event)
    builder.flush(result.final_pc, result.instrs_dbt - consumed[0],
                  result.instrs_pin - consumed[1])
    return checker


def validate_trace_file(path, program, config=None, dynamic=True):
    """Load a trace file and prove it consistent with ``program``.

    The static portion is the verifier's own rule families — trace
    structure (``TEA040``-``TEA043``) and CFG consistency
    (``TEA010``-``TEA012``) — run through
    :func:`repro.verify.verify_trace_set`, so this entry point reports
    exactly what ``repro tools verify`` would; the former ad-hoc
    per-edge checks live only there now.  A blocking finding raises
    :class:`~repro.errors.VerificationError` carrying the diagnostics.

    With ``dynamic=True`` (default) the lockstep cursor/automaton
    check then also runs, raising :class:`~repro.errors.TeaError` on
    divergence — the dynamic Property 1/2 complement to the static
    rules.  Malformed files propagate
    :class:`~repro.errors.SerializationError` as before.  Returns the
    (validated) trace set.
    """
    from repro.traces.serialization import load_trace_set
    from repro.verify import verify_trace_set

    trace_set = load_trace_set(path, BlockIndex(program))
    verify_trace_set(
        trace_set, program=program, source=str(path)
    ).raise_on_error()
    if dynamic:
        checker = check_equivalence(program, trace_set, config=config)
        checker.raise_on_divergence()
    return trace_set
