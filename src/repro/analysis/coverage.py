"""Coverage accounting helpers.

Coverage — the fraction of dynamic instructions executed "inside the
traces" — is the paper's Tables 2/3 headline metric.  Because StarDBT and
Pin count instructions differently (Section 4.1: REP-prefixed ops count
once vs once-per-iteration), a coverage number is only meaningful
together with its counting semantics; :class:`CoverageReport` keeps both.
"""


class CoverageReport:
    """Covered/total instruction counts under both counting semantics."""

    __slots__ = ("covered_dbt", "total_dbt", "covered_pin", "total_pin")

    def __init__(self, covered_dbt=0, total_dbt=0, covered_pin=0, total_pin=0):
        self.covered_dbt = covered_dbt
        self.total_dbt = total_dbt
        self.covered_pin = covered_pin
        self.total_pin = total_pin

    @classmethod
    def from_replay_stats(cls, stats):
        return cls(
            covered_dbt=stats.covered_dbt,
            total_dbt=stats.total_dbt,
            covered_pin=stats.covered_pin,
            total_pin=stats.total_pin,
        )

    def fraction(self, pin_counting=True):
        covered = self.covered_pin if pin_counting else self.covered_dbt
        total = self.total_pin if pin_counting else self.total_dbt
        return covered / total if total else 0.0

    def merge(self, other):
        self.covered_dbt += other.covered_dbt
        self.total_dbt += other.total_dbt
        self.covered_pin += other.covered_pin
        self.total_pin += other.total_pin

    @staticmethod
    def format_percent(fraction):
        """Paper-style rendering: '100%' when saturated, else one decimal."""
        percent = 100.0 * fraction
        if percent >= 99.95:
            return "100%"
        return "%.1f%%" % percent

    def __repr__(self):
        return "<CoverageReport pin=%.3f dbt=%.3f>" % (
            self.fraction(True),
            self.fraction(False),
        )
