"""Phase detection from trace stability (Wimmer et al., cited in §5).

"A program phase is identified when the created traces are stable (i.e.,
there is a low trace exit ratio).  Whenever program execution start to
take side exits more often, the program is said to be ... between
phases."

:class:`PhaseDetector` hooks into the replayer (``replayer.on_step``),
maintains a sliding window of block transitions, and classifies each
window as *stable* (exit ratio below the threshold) or *unstable*.
Consecutive stable windows dominated by the same trace set form a
:class:`Phase`.
"""


class Phase:
    """One detected stable phase."""

    __slots__ = ("start_block", "end_block", "dominant_traces")

    def __init__(self, start_block, end_block, dominant_traces):
        self.start_block = start_block
        self.end_block = end_block
        self.dominant_traces = dominant_traces

    @property
    def length(self):
        return self.end_block - self.start_block

    def __repr__(self):
        return "<Phase blocks %d..%d traces=%s>" % (
            self.start_block,
            self.end_block,
            sorted(self.dominant_traces),
        )


class PhaseDetector:
    """Sliding-window trace-exit-ratio phase detector.

    Parameters
    ----------
    window:
        Window length in block transitions.
    exit_threshold:
        A window is *stable* when (side exits) / (window blocks) is below
        this value.
    min_phase_windows:
        Stable windows needed before a phase is opened.

    Attach with ``replayer.on_step = detector.on_step`` and read
    ``detector.phases`` after the run (call :meth:`finish` first).
    """

    def __init__(self, window=256, exit_threshold=0.08, min_phase_windows=2):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.exit_threshold = exit_threshold
        self.min_phase_windows = min_phase_windows
        self.phases = []
        self.windows = []  # (exit_ratio, dominant_trace_ids) per window
        self._blocks = 0
        self._window_blocks = 0
        self._window_exits = 0
        self._window_trace_blocks = {}
        self._open_phase_start = None
        self._open_phase_traces = set()
        self._stable_run = 0

    def on_step(self, previous_state, new_state, transition):
        """Replayer observer; see module docstring."""
        self._blocks += 1
        self._window_blocks += 1
        previous_trace = previous_state.trace_id
        if previous_trace is not None:
            count = self._window_trace_blocks.get(previous_trace, 0)
            self._window_trace_blocks[previous_trace] = count + 1
            if new_state.trace_id != previous_trace:
                self._window_exits += 1
        if self._window_blocks >= self.window:
            self._close_window()

    def _close_window(self):
        blocks = self._window_blocks
        ratio = self._window_exits / blocks if blocks else 0.0
        cutoff = 0.5 * blocks
        dominant = frozenset(
            trace_id
            for trace_id, count in self._window_trace_blocks.items()
            if count >= cutoff
        )
        self.windows.append((ratio, dominant))
        stable = ratio <= self.exit_threshold and dominant
        if stable:
            self._stable_run += 1
            if self._open_phase_start is None:
                if self._stable_run >= self.min_phase_windows:
                    start = self._blocks - self._stable_run * self.window
                    self._open_phase_start = max(start, 0)
                    self._open_phase_traces = set(dominant)
            else:
                previous = self._open_phase_traces
                if previous and dominant and not (previous & dominant):
                    # Still stable but a different trace set: new phase.
                    self._end_phase(self._blocks - self.window)
                    self._open_phase_start = self._blocks - self.window
                    self._open_phase_traces = set(dominant)
                else:
                    self._open_phase_traces |= dominant
        else:
            self._stable_run = 0
            if self._open_phase_start is not None:
                self._end_phase(self._blocks - blocks)
        self._window_blocks = 0
        self._window_exits = 0
        self._window_trace_blocks = {}

    def _end_phase(self, end_block):
        if end_block > self._open_phase_start:
            self.phases.append(
                Phase(self._open_phase_start, end_block,
                      frozenset(self._open_phase_traces))
            )
        self._open_phase_start = None
        self._open_phase_traces = set()

    def finish(self):
        """Flush the trailing window/phase; returns the phase list."""
        if self._window_blocks:
            self._close_window()
        if self._open_phase_start is not None:
            self._end_phase(self._blocks)
        return self.phases

    @property
    def n_transitions(self):
        """Phase transitions observed (phases - 1, floored at 0)."""
        return max(len(self.phases) - 1, 0)
