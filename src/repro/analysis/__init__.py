"""Analyses built on top of TEA replay.

- :mod:`repro.analysis.coverage` — coverage accounting helpers shared by
  the harness tables.
- :mod:`repro.analysis.phases` — program-phase detection from trace exit
  ratios (the Wimmer et al. technique the paper cites: a phase is stable
  while traces rarely take side exits).
- :mod:`repro.analysis.dcfg` — the dynamic control-flow graph, TEA's
  explicit code-carrying counterpart from Section 3.
- :mod:`repro.analysis.differential` — lockstep validation of a TEA
  against reference trace execution (Properties 1+2, checked live).
"""

from repro.analysis.coverage import CoverageReport
from repro.analysis.dcfg import DcfgTool, DynamicCFG, compare_with_tea
from repro.analysis.differential import (
    DifferentialChecker,
    MinimizationChecker,
    check_equivalence,
    check_minimization,
    validate_trace_file,
)
from repro.analysis.phases import Phase, PhaseDetector

__all__ = [
    "CoverageReport",
    "PhaseDetector",
    "Phase",
    "DynamicCFG",
    "DcfgTool",
    "compare_with_tea",
    "DifferentialChecker",
    "MinimizationChecker",
    "check_equivalence",
    "check_minimization",
    "validate_trace_file",
]
