"""Synthetic workloads standing in for SPEC CPU2000.

The paper evaluates 26 SPEC CPU2000 binaries.  Without SPEC (or any
binaries), each benchmark is replaced by a generated SX86 program whose
*dynamic character* is shaped to the original's qualitative behaviour:
loop nesting and trip counts, basic-block sizes, branchiness
(diamonds per loop body), indirect-branch and call mix, REP usage,
phases, and code footprint.  See DESIGN.md's substitution table and
:mod:`repro.workloads.spec` for the per-benchmark parameters.

- :mod:`repro.workloads.kernels` — parametric assembly kernels (counted
  nests, branchy loops, switch dispatch, call loops, REP copies) plus the
  paper's Figure 1/2 programs.
- :mod:`repro.workloads.generator` — composes kernels into a program.
- :mod:`repro.workloads.spec` — the 26 benchmark definitions.
"""

from repro.workloads.generator import WorkloadProgram, build_workload_program
from repro.workloads.kernels import figure1_program, figure2_program
from repro.workloads.spec import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    BenchmarkSpec,
    get_benchmark,
    load_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "BenchmarkSpec",
    "get_benchmark",
    "load_benchmark",
    "WorkloadProgram",
    "build_workload_program",
    "figure1_program",
    "figure2_program",
]
