"""The 26 SPEC CPU2000 stand-in benchmark definitions.

Each spec lists kernels whose mix shapes the workload to the original
benchmark's qualitative character (see the workload character table in
DESIGN.md).  The knobs and what they steer:

- ``counted_nest`` body size and depth: FP codes get large blocks and
  deep nests (high Table 1 savings, ~100% coverage, small TT trees);
- ``branchy_loop`` / ``branchy_nest`` diamonds and inner trip counts:
  integer branchiness (trace counts, CTT growth, TT explosion);
- ``switch_loop`` / indirect ``call_loop``: interpreter/virtual-dispatch
  codes (eon, perlbmk, gap) — extra Pin overhead, reduced coverage;
- ``rep_copy_loop`` placed cold: the mesa counting quirk (Section 4.1);
- low-trip ``branchy_loop``/``straightline`` kernels: lukewarm code that
  never crosses the hot threshold — it sets each benchmark's coverage
  ceiling (lucas ~90%, perlbmk ~83%, ...).

Trip counts assume the default hot threshold of 50; hot loops iterate
hundreds of times so that, as in the paper's full-length SPEC runs, the
recording warm-up is a small fraction of execution.
"""

from repro.errors import WorkloadError
from repro.workloads.generator import build_workload_program


class BenchmarkSpec:
    """One benchmark: a name, a suite tag, a seed and its kernel mix."""

    def __init__(self, name, suite, seed, kernels):
        self.name = name
        self.suite = suite
        self.seed = seed
        self.kernels = kernels

    @property
    def is_fp(self):
        return self.suite == "fp"

    def __repr__(self):
        return "<BenchmarkSpec %s (%s)>" % (self.name, self.suite)


def K(kind, repeat=1, **params):
    """Shorthand kernel descriptor."""
    descriptor = {"kind": kind, "repeat": repeat}
    descriptor.update(params)
    return descriptor


def _cold(repeat=4, n_ops=60):
    """Run-once straight-line cold code (scales by count, not trips)."""
    return K("straightline", repeat=repeat, n_ops=n_ops, cold=True)


def _lukewarm(repeat=4, iters=22, diamonds=1, body_ops=8):
    """Loops that stay below the hot threshold: never traced.

    With ``iters`` < 50 the backward-branch counter never fires, so each
    kernel contributes ~iters * (body+5) permanently cold instructions.
    """
    return K("branchy_loop", repeat=repeat, iters=iters, diamonds=diamonds,
             body_ops=body_ops, cold=True)


_FP = [
    BenchmarkSpec("168.wupwise", "fp", 168, [
        K("fp_nest", repeat=2, outer_iters=25, inner_iters=48, body_ops=9),
        K("call_loop", iters=300, n_funcs=2, func_ops=8),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("171.swim", "fp", 171, [
        K("fp_nest", repeat=3, outer_iters=25, inner_iters=48, body_ops=11),
        _cold(repeat=1),
    ]),
    BenchmarkSpec("172.mgrid", "fp", 172, [
        K("counted_nest", depth=3, outer_iters=8, inner_iters=13, body_ops=12),
        K("fp_nest", repeat=2, outer_iters=25, inner_iters=48, body_ops=12),
        _cold(repeat=1),
    ]),
    BenchmarkSpec("173.applu", "fp", 173, [
        K("counted_nest", repeat=2, depth=3, outer_iters=8, inner_iters=12,
          body_ops=11),
        K("fp_nest", outer_iters=25, inner_iters=48, body_ops=11),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("177.mesa", "fp", 177, [
        K("fp_nest", repeat=2, outer_iters=25, inner_iters=48, body_ops=8),
        K("branchy_loop", iters=700, diamonds=2, body_ops=5),
        # REP copies in *cold* code: Pin counts each iteration, StarDBT
        # one instruction -> replay coverage dips below DBT's (the one
        # exception in Table 2).
        K("rep_copy_loop", repeat=3, iters=10, words=220),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("178.galgel", "fp", 178, [
        K("fp_nest", repeat=4, outer_iters=20, inner_iters=48, body_ops=8),
        K("branchy_loop", iters=600, diamonds=2, body_ops=6),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("179.art", "fp", 179, [
        K("fp_nest", repeat=2, outer_iters=25, inner_iters=48, body_ops=6),
        K("branchy_loop", iters=1000, diamonds=2, body_ops=4),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("183.equake", "fp", 183, [
        K("fp_nest", repeat=2, outer_iters=22, inner_iters=48, body_ops=8),
        K("switch_loop", iters=350, cases=4, case_ops=4),
        _cold(repeat=1),
    ]),
    BenchmarkSpec("187.facerec", "fp", 187, [
        K("fp_nest", repeat=2, outer_iters=22, inner_iters=48, body_ops=9),
        K("branchy_loop", iters=300, diamonds=1, body_ops=4),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("188.ammp", "fp", 188, [
        K("fp_nest", repeat=2, outer_iters=22, inner_iters=48, body_ops=8),
        K("call_loop", iters=500, n_funcs=3, func_ops=6),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("189.lucas", "fp", 189, [
        # Two phases of FFT-ish nests plus a sizeable lukewarm share:
        # replay coverage ~90% (Table 2's low FP row).
        K("fp_nest", repeat=2, outer_iters=22, inner_iters=48, body_ops=10),
        _lukewarm(repeat=14, iters=22, body_ops=10),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("191.fma3d", "fp", 191, [
        K("fp_nest", repeat=3, outer_iters=20, inner_iters=48, body_ops=9),
        K("call_loop", iters=400, n_funcs=4, func_ops=7),
        _lukewarm(repeat=8, iters=22, body_ops=9),
        _cold(repeat=3),
    ]),
    BenchmarkSpec("200.sixtrack", "fp", 200, [
        K("fp_nest", repeat=4, outer_iters=20, inner_iters=48, body_ops=9),
        K("counted_nest", depth=3, outer_iters=8, inner_iters=12, body_ops=9),
        K("branchy_loop", repeat=2, iters=500, diamonds=3, body_ops=5),
        _lukewarm(repeat=3, iters=22, body_ops=8),
        _cold(repeat=3),
    ]),
    BenchmarkSpec("301.apsi", "fp", 301, [
        K("fp_nest", repeat=4, outer_iters=20, inner_iters=48, body_ops=9),
        K("branchy_loop", iters=600, diamonds=2, body_ops=5),
        _cold(repeat=2),
    ]),
]

_INT = [
    BenchmarkSpec("164.gzip", "int", 164, [
        K("branchy_nest", repeat=2, outer_iters=350, inner_iters=8,
          diamonds=3, body_ops=3),
        K("branchy_loop", iters=900, diamonds=4, body_ops=3),
        K("counted_nest", depth=2, outer_iters=55, inner_iters=20, body_ops=5),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("175.vpr", "int", 175, [
        K("branchy_loop", repeat=2, iters=800, diamonds=3, body_ops=4),
        K("branchy_nest", outer_iters=200, inner_iters=4, diamonds=1,
          body_ops=3),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("176.gcc", "int", 176, [
        # Huge code footprint, very many moderately hot loops: the most
        # traces by far (the Table 4 linked-list pathology).  Loops are
        # branchy but not nest-explosive (the paper's gcc TT is only
        # ~1.7x its MRET).
        K("branchy_loop", repeat=26, iters=220, diamonds=3, body_ops=4),
        K("branchy_loop", repeat=10, iters=200, diamonds=2, body_ops=5),
        K("call_loop", repeat=5, iters=150, n_funcs=3, func_ops=5),
        K("switch_loop", repeat=3, iters=300, cases=32, case_ops=3,
          case_diamonds=2),
        K("branchy_nest", repeat=2, outer_iters=100, inner_iters=4,
          diamonds=1, body_ops=3),
        _lukewarm(repeat=8, iters=22, body_ops=6),
        _cold(repeat=14, n_ops=80),
    ]),
    BenchmarkSpec("181.mcf", "int", 181, [
        K("branchy_loop", iters=900, diamonds=2, body_ops=3),
        K("branchy_nest", outer_iters=150, inner_iters=3, diamonds=1,
          body_ops=3),
        K("counted_nest", depth=2, outer_iters=55, inner_iters=25, body_ops=5),
        _cold(repeat=1),
    ]),
    BenchmarkSpec("186.crafty", "int", 186, [
        K("branchy_loop", repeat=7, iters=400, diamonds=4, body_ops=4),
        K("branchy_loop", repeat=2, iters=350, diamonds=3, body_ops=3),
        K("branchy_nest", outer_iters=120, inner_iters=5, diamonds=2,
          body_ops=3),
        K("call_loop", repeat=2, iters=300, n_funcs=3, func_ops=5),
        _lukewarm(repeat=7, iters=22, body_ops=8),
        _cold(repeat=6, n_ops=70),
    ]),
    BenchmarkSpec("197.parser", "int", 197, [
        K("branchy_loop", repeat=5, iters=500, diamonds=3, body_ops=4),
        K("call_loop", repeat=2, iters=380, n_funcs=2, func_ops=5),
        K("branchy_nest", outer_iters=90, inner_iters=4, diamonds=2,
          body_ops=3),
        _cold(repeat=3),
    ]),
    BenchmarkSpec("252.eon", "int", 252, [
        # Virtual-dispatch heavy: indirect calls dominate -> highest
        # replay time, reduced coverage.
        K("call_loop", repeat=4, iters=225, n_funcs=16, func_ops=6,
          indirect=True, func_diamonds=2),
        K("branchy_loop", repeat=2, iters=450, diamonds=3, body_ops=4),
        _lukewarm(repeat=3, iters=22, body_ops=9),
        _cold(repeat=5, n_ops=70),
    ]),
    BenchmarkSpec("253.perlbmk", "int", 253, [
        # Interpreter dispatch plus a large lukewarm share: the lowest
        # replay coverage in Table 2 (~83%).
        K("switch_loop", repeat=3, iters=360, cases=32, case_ops=4, case_diamonds=3),
        K("branchy_loop", repeat=3, iters=400, diamonds=3, body_ops=4),
        K("call_loop", iters=250, n_funcs=8, func_ops=5, indirect=True,
          func_diamonds=2),
        _lukewarm(repeat=12, iters=22, body_ops=10),
        _cold(repeat=8, n_ops=70),
    ]),
    BenchmarkSpec("254.gap", "int", 254, [
        K("switch_loop", repeat=2, iters=300, cases=16, case_ops=4, case_diamonds=2),
        K("call_loop", iters=250, n_funcs=8, func_ops=5, indirect=True,
          func_diamonds=2),
        K("branchy_loop", repeat=2, iters=450, diamonds=3, body_ops=4),
        _lukewarm(repeat=6, iters=22, body_ops=9),
        _cold(repeat=5),
    ]),
    BenchmarkSpec("255.vortex", "int", 255, [
        # Large OO code: many call-connected traces (the other Table 4
        # linked-list victim).
        K("call_loop", repeat=6, iters=300, n_funcs=4, func_ops=6),
        K("branchy_loop", repeat=8, iters=280, diamonds=3, body_ops=4),
        K("branchy_loop", repeat=3, iters=260, diamonds=2, body_ops=4),
        _cold(repeat=6, n_ops=70),
    ]),
    BenchmarkSpec("256.bzip2", "int", 256, [
        # The TT worst case: hot outer loops over small-trip, branchy
        # inner loops (sorting/huffman inner loops).
        K("branchy_nest", repeat=2, outer_iters=400, inner_iters=12,
          diamonds=3, body_ops=3),
        K("branchy_nest", outer_iters=280, inner_iters=6, diamonds=2,
          body_ops=3),
        K("counted_nest", depth=2, outer_iters=55, inner_iters=20, body_ops=5),
        _cold(repeat=2),
    ]),
    BenchmarkSpec("300.twolf", "int", 300, [
        K("branchy_loop", repeat=4, iters=550, diamonds=3, body_ops=4),
        K("branchy_nest", outer_iters=70, inner_iters=4, diamonds=1,
          body_ops=3),
        K("counted_nest", depth=2, outer_iters=55, inner_iters=22, body_ops=6),
        _cold(repeat=3),
    ]),
]

FP_BENCHMARKS = [spec.name for spec in _FP]
INT_BENCHMARKS = [spec.name for spec in _INT]

#: name -> BenchmarkSpec for all 26 benchmarks, paper order (FP then INT).
BENCHMARKS = {spec.name: spec for spec in _FP + _INT}


def get_benchmark(name):
    """Look up a spec by name (e.g. ``"176.gcc"``)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise WorkloadError("unknown benchmark %r" % (name,)) from None


def load_benchmark(name, scale=1.0):
    """Build the program for benchmark ``name`` at ``scale``."""
    return build_workload_program(get_benchmark(name), scale=scale)
