"""Compose kernels into a runnable benchmark program.

A :class:`~repro.workloads.spec.BenchmarkSpec` lists kernel descriptors;
the generator instantiates each (with a deterministic per-kernel RNG
seeded from the spec), lays them out as procedures, and emits a ``main``
that calls them in order — sequential kernels are the program's *phases*.
``scale`` multiplies hot-loop trip counts so the same workload can run
at smoke-test size or at paper size.
"""

import random

from repro.errors import WorkloadError
from repro.isa import assemble
from repro.workloads.kernels import KERNEL_KINDS

#: Spec parameters that scale with the workload size knob.
_SCALED_PARAMS = ("iters", "outer_iters")


class WorkloadProgram:
    """A generated benchmark: the program plus provenance."""

    def __init__(self, name, program, source, spec=None, scale=1.0):
        self.name = name
        self.program = program
        self.source = source
        self.spec = spec
        self.scale = scale

    def __repr__(self):
        return "<WorkloadProgram %s: %d instructions of code>" % (
            self.name,
            len(self.program),
        )


def build_workload_program(spec, scale=1.0):
    """Instantiate ``spec`` at ``scale``; returns :class:`WorkloadProgram`."""
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    rng = random.Random(spec.seed)
    text_sections = []
    data_sections = []
    entries = []
    index = 0
    for descriptor in spec.kernels:
        descriptor = dict(descriptor)
        kind = descriptor.pop("kind")
        repeat = descriptor.pop("repeat", 1)
        cold = descriptor.pop("cold", False)
        builder = KERNEL_KINDS.get(kind)
        if builder is None:
            raise WorkloadError(
                "unknown kernel kind %r in %s" % (kind, spec.name)
            )
        if cold:
            # Cold/lukewarm code must keep its sub-threshold trip counts;
            # its share of the run scales through *more distinct kernels*
            # (exactly how large cold footprints behave in real codes).
            repeat = max(1, int(round(repeat * scale)))
        for _ in range(repeat):
            params = dict(descriptor)
            if not cold:
                for name in _SCALED_PARAMS:
                    if name in params:
                        jitter = rng.uniform(0.8, 1.25) if repeat > 1 else 1.0
                        params[name] = max(2, int(params[name] * scale * jitter))
            prefix = "k%d" % index
            index += 1
            kernel_rng = random.Random((spec.seed << 16) ^ (index * 2654435761))
            kernel = builder(prefix, kernel_rng, **params)
            text_sections.append("\n".join(kernel.text))
            if kernel.data:
                data_sections.append("\n".join(kernel.data))
            entries.append(kernel.entry_label)

    main_lines = ["main:"]
    for entry in entries:
        main_lines.append("    call %s" % entry)
    main_lines.append("    hlt")

    source_parts = ["\n".join(main_lines)]
    source_parts.extend(text_sections)
    if data_sections:
        source_parts.append(".data")
        source_parts.extend(data_sections)
    source = "\n".join(source_parts) + "\n"
    program = assemble(source)
    return WorkloadProgram(spec.name, program, source, spec=spec, scale=scale)
