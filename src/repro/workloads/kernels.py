"""Parametric SX86 assembly kernels.

Every kernel is emitted as a callable procedure (``<prefix>_entry`` ...
``ret``) plus optional data lines; the generator stitches kernels into a
program.  Kernels deliberately produce the control-flow shapes the trace
strategies react to:

- :func:`counted_nest` — FP-style perfectly nested counted loops with
  straight-line bodies (big blocks, single path: small MRET superblocks,
  TT stays inner-loop-only because unrolled inner loops overflow the path
  limit, CTT captures the whole nest via header link-backs).
- :func:`branchy_loop` — a hot loop whose body crosses ``diamonds``
  data-dependent if/else splits driven by an in-assembly LCG (many paths:
  MRET records one per hot side exit, TT/CTT duplicate tails).
- :func:`branchy_nest` — small-trip-count branchy inner loop inside a hot
  outer loop: TT unrolls the inner loop into its paths and explodes
  (the bzip2/gzip rows of Table 1).
- :func:`switch_loop` — indirect-jump dispatch over a jump table
  (interpreter-style; perlbmk/gap), defeating static successor knowledge.
- :func:`call_loop` — direct or indirect (table-selected) calls in a hot
  loop (eon's virtual dispatch).
- :func:`rep_copy_loop` — REP MOVSD in a loop; placed in *cold* code it
  reproduces the mesa coverage quirk of Section 4.1 (Pin counts REP
  iterations, StarDBT counts one instruction).
- :func:`straightline` — a run-once stretch of code (cold footprint).

The in-assembly PRNG is the classic LCG ``x = x*1103515245 + 12345``;
branch decisions test individual bits of ``eax``, so paths vary per
iteration but are fully deterministic for a given seed.
"""

from repro.isa import assemble

#: Simple ALU/memory instruction templates for loop bodies.  ``{p}`` is
#: the kernel prefix (for data labels), ``{i}`` the op ordinal.
_BODY_OPS = (
    "add edx, 7",
    "xor edx, esi",
    "add esi, 13",
    "imul edx, 3",
    "sub esi, 5",
    "and edx, 16777215",
    "or esi, 1",
    "mov edi, [{p}_buf]",
    "add edi, edx",
    "mov [{p}_buf+4], edi",
    "shl edx, 1",
    "shr esi, 1",
    "add edx, esi",
    "not edx",
    "neg esi",
    "mov edi, [{p}_buf+8]",
    "xor edi, 255",
    "mov [{p}_buf+12], edi",
)


class KernelCode:
    """Generated kernel: text lines, data lines and the entry label."""

    def __init__(self, prefix, text, data):
        self.prefix = prefix
        self.text = text
        self.data = data

    @property
    def entry_label(self):
        return "%s_entry" % self.prefix


def _body(prefix, n_ops, rng, start=0):
    """``n_ops`` straight-line body instructions for one block."""
    lines = []
    for i in range(n_ops):
        template = _BODY_OPS[(start + rng.randrange(len(_BODY_OPS))) % len(_BODY_OPS)]
        lines.append("    " + template.format(p=prefix, i=i))
    return lines


def _lcg(prefix):
    """Advance the LCG in eax."""
    return [
        "    imul eax, 1103515245",
        "    add eax, 12345",
    ]


def counted_nest(prefix, rng, depth=2, outer_iters=40, inner_iters=80,
                 body_ops=8, pre_ops=4, post_ops=4, post_diamonds=0,
                 seed=None):
    """Nested counted loops with straight-line inner bodies (FP style).

    ``pre_ops``/``post_ops`` put real work into the *outer* loop body
    around the inner loop (array setup, reductions), and
    ``post_diamonds`` adds data-dependent splits there.  Those splits are
    what differentiates the strategies on FP codes: their arms run
    ``outer_iters/2`` times — above CTT/TT's eager extension threshold
    but below MRET's hot threshold — so compact trace trees duplicate
    them while MRET never traces them (the paper's swim/mgrid rows where
    CTT > MRET > TT).
    """
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    text = ["%s_entry:" % prefix, "    mov eax, %d" % seed]
    data = ["%s_buf: .zero 8" % prefix, "%s_bufb: .zero 4" % prefix]
    iters = [max(2, outer_iters)] + [max(2, inner_iters)] * (depth - 1)
    # Open loops outermost-first, with pre-segment work at each level.
    # Each non-outermost loop is entered through a zero-trip guard
    # (compare + never-taken branch), like compiled for-loops: the guard
    # ends the preceding dynamic block, so the loop header is a block
    # leader from the first iteration on — which is what lets CTT close
    # inner cycles with a header link-back on its very first trunk.
    for level, count in enumerate(iters):
        if level > 0:
            text.append("    push ecx")
        text.append("    mov ecx, %d" % count)
        if level > 0:
            text.append("    test ecx, ecx")
            text.append("    jz %s_l%d_guard" % (prefix, level))
            text.append("%s_l%d_guard:" % (prefix, level))
        text.append("%s_l%d:" % (prefix, level))
        if level + 1 < len(iters) and pre_ops:
            text.extend(_lcg(prefix))
            text.extend(_body(prefix, pre_ops, rng, start=level * 5))
    text.extend(_body(prefix, body_ops, rng))
    for level in range(depth - 1, -1, -1):
        text.append("    dec ecx")
        text.append("    jnz %s_l%d" % (prefix, level))
        if level > 0:
            text.append("    pop ecx")
            # Post-segment work between loop levels (imperfect nests).
            text.extend(_body(prefix, post_ops, rng, start=level * 7))
            for d in range(post_diamonds):
                bit = (d * 3 + level * 5 + 2) % 24
                text.append("    mov ebx, eax")
                text.append("    shr ebx, %d" % bit)
                text.append("    and ebx, 1")
                text.append("    jnz %s_p%d_%d_else" % (prefix, level, d))
                text.extend(_body(prefix, 3, rng, start=d))
                text.append("    jmp %s_p%d_%d_end" % (prefix, level, d))
                text.append("%s_p%d_%d_else:" % (prefix, level, d))
                text.extend(_body(prefix, 3, rng, start=d + 9))
                text.append("%s_p%d_%d_end:" % (prefix, level, d))
    text.append("    ret")
    return KernelCode(prefix, text, data)


def fp_nest(prefix, rng, outer_iters=10, inner_iters=48, n_inner=2,
            body_ops=11, pre_ops=3, post_ops=4, post_diamonds=1, seed=None):
    """FP loop nest: a hot outer loop over ``n_inner`` *sequential*
    fixed-trip array loops (the classic swim/applu shape: one outer time
    step running several j-loops over arrays in turn).

    Strategy differentiation, matching the paper's FP rows:

    - MRET records one superblock per inner loop plus fragments of the
      outer body — the middle of the Table 1 ordering.
    - TT trees anchor at the inner headers, but every side-exit extension
      back to its anchor must cross a *sibling* inner loop; unrolling
      ``inner_iters`` fixed trips overflows the path limit, so the trees
      never grow past the inner bodies: TT < MRET.
    - CTT terminates those same extensions at the sibling's loop header
      with a link-back, then builds further trees from the outer header,
      duplicating the outer-body segments and their ``post_diamonds``
      arms (which run ``outer_iters/2`` times — hot enough for CTT's
      eager threshold, too cold for MRET's): CTT > MRET.
    """
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    text = [
        "%s_entry:" % prefix,
        "    mov eax, %d" % seed,
        "    mov ecx, %d" % max(2, outer_iters),
        "%s_outer:" % prefix,
        "    push ecx",
    ]
    data = ["%s_buf: .zero 8" % prefix]
    for j in range(max(1, n_inner)):
        text.extend(_lcg(prefix))
        text.extend(_body(prefix, pre_ops, rng, start=j * 5))
        text.append("    mov ecx, %d" % max(2, inner_iters))
        text.append("    test ecx, ecx")
        text.append("    jz %s_i%d_guard" % (prefix, j))
        text.append("%s_i%d_guard:" % (prefix, j))
        text.append("%s_i%d:" % (prefix, j))
        text.extend(_body(prefix, body_ops, rng, start=j * 3))
        text.append("    dec ecx")
        text.append("    jnz %s_i%d" % (prefix, j))
        text.extend(_body(prefix, post_ops, rng, start=j * 7))
        for d in range(post_diamonds):
            bit = (d * 3 + j * 5 + 2) % 24
            text.append("    mov ebx, eax")
            text.append("    shr ebx, %d" % bit)
            text.append("    and ebx, 1")
            text.append("    jnz %s_p%d_%d_else" % (prefix, j, d))
            text.extend(_body(prefix, 3, rng, start=d))
            text.append("    jmp %s_p%d_%d_end" % (prefix, j, d))
            text.append("%s_p%d_%d_else:" % (prefix, j, d))
            text.extend(_body(prefix, 3, rng, start=d + 9))
            text.append("%s_p%d_%d_end:" % (prefix, j, d))
    text.append("    pop ecx")
    text.append("    dec ecx")
    text.append("    jnz %s_outer" % prefix)
    text.append("    ret")
    return KernelCode(prefix, text, data)


def branchy_loop(prefix, rng, iters=200, diamonds=3, body_ops=3,
                 arm_ops=4, seed=None):
    """One hot loop, ``diamonds`` data-dependent if/else splits."""
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    text = [
        "%s_entry:" % prefix,
        "    mov ecx, %d" % max(2, iters),
        "    mov eax, %d" % seed,
        "%s_loop:" % prefix,
    ]
    data = ["%s_buf: .zero 8" % prefix]
    text.extend(_lcg(prefix))
    text.extend(_body(prefix, body_ops, rng))
    for d in range(diamonds):
        bit = (d * 5 + 1) % 24
        text.append("    mov ebx, eax")
        text.append("    shr ebx, %d" % bit)
        text.append("    and ebx, 1")
        text.append("    jnz %s_d%d_else" % (prefix, d))
        text.extend(_body(prefix, arm_ops, rng))
        text.append("    jmp %s_d%d_end" % (prefix, d))
        text.append("%s_d%d_else:" % (prefix, d))
        text.extend(_body(prefix, arm_ops, rng, start=7))
        text.append("%s_d%d_end:" % (prefix, d))
    text.append("    dec ecx")
    text.append("    jnz %s_loop" % prefix)
    text.append("    ret")
    return KernelCode(prefix, text, data)


def branchy_nest(prefix, rng, outer_iters=120, inner_iters=5, diamonds=2,
                 body_ops=2, arm_ops=4, n_inner=2, seed=None):
    """Hot outer loop around ``n_inner`` sequential small-trip branchy
    inner loops whose trip counts vary per outer iteration (LCG-driven).

    This is the Table 1 explosion shape: a trace tree anchored at the
    first inner loop must route its side-exit extensions *through the
    sibling inner loops* back to the anchor.  TT unrolls each sibling
    (2..inner_iters+1 iterations, data-dependent), so iteration-count
    variants multiply with branch-direction variants — bzip2's 1.8 GB.
    CTT instead terminates extensions at the siblings' headers (loop
    headers on the path), and MRET just records superblocks, so the
    ordering MRET << CTT << TT emerges.
    """
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    text = [
        "%s_entry:" % prefix,
        "    mov ecx, %d" % max(2, outer_iters),
        "    mov eax, %d" % seed,
        "%s_outer:" % prefix,
        "    push ecx",
    ]
    data = ["%s_buf: .zero 8" % prefix]
    mask = _pow2_mask(inner_iters)
    for j in range(max(1, n_inner)):
        text.extend(_lcg(prefix))
        # Trip count 2 .. inner_iters+1, varying with the LCG; the
        # zero-trip guard makes the header a block leader immediately
        # (see counted_nest).
        text.append("    mov ecx, eax")
        text.append("    shr ecx, %d" % (4 + 3 * j))
        text.append("    and ecx, %d" % mask)
        text.append("    add ecx, 2")
        text.append("    test ecx, ecx")
        text.append("    jz %s_i%d_guard" % (prefix, j))
        text.append("%s_i%d_guard:" % (prefix, j))
        text.append("%s_i%d:" % (prefix, j))
        text.extend(_lcg(prefix))
        text.extend(_body(prefix, body_ops, rng, start=j * 2))
        for d in range(diamonds):
            bit = (d * 7 + j * 11 + 3) % 24
            text.append("    mov ebx, eax")
            text.append("    shr ebx, %d" % bit)
            text.append("    and ebx, 1")
            text.append("    jnz %s_i%d_d%d_else" % (prefix, j, d))
            text.extend(_body(prefix, arm_ops, rng))
            text.append("    jmp %s_i%d_d%d_end" % (prefix, j, d))
            text.append("%s_i%d_d%d_else:" % (prefix, j, d))
            text.extend(_body(prefix, arm_ops, rng, start=11))
            text.append("%s_i%d_d%d_end:" % (prefix, j, d))
        text.append("    dec ecx")
        text.append("    jnz %s_i%d" % (prefix, j))
        text.extend(_body(prefix, 2, rng, start=j * 5))
    text.append("    pop ecx")
    text.append("    dec ecx")
    text.append("    jnz %s_outer" % prefix)
    text.append("    ret")
    return KernelCode(prefix, text, data)


def _pow2_mask(n):
    """Smallest power-of-two mask covering 0..n-1 (at least 1)."""
    mask = 1
    while mask + 1 < n:
        mask = (mask << 1) | 1
    return mask


def switch_loop(prefix, rng, iters=150, cases=8, case_ops=3,
                case_diamonds=1, seed=None):
    """Interpreter-style indirect dispatch over a jump table.

    ``case_diamonds`` puts data-dependent splits inside every case body
    (real interpreter opcodes branch internally), which is what lets the
    tree strategies duplicate case paths well past MRET's footprint on
    perlbmk/gap."""
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    cases = max(2, cases)
    mask = _pow2_mask(cases)
    n_cases = mask + 1
    text = [
        "%s_entry:" % prefix,
        "    mov ecx, %d" % max(2, iters),
        "    mov eax, %d" % seed,
        "%s_loop:" % prefix,
    ]
    text.extend(_lcg(prefix))
    text.append("    mov ebx, eax")
    text.append("    shr ebx, 16")
    text.append("    and ebx, %d" % mask)
    text.append("    mov edx, [%s_table+ebx*4]" % prefix)
    text.append("    jmp edx")
    for c in range(n_cases):
        text.append("%s_case%d:" % (prefix, c))
        text.extend(_body(prefix, case_ops, rng, start=c))
        for d in range(case_diamonds):
            bit = (c * 3 + d * 7 + 2) % 24
            text.append("    mov ebx, eax")
            text.append("    shr ebx, %d" % bit)
            text.append("    and ebx, 1")
            text.append("    jnz %s_c%d_d%d_else" % (prefix, c, d))
            text.extend(_body(prefix, 2, rng, start=c + d))
            text.append("    jmp %s_c%d_d%d_end" % (prefix, c, d))
            text.append("%s_c%d_d%d_else:" % (prefix, c, d))
            text.extend(_body(prefix, 2, rng, start=c + d + 9))
            text.append("%s_c%d_d%d_end:" % (prefix, c, d))
        text.append("    jmp %s_join" % prefix)
    text.append("%s_join:" % prefix)
    text.append("    dec ecx")
    text.append("    jnz %s_loop" % prefix)
    text.append("    ret")
    data = ["%s_buf: .zero 8" % prefix]
    data.append(
        "%s_table: .word %s"
        % (prefix, ", ".join("%s_case%d" % (prefix, c) for c in range(n_cases)))
    )
    return KernelCode(prefix, text, data)


def call_loop(prefix, rng, iters=150, n_funcs=3, func_ops=5, indirect=False,
              func_diamonds=1, seed=None):
    """Hot loop calling helper functions, directly or via a table.

    ``func_diamonds`` adds data-dependent splits inside the callees
    (virtual methods branch internally), feeding the tree strategies'
    path duplication on eon-like codes."""
    if seed is None:
        seed = rng.randrange(1, 2 ** 30)
    n_funcs = max(1, n_funcs)
    text = [
        "%s_entry:" % prefix,
        "    mov ecx, %d" % max(2, iters),
        "    mov eax, %d" % seed,
        "%s_loop:" % prefix,
        "    push ecx",
    ]
    data = ["%s_buf: .zero 8" % prefix]
    if indirect:
        mask = _pow2_mask(n_funcs)
        n_funcs = mask + 1
        text.extend(_lcg(prefix))
        text.append("    mov ebx, eax")
        text.append("    shr ebx, 8")
        text.append("    and ebx, %d" % mask)
        text.append("    mov edx, [%s_ftab+ebx*4]" % prefix)
        text.append("    call edx")
        data.append(
            "%s_ftab: .word %s"
            % (prefix, ", ".join("%s_f%d" % (prefix, f) for f in range(n_funcs)))
        )
    else:
        for f in range(n_funcs):
            text.append("    call %s_f%d" % (prefix, f))
    text.append("    pop ecx")
    text.append("    dec ecx")
    text.append("    jnz %s_loop" % prefix)
    text.append("    ret")
    for f in range(n_funcs):
        text.append("%s_f%d:" % (prefix, f))
        text.extend(_body(prefix, func_ops, rng, start=f * 3))
        for d in range(func_diamonds):
            bit = (f * 5 + d * 7 + 1) % 24
            text.append("    mov ebx, eax")
            text.append("    shr ebx, %d" % bit)
            text.append("    and ebx, 1")
            text.append("    jnz %s_f%d_d%d_else" % (prefix, f, d))
            text.extend(_body(prefix, 2, rng, start=f + d))
            text.append("    jmp %s_f%d_d%d_end" % (prefix, f, d))
            text.append("%s_f%d_d%d_else:" % (prefix, f, d))
            text.extend(_body(prefix, 2, rng, start=f + d + 9))
            text.append("%s_f%d_d%d_end:" % (prefix, f, d))
        text.append("    ret")
    return KernelCode(prefix, text, data)


def rep_copy_loop(prefix, rng, iters=10, words=24):
    """REP MOVSD copies in a loop (the Section 4.1 counting mismatch)."""
    text = [
        "%s_entry:" % prefix,
        "    mov ecx, %d" % max(1, iters),
        "%s_loop:" % prefix,
        "    push ecx",
        "    mov ecx, %d" % words,
        "    mov esi, %s_src" % prefix,
        "    mov edi, %s_dst" % prefix,
        "    rep movsd",
        "    pop ecx",
        "    dec ecx",
        "    jnz %s_loop" % prefix,
        "    ret",
    ]
    data = [
        "%s_src: .zero %d" % (prefix, words),
        "%s_dst: .zero %d" % (prefix, words),
    ]
    return KernelCode(prefix, text, data)


def straightline(prefix, rng, n_ops=40):
    """Run-once straight-line code: cold footprint and cold coverage."""
    text = ["%s_entry:" % prefix]
    data = ["%s_buf: .zero 8" % prefix]
    ops = 0
    while ops < n_ops:
        chunk = min(max(3, rng.randrange(4, 9)), n_ops - ops)
        text.extend(_body(prefix, chunk, rng, start=ops))
        ops += chunk
        if ops < n_ops:
            # A forward conditional to break blocks up like real code.
            text.append("    test edx, %d" % (1 << (ops % 8)))
            text.append("    jz %s_s%d" % (prefix, ops))
            text.append("%s_s%d:" % (prefix, ops))
    text.append("    ret")
    return KernelCode(prefix, text, data)


#: Kernel kind name -> builder, for the generator's spec tables.
KERNEL_KINDS = {
    "counted_nest": counted_nest,
    "fp_nest": fp_nest,
    "branchy_loop": branchy_loop,
    "branchy_nest": branchy_nest,
    "switch_loop": switch_loop,
    "call_loop": call_loop,
    "rep_copy_loop": rep_copy_loop,
    "straightline": straightline,
}


# ----------------------------------------------------------------------
# The paper's figure programs
# ----------------------------------------------------------------------

FIGURE1_SOURCE = """
; Figure 1(a): copy one hundred words from [esi] to [edi].
main:
    mov esi, fig1_src
    mov edi, fig1_dst
    mov ecx, 100
fig1_loop:
    mov eax, [esi]          ; (1)
    mov [edi], eax          ; (2)
    add esi, 4              ; (3)
    add edi, 4              ; (4)
    dec ecx                 ; (5)
    jnz fig1_loop           ; (6)
    hlt
.data
fig1_src: .zero 100
fig1_dst: .zero 100
"""


FIGURE2_SOURCE = """
; Figure 2(a): scan the linked list pointed to by edx, count in eax the
; nodes whose value equals ecx.
main:
    mov eax, 0
    mov edx, [fig2_head]
    mov ecx, [fig2_needle]
begin:
    cmp edx, 0
    jz end
header:
    mov ebx, [edx]          ; node value
    cmp ebx, ecx
    jnz next
inc_:
    inc eax
next:
    mov edx, [edx+4]        ; node->next
    cmp edx, 0
    jnz header
end:
    hlt
.data
fig2_head: .word 0
fig2_needle: .word 7
"""


def figure1_program():
    """The Figure 1(a) memcpy loop, assembled and ready to run."""
    return assemble(FIGURE1_SOURCE)


def figure2_program(list_length=400, needle=7, match_every=5):
    """The Figure 2(a) linked-list scan with a generated list.

    Every ``match_every``-th node holds ``needle`` so both the taken and
    fall-through sides of the ``$$header`` comparison are hot, producing
    the paper's T1/T2 trace pair under MRET.
    """
    program = assemble(FIGURE2_SOURCE)
    head = program.label_addr("fig2_head")
    needle_addr = program.label_addr("fig2_needle")
    base = 0x0A000000
    data = dict(program.data)
    data[needle_addr] = needle
    for i in range(list_length):
        node = base + 8 * i
        value = needle if (i % match_every) == 0 else (i * 3 + 1) & 0xFFFF
        if value == needle and (i % match_every) != 0:
            value += 1
        data[node] = value
        data[node + 4] = node + 8 if i + 1 < list_length else 0
    data[head] = base
    program.data = data
    return program
