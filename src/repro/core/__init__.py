"""TEA — Trace Execution Automata (the paper's contribution).

A TEA is a deterministic finite automaton whose states are the Trace
Basic Blocks of a program's traces plus the distinguished **NTE** state
("No Trace being Executed"); transitions are labelled with the program
counters that trigger them.  Feeding the executing program counter stream
into the automaton yields a precise map from the current PC to the TBB
being "executed" — without replicating any trace code.

Package contents:

- :mod:`repro.core.automaton` — the automaton itself.
- :mod:`repro.core.builder` — **Algorithm 1**: traces -> TEA.
- :mod:`repro.core.directory` — the transition function's trace lookup
  (linked list vs global B+ tree, Section 4.2).
- :mod:`repro.core.replay` — the replayer: drives the automaton from
  block transitions, accounts coverage and cost (Tables 2 and 4).
- :mod:`repro.core.jit` — per-automaton specializing codegen: emits a
  replay loop tailored to one compiled automaton, with guard + deopt
  back to the compiled engine.
- :mod:`repro.core.online` — **Algorithm 2**: recording TEA online while
  the program runs (Table 3).
- :mod:`repro.core.memory_model` — byte accounting for Table 1.
- :mod:`repro.core.profile` — per-state/edge profile counters.
- :mod:`repro.core.duplication` — trace duplication for unroll profiling
  (the Section 2 motivation).
- :mod:`repro.core.serialization` — persisting TEA + profiles for reuse
  in future executions.
"""

from repro.core.automaton import NTE_SID, TEA, TeaState
from repro.core.builder import build_tea, sync_trace
from repro.core.compiled import CompiledReplayer, CompiledTea
from repro.core.directory import (
    BPlusTreeDirectory,
    LinkedListDirectory,
    make_directory,
)
from repro.core.duplication import duplicate_in_set, duplicate_trace
from repro.core.jit import JitCode, JitReplayer, generate_replay_source
from repro.core.memory_model import MemoryModel
from repro.core.online import OnlineTeaRecorder
from repro.core.profile import TeaProfile
from repro.core.replay import ReplayConfig, TeaReplayer
from repro.core.serialization import (
    load_tea,
    save_tea,
    tea_from_json,
    tea_to_json,
)

__all__ = [
    "TEA",
    "TeaState",
    "NTE_SID",
    "build_tea",
    "sync_trace",
    "LinkedListDirectory",
    "BPlusTreeDirectory",
    "make_directory",
    "ReplayConfig",
    "TeaReplayer",
    "CompiledTea",
    "CompiledReplayer",
    "JitCode",
    "JitReplayer",
    "generate_replay_source",
    "OnlineTeaRecorder",
    "MemoryModel",
    "TeaProfile",
    "duplicate_trace",
    "duplicate_in_set",
    "tea_to_json",
    "tea_from_json",
    "save_tea",
    "load_tea",
]
