"""Byte accounting for trace representations (Table 1).

The paper compares the memory needed to represent traces the usual way —
replicating (translated) trace code in a DBT code cache — against TEA's
implicit representation, reporting ~80% savings.  This module is the
single source of truth for both sides' accounting.  The constants model a
StarDBT-like IA-32 -> IA-32 translator and a packed TEA implementation;
each is documented with its justification.  "TEA achieves this space
savings by avoiding code specialization": the DBT cost is dominated by
translated code bytes and exit stubs, the TEA cost by small fixed-size
state/transition records.

DBT (replicated code) per trace:
    ``translation_expansion`` x original code bytes — IA-32 retranslation
    with condition-code preservation, trace-exit guards and inline
    profiling counters typically grows code 2.5-3x;
    ``exit_stub_bytes`` per side exit — a StarDBT-style lazily-linked
    exit: save context, load exit id, jump to the runtime (40 bytes);
    ``entry_stub_bytes`` + ``trace_descriptor_bytes`` once per trace;
    ``link_record_bytes`` per in-trace edge (patchable-branch records);
    ``alignment_bytes/2`` average padding (traces are cache-line aligned).

TEA per trace:
    ``state_bytes`` per TBB — a packed state: 32-bit block address,
    32-bit trace/ordinal id, 32-bit transition-table reference;
    ``transition_bytes`` per explicit transition — 32-bit label plus
    32-bit target state index;
    ``tea_trace_descriptor_bytes`` once per trace;
    ``directory_entry_bytes`` per trace — the global B+ tree's amortised
    per-key footprint.
"""


class MemoryModel:
    """Byte accounting with documented, overridable constants."""

    def __init__(
        self,
        translation_expansion=3.2,
        exit_stub_bytes=40,
        entry_stub_bytes=16,
        trace_descriptor_bytes=24,
        link_record_bytes=8,
        alignment_bytes=16,
        state_bytes=12,
        transition_bytes=8,
        tea_trace_descriptor_bytes=16,
        directory_entry_bytes=12,
        nte_bytes=64,
    ):
        self.translation_expansion = translation_expansion
        self.exit_stub_bytes = exit_stub_bytes
        self.entry_stub_bytes = entry_stub_bytes
        self.trace_descriptor_bytes = trace_descriptor_bytes
        self.link_record_bytes = link_record_bytes
        self.alignment_bytes = alignment_bytes
        self.state_bytes = state_bytes
        self.transition_bytes = transition_bytes
        self.tea_trace_descriptor_bytes = tea_trace_descriptor_bytes
        self.directory_entry_bytes = directory_entry_bytes
        self.nte_bytes = nte_bytes

    # ------------------------------------------------------------------
    # DBT side (Table 1 "DBT" columns)
    # ------------------------------------------------------------------

    def dbt_trace_bytes(self, trace):
        """Replicated-code footprint of one trace in a DBT code cache."""
        code = trace.code_bytes * self.translation_expansion
        stubs = trace.n_side_exits * self.exit_stub_bytes
        links = trace.n_edges * self.link_record_bytes
        fixed = (
            self.entry_stub_bytes
            + self.trace_descriptor_bytes
            + self.alignment_bytes / 2.0
        )
        return code + stubs + links + fixed

    def dbt_total_bytes(self, trace_set):
        return sum(self.dbt_trace_bytes(trace) for trace in trace_set)

    # ------------------------------------------------------------------
    # TEA side (Table 1 "TEA" columns)
    # ------------------------------------------------------------------

    def tea_trace_bytes(self, trace):
        """Implicit (automaton) footprint of one trace."""
        states = len(trace.tbbs) * self.state_bytes
        transitions = trace.n_edges * self.transition_bytes
        fixed = self.tea_trace_descriptor_bytes + self.directory_entry_bytes
        return states + transitions + fixed

    def tea_total_bytes(self, trace_set):
        total = self.nte_bytes
        return total + sum(self.tea_trace_bytes(trace) for trace in trace_set)

    def tea_bytes_for_automaton(self, tea):
        """Size of an already-built TEA (states + explicit transitions)."""
        return (
            self.nte_bytes
            + (tea.n_states - 1) * self.state_bytes
            + tea.n_transitions * self.transition_bytes
            + tea.n_traces
            * (self.tea_trace_descriptor_bytes + self.directory_entry_bytes)
        )

    # ------------------------------------------------------------------
    # Table 1 row
    # ------------------------------------------------------------------

    def savings(self, trace_set):
        """Fractional savings of TEA over DBT replication (0.0-1.0)."""
        dbt = self.dbt_total_bytes(trace_set)
        if dbt == 0:
            return 0.0
        return 1.0 - self.tea_total_bytes(trace_set) / dbt

    def table1_row(self, trace_set):
        """``(dbt_kb, tea_kb, savings_fraction)`` for one benchmark/strategy."""
        dbt = self.dbt_total_bytes(trace_set)
        tea = self.tea_total_bytes(trace_set)
        savings = 0.0 if dbt == 0 else 1.0 - tea / dbt
        return dbt / 1024.0, tea / 1024.0, savings
