"""Trace lookup directories for the TEA transition function.

Whenever the replayer leaves a trace (or runs in NTE), it must decide
whether the next program counter enters some trace — i.e. resolve the
implicit ``NTE -> head`` transitions.  Section 4.2 evaluates two global
containers:

- a plain **linked list** of traces ("No Global" columns): a lookup scans
  entries one by one, so the probe cost is linear in the number of traces
  — the source of the pathological gcc/vortex slowdowns in Table 4;
- a **global B+ tree** keyed by trace start address: probe cost is the
  number of tree nodes visited.

Both report the work a probe performed so the cost model can charge it.
"""

from repro.structures.bplustree import BPlusTree


class LinkedListDirectory:
    """Traces kept in a linked list; lookups scan linearly.

    Matches the paper's unoptimised container ("the traces were kept in a
    linked list").  A successful probe costs the number of entries
    scanned; a miss costs the full list length.
    """

    kind = "list"

    def __init__(self):
        self._entries = []  # (addr, state) in insertion order
        self.probes = 0
        self.elements_scanned = 0

    @property
    def units(self):
        """Uniform work counter (elements scanned) for observability."""
        return self.elements_scanned

    def reset_counters(self):
        """Zero the probe/work counters (contents are kept)."""
        self.probes = 0
        self.elements_scanned = 0

    def insert(self, addr, state):
        for position, (existing, _value) in enumerate(self._entries):
            if existing == addr:
                self._entries[position] = (addr, state)
                return
        self._entries.append((addr, state))

    def lookup(self, addr):
        """Return ``(state_or_None, units_of_work)``."""
        self.probes += 1
        scanned = 0
        for entry_addr, state in self._entries:
            scanned += 1
            if entry_addr == addr:
                self.elements_scanned += scanned
                return state, scanned
        self.elements_scanned += scanned
        return None, max(scanned, 1)

    def __len__(self):
        return len(self._entries)


class BPlusTreeDirectory:
    """The global B+ tree container of Section 4.2."""

    kind = "bptree"

    def __init__(self, order=16):
        self._tree = BPlusTree(order=order)
        self.probes = 0
        self.nodes_visited = 0

    @property
    def units(self):
        """Uniform work counter (nodes visited) for observability."""
        return self.nodes_visited

    def reset_counters(self):
        """Zero the probe/work counters (contents are kept)."""
        self.probes = 0
        self.nodes_visited = 0

    def insert(self, addr, state):
        self._tree.insert(addr, state)

    def lookup(self, addr):
        """Return ``(state_or_None, nodes_visited)``."""
        self.probes += 1
        state, visited = self._tree.search(addr)
        self.nodes_visited += visited
        return state, visited

    def __len__(self):
        return len(self._tree)

    @property
    def height(self):
        return self._tree.height


class HashDirectory:
    """Open-addressing hash table keyed by trace start address.

    The paper's future work: "we will investigate other techniques to
    optimize the transition lookup operation".  A hash container makes
    the global probe O(1) expected — the natural next step after the
    B+ tree.  Linear probing; the probe cost is the number of slots
    touched, so clustering shows up in the accounting honestly.
    """

    kind = "hash"

    def __init__(self, initial_capacity=64):
        capacity = 8
        while capacity < initial_capacity:
            capacity *= 2
        self._keys = [None] * capacity
        self._values = [None] * capacity
        self._count = 0
        self.probes = 0
        self.slots_probed = 0

    @property
    def units(self):
        """Uniform work counter (slots touched) for observability."""
        return self.slots_probed

    def __len__(self):
        return self._count

    @property
    def capacity(self):
        return len(self._keys)

    def reset_counters(self):
        """Zero the probe/work counters (contents are kept)."""
        self.probes = 0
        self.slots_probed = 0

    def _find_slot(self, keys, addr):
        mask = len(keys) - 1
        index = (addr * 0x9E3779B1 >> 8) & mask
        touched = 1
        while keys[index] is not None and keys[index] != addr:
            index = (index + 1) & mask
            touched += 1
        return index, touched

    def insert(self, addr, state):
        if (self._count + 1) * 10 >= len(self._keys) * 7:
            self._grow()
        index, _ = self._find_slot(self._keys, addr)
        if self._keys[index] is None:
            self._count += 1
        self._keys[index] = addr
        self._values[index] = state

    def _grow(self):
        old_keys, old_values = self._keys, self._values
        self._keys = [None] * (len(old_keys) * 2)
        self._values = [None] * len(self._keys)
        for key, value in zip(old_keys, old_values):
            if key is not None:
                index, _ = self._find_slot(self._keys, key)
                self._keys[index] = key
                self._values[index] = value

    def lookup(self, addr):
        """Return ``(state_or_None, slots_touched)``."""
        self.probes += 1
        index, touched = self._find_slot(self._keys, addr)
        self.slots_probed += touched
        if self._keys[index] is None:
            return None, touched
        return self._values[index], touched


class SortedArrayDirectory:
    """Binary search over a sorted address array.

    Another future-work candidate: denser than a B+ tree (two parallel
    arrays), O(log n) comparisons per probe, O(n) insertion — fine for a
    directory that is read millions of times but written once per trace.
    """

    kind = "sorted"

    def __init__(self):
        self._addrs = []
        self._states = []
        self.probes = 0
        self.comparisons = 0

    @property
    def units(self):
        """Uniform work counter (comparisons) for observability."""
        return self.comparisons

    def __len__(self):
        return len(self._addrs)

    def reset_counters(self):
        """Zero the probe/work counters (contents are kept)."""
        self.probes = 0
        self.comparisons = 0

    def insert(self, addr, state):
        import bisect
        index = bisect.bisect_left(self._addrs, addr)
        if index < len(self._addrs) and self._addrs[index] == addr:
            self._states[index] = state
        else:
            self._addrs.insert(index, addr)
            self._states.insert(index, state)

    def lookup(self, addr):
        """Return ``(state_or_None, comparisons)``."""
        self.probes += 1
        low, high = 0, len(self._addrs)
        compared = 0
        addrs = self._addrs
        while low < high:
            middle = (low + high) // 2
            compared += 1
            if addrs[middle] < addr:
                low = middle + 1
            else:
                high = middle
        compared = max(compared, 1)
        self.comparisons += compared
        if low < len(addrs) and addrs[low] == addr:
            return self._states[low], compared
        return None, compared


#: Directory kind -> the cost-model parameter charged per probe unit.
DIRECTORY_COST_PARAM = {
    "list": "LIST_ELEMENT",
    "bptree": "BPTREE_NODE",
    "hash": "HASH_SLOT",
    "sorted": "ARRAY_COMPARISON",
}

#: Directory kind -> the writable counter behind the read-only ``units``
#: property.  Callers that batch probe work (the JIT replay engine
#: memoises directory lookups and flushes the deferred work once per
#: batch) must bump this attribute together with ``probes`` — assigning
#: to ``units`` itself raises, by design.
DIRECTORY_UNITS_ATTR = {
    "list": "elements_scanned",
    "bptree": "nodes_visited",
    "hash": "slots_probed",
    "sorted": "comparisons",
}


def make_directory(kind, order=16):
    """Build a directory: ``"list"``, ``"bptree"``, ``"hash"``, ``"sorted"``."""
    if kind == "list":
        return LinkedListDirectory()
    if kind == "bptree":
        return BPlusTreeDirectory(order=order)
    if kind == "hash":
        return HashDirectory()
    if kind == "sorted":
        return SortedArrayDirectory()
    raise ValueError("unknown directory kind %r" % (kind,))
