"""Algorithm 2: recording TEA online, without building trace code.

This is the Table 3 experiment: a pintool that *records* traces (MRET in
the paper) and maintains the TEA as traces finish — "building and
profiling traces without the need for actual trace construction".

The composition is: a strategy recorder
(:class:`~repro.traces.recorder.TraceRecorder`) runs its Algorithm 2
state machine over the block stream; whenever it commits a trace, the
trace is folded into the automaton with
:func:`~repro.core.builder.sync_trace` and registered with the replayer's
directory, so execution is tracked through the freshly recorded trace
from that point on.  The recorder's own bookkeeping is charged to the
same cost model (``RECORD_COUNTER`` per backward edge observed,
``RECORD_APPEND`` per TBB appended).
"""

from repro.core.automaton import TEA
from repro.core.builder import sync_trace
from repro.core.replay import ReplayConfig, TeaReplayer
from repro.traces.recorder import STATE_CREATING


class OnlineTeaRecorder:
    """Record traces and grow a TEA while the program executes.

    ``obs`` (optional :class:`~repro.obs.Observability`) is shared with
    the embedded replayer; recording-side events land in ``record.*``
    counters and trace commits are emitted to the tracer.
    """

    def __init__(self, recorder, config=None, cost=None, profile=None,
                 obs=None):
        self.tea = TEA()
        self.recorder = recorder
        recorder.on_trace = self._trace_committed
        self.replayer = TeaReplayer(
            self.tea, config=config or ReplayConfig.global_local(),
            cost=cost, profile=profile, obs=obs,
        )
        self.obs = self.replayer.obs
        self._synced = set()

    @property
    def cost(self):
        return self.replayer.cost

    @property
    def stats(self):
        return self.replayer.stats

    def _trace_committed(self, trace):
        sync_trace(self.tea, trace)
        self.replayer.register_trace(trace.entry, self.tea.state_for(trace.tbbs[0]))
        self._synced.add(trace.trace_id)
        self.obs.metrics.counter("record.traces_committed").inc()
        self.obs.emit(
            "record.trace_committed",
            trace_id=trace.trace_id,
            entry=trace.entry,
            tbbs=len(trace.tbbs),
        )

    def observe(self, transition):
        """Feed one block transition to both the recorder and the replayer."""
        params = self.cost.params
        metrics = self.obs.metrics
        event = transition.event
        if event is not None and event.is_backward:
            self.cost.charge("recording", params.RECORD_COUNTER)
            metrics.counter("record.backward_edges").inc()
        self.recorder.observe(transition)
        if self.recorder.state == STATE_CREATING:
            self.cost.charge("recording", params.RECORD_APPEND)
            metrics.counter("record.appends").inc()
        self.replayer.step(transition)

    def finish(self):
        """End of run: close pending recordings, final tree re-sync."""
        traces = self.recorder.finish()
        for trace in traces:
            # Tree strategies mutate committed traces as they extend
            # them; sync_trace is idempotent, so re-walk everything.
            sync_trace(self.tea, trace)
        return traces

    def snapshot(self):
        """Observability snapshot: replayer metrics plus recording totals."""
        snap = self.replayer.snapshot()
        snap["recording"] = {
            "traces_committed": len(self._synced),
            "tea_states": self.tea.n_states,
            "tea_transitions": self.tea.n_transitions,
        }
        return snap
