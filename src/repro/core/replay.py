"""The TEA replayer: the optimised transition function of Section 4.2.

The replayer consumes block transitions (from MiniPin's edge
instrumentation) and walks the automaton.  The transition function is the
paper's optimised implementation:

1. **Explicit transition** (common case, "optimized for ... executing hot
   code"): the current state's successor map has the next PC — a short,
   inlineable analysis routine (``CALLBACK_FAST`` + map hit).
2. **Trace exit**: the out-of-line slow callback runs; if enabled, the
   per-state **local cache** is consulted first (it "speeds up transitions
   from one trace to another"), then the **global directory** (linked
   list or B+ tree); a miss lands in NTE.
3. **NTE**: every block boundary probes the global directory — local
   caches are "pointless outside of traces", exactly as the paper notes —
   which is why the Empty configuration is *slower* than replaying real
   traces (Table 4's counter-intuitive result falls out of this code).

Coverage is accounted per completed block under both counting semantics
(StarDBT-style and Pin-style; Section 4.1).

Two consumption APIs drive the automaton:

- :meth:`TeaReplayer.step` — one transition per call (what the pintool's
  callback delivers);
- :meth:`TeaReplayer.run` — the batched engine: consumes an iterable of
  transitions in one loop with attribute lookups and cost parameters
  hoisted out of the per-block work and metric flushes deferred to the
  batch boundary.  Identical accounting, measurably faster
  (``benchmarks/bench_replay_engine.py``).

All event counts live in one :class:`~repro.obs.metrics.MetricsRegistry`
(the ``replay.*`` namespace); :class:`ReplayStats` keeps the historic
attribute API as thin properties over those counters.
"""

from repro.core.directory import DIRECTORY_COST_PARAM, make_directory
from repro.dbt.cost import CostModel
from repro.obs import Observability
from repro.structures.lru import MISS, DirectMappedCache, LRUCache

#: Table 4 report labels for every supported global index kind.  The
#: paper only names the B+ tree ("Global") and linked-list ("No Global")
#: containers; the future-work structures get explicit labels so reports
#: never misfile a hash or sorted-array run as "No Global".
GLOBAL_INDEX_LABELS = {
    "bptree": "Global",
    "list": "No Global",
    "hash": "Global (Hash)",
    "sorted": "Global (Sorted)",
}

#: Replay engines a config can select: the object-graph walker
#: (:class:`TeaReplayer`), the flat-table compiled engine
#: (:class:`~repro.core.compiled.CompiledReplayer`), or the
#: per-automaton specializing codegen engine
#: (:class:`~repro.core.jit.JitReplayer`).
REPLAY_ENGINES = ("object", "compiled", "jit")


class ReplayConfig:
    """Transition-function configuration (the Table 4 axes).

    ``global_index``: ``"bptree"`` or ``"list"`` (the paper's No-Global
    configurations keep traces in a linked list), plus the future-work
    structures ``"hash"`` and ``"sorted"``.
    ``local_cache``: enable the per-state cache.
    ``cache_kind``: ``"direct"`` (direct-mapped) or ``"lru"``.
    ``cache_size``: entries per state cache (>= 1).
    ``bptree_order``: B+ tree fan-out (>= 3, the tree's own minimum).
    ``engine``: ``"object"`` (TeaReplayer), ``"compiled"``
    (CompiledReplayer over packed transition streams) or ``"jit"``
    (JitReplayer driving per-automaton generated code, same packed
    streams) — identical accounting, different dispatch machinery.
    """

    __slots__ = ("global_index", "local_cache", "cache_kind", "cache_size",
                 "bptree_order", "engine")

    def __init__(self, global_index="bptree", local_cache=True,
                 cache_kind="direct", cache_size=16, bptree_order=16,
                 engine="object"):
        if global_index not in GLOBAL_INDEX_LABELS:
            raise ValueError(
                "global_index must be one of 'bptree', 'list', 'hash', "
                "'sorted'"
            )
        if cache_kind not in ("direct", "lru"):
            raise ValueError("cache_kind must be 'direct' or 'lru'")
        # Validate the structure-sizing knobs here, where the caller can
        # see them, instead of letting DirectMappedCache/LRUCache or the
        # B+ tree raise deep inside the replay hot path on first use.
        if not isinstance(cache_size, int) or cache_size < 1:
            raise ValueError(
                "cache_size must be a positive integer (got %r); the "
                "per-state local caches need at least one slot" % (cache_size,)
            )
        if not isinstance(bptree_order, int) or bptree_order < 3:
            raise ValueError(
                "bptree_order must be an integer >= 3 (got %r); a B+ tree "
                "node cannot hold fewer than two keys" % (bptree_order,)
            )
        if engine not in REPLAY_ENGINES:
            raise ValueError(
                "engine must be one of %s" % ", ".join(
                    repr(name) for name in REPLAY_ENGINES
                )
            )
        self.global_index = global_index
        self.local_cache = local_cache
        self.cache_kind = cache_kind
        self.cache_size = cache_size
        self.bptree_order = bptree_order
        self.engine = engine

    @classmethod
    def global_local(cls, engine="object"):
        """The paper's best configuration (B+ tree + local cache)."""
        return cls(global_index="bptree", local_cache=True, engine=engine)

    @classmethod
    def global_no_local(cls, engine="object"):
        return cls(global_index="bptree", local_cache=False, engine=engine)

    @classmethod
    def no_global_local(cls, engine="object"):
        return cls(global_index="list", local_cache=True, engine=engine)

    @classmethod
    def no_global_no_local(cls, engine="object"):
        """The configuration the paper could not even measure (>100x)."""
        return cls(global_index="list", local_cache=False, engine=engine)

    def describe(self):
        global_name = GLOBAL_INDEX_LABELS[self.global_index]
        local_name = "Local" if self.local_cache else "No Local"
        return "%s / %s" % (global_name, local_name)


#: Every replay event counter, in reporting order.
STAT_FIELDS = (
    "blocks",
    "in_trace_hits",
    "cache_hits",
    "cache_misses",
    "directory_hits",
    "directory_misses",
    "nte_probes",
    "trace_enters",
    "trace_exits",
    "covered_dbt",
    "covered_pin",
    "total_dbt",
    "total_pin",
)


class ReplayStats:
    """Event counters for one replay run, stored in a metrics registry.

    Each statistic is a ``replay.<name>`` counter in the registry; the
    historic ``stats.blocks``-style attributes remain available as thin
    read/write properties over those counters, so everything written
    against the old API keeps working while ``repro tools metrics`` and
    the harness read the registry.
    """

    __slots__ = ("_metrics", "_counters")

    FIELDS = STAT_FIELDS

    def __init__(self, metrics=None, namespace="replay"):
        self._metrics = metrics if metrics is not None else (
            Observability().metrics
        )
        self._counters = {
            name: self._metrics.counter("%s.%s" % (namespace, name))
            for name in STAT_FIELDS
        }

    @property
    def metrics(self):
        """The backing :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self._metrics

    def counter(self, name):
        """The raw :class:`~repro.obs.metrics.Counter` for one field."""
        return self._counters[name]

    def as_dict(self):
        """Field -> value mapping (reporting order)."""
        counters = self._counters
        return {name: counters[name].value for name in STAT_FIELDS}

    def coverage(self, pin_counting=True):
        """Covered fraction of dynamic instructions (0.0-1.0)."""
        counters = self._counters
        if pin_counting:
            total = counters["total_pin"].value
            return counters["covered_pin"].value / total if total else 0.0
        total = counters["total_dbt"].value
        return counters["covered_dbt"].value / total if total else 0.0

    def __repr__(self):
        return (
            "<ReplayStats blocks=%d hits=%d enters=%d exits=%d coverage=%.1f%%>"
            % (
                self.blocks,
                self.in_trace_hits,
                self.trace_enters,
                self.trace_exits,
                100.0 * self.coverage(),
            )
        )


def _stat_property(name):
    def _get(self):
        return self._counters[name].value

    def _set(self, value):
        self._counters[name].value = value

    return property(_get, _set, doc="Thin view over the %r counter." % name)


for _name in STAT_FIELDS:
    setattr(ReplayStats, _name, _stat_property(_name))
del _name


class TeaReplayer:
    """Drives a TEA over block transitions with cost accounting.

    Parameters
    ----------
    tea:
        The automaton to drive.
    config:
        :class:`ReplayConfig`; defaults to the paper's best (B+ tree +
        local cache).
    cost:
        Shared :class:`~repro.dbt.cost.CostModel`; a private one is
        created otherwise.
    profile:
        Optional :class:`~repro.core.profile.TeaProfile` to fill.
    obs:
        Optional :class:`~repro.obs.Observability`; the replayer's
        counters live in its metrics registry and rare events (batch
        flushes) go to its tracer.  A private one is created otherwise.
    """

    def __init__(self, tea, config=None, cost=None, profile=None, obs=None):
        self.tea = tea
        self.config = config or ReplayConfig.global_local()
        self.cost = cost if cost is not None else CostModel()
        self.profile = profile
        self.obs = obs if obs is not None else Observability()
        self.stats = ReplayStats(metrics=self.obs.metrics)
        self.state = tea.nte
        self.directory = make_directory(
            self.config.global_index, order=self.config.bptree_order
        )
        for entry, head in tea.heads.items():
            self.directory.insert(entry, head)
        self._caches = {}
        #: Optional observer ``fn(previous_state, new_state, transition)``
        #: called after every step — the phase detector hooks in here.
        self.on_step = None

    # ------------------------------------------------------------------

    def register_trace(self, entry, head_state):
        """Make a newly recorded trace findable (online recording path)."""
        self.directory.insert(entry, head_state)

    def _cache_for(self, state):
        cache = self._caches.get(state.sid)
        if cache is None:
            if self.config.cache_kind == "direct":
                cache = DirectMappedCache(self.config.cache_size)
            else:
                cache = LRUCache(self.config.cache_size)
            self._caches[state.sid] = cache
        return cache

    # ------------------------------------------------------------------

    def step(self, transition):
        """Consume one block transition; returns the new state.

        ``transition.block`` just finished executing; coverage for it is
        attributed to the state the automaton was in while it ran.
        """
        counters = self.stats._counters
        cost = self.cost
        params = cost.params
        state = self.state
        previous = state

        counters["blocks"].value += 1
        counters["total_dbt"].value += transition.instrs_dbt
        counters["total_pin"].value += transition.instrs_pin
        in_trace = state.tbb is not None
        if in_trace:
            counters["covered_dbt"].value += transition.instrs_dbt
            counters["covered_pin"].value += transition.instrs_pin

        next_start = transition.next_start
        if next_start is None:
            # Program ended; no transition to take.
            if self.profile is not None:
                self.profile.record_block(state, transition)
            return state

        if in_trace:
            destination = state.transitions.get(next_start)
            if destination is not None:
                cost.charge("callback", params.CALLBACK_FAST)
                cost.charge("transition", params.IN_TRACE_TRANSITION)
                counters["in_trace_hits"].value += 1
                self.state = destination
            else:
                cost.charge("callback", params.CALLBACK_SLOW)
                counters["trace_exits"].value += 1
                self.state = self._leave_trace(state, next_start)
        else:
            cost.charge("callback", params.CALLBACK_SLOW)
            counters["nte_probes"].value += 1
            self.state = self._probe(next_start, cache=None)

        if self.profile is not None:
            self.profile.record_block(previous, transition)
            self.profile.record_edge(previous, self.state)
        if self.on_step is not None:
            self.on_step(previous, self.state, transition)
        return self.state

    def run(self, transitions):
        """Consume an iterable of block transitions; returns the final state.

        The batched replay engine: per-block work is the automaton walk
        alone — attribute lookups, cost parameters and statistic counters
        are hoisted into locals, and event counts and hot-path cycle
        charges are flushed once at the batch boundary.  Accounting is
        identical to calling :meth:`step` per transition.

        When a ``profile`` or ``on_step`` observer is attached the
        replayer falls back to per-call :meth:`step` so observers keep
        their exact per-transition view.
        """
        if self.profile is not None or self.on_step is not None:
            state = self.state
            for transition in transitions:
                state = self.step(transition)
            return state

        counters = self.stats._counters
        cost = self.cost
        params = cost.params
        leave_trace = self._leave_trace
        probe = self._probe
        state = self.state

        blocks = 0
        total_dbt = 0
        total_pin = 0
        covered_dbt = 0
        covered_pin = 0
        fast_hits = 0
        trace_exits = 0
        nte_probes = 0

        try:
            for transition in transitions:
                blocks += 1
                instrs_dbt = transition.instrs_dbt
                instrs_pin = transition.instrs_pin
                total_dbt += instrs_dbt
                total_pin += instrs_pin
                in_trace = state.tbb is not None
                if in_trace:
                    covered_dbt += instrs_dbt
                    covered_pin += instrs_pin
                next_start = transition.next_start
                if next_start is None:
                    continue
                if in_trace:
                    destination = state.transitions.get(next_start)
                    if destination is not None:
                        fast_hits += 1
                        state = destination
                    else:
                        trace_exits += 1
                        state = leave_trace(state, next_start)
                else:
                    nte_probes += 1
                    state = probe(next_start, cache=None)
        finally:
            # Batch-boundary flush: counters first, then the deferred
            # hot-path cycle charges (slow-path charges were applied
            # inside _leave_trace/_probe as they happened).
            self.state = state
            counters["blocks"].value += blocks
            counters["total_dbt"].value += total_dbt
            counters["total_pin"].value += total_pin
            counters["covered_dbt"].value += covered_dbt
            counters["covered_pin"].value += covered_pin
            counters["in_trace_hits"].value += fast_hits
            counters["trace_exits"].value += trace_exits
            counters["nte_probes"].value += nte_probes
            if fast_hits:
                cost.charge("callback", fast_hits * params.CALLBACK_FAST)
                cost.charge("transition",
                            fast_hits * params.IN_TRACE_TRANSITION)
            slow_calls = trace_exits + nte_probes
            if slow_calls:
                cost.charge("callback", slow_calls * params.CALLBACK_SLOW)
            self.obs.emit(
                "replay.batch",
                blocks=blocks,
                in_trace_hits=fast_hits,
                trace_exits=trace_exits,
                nte_probes=nte_probes,
            )
        return state

    def _leave_trace(self, state, next_start):
        """Side exit: local cache, then global directory, else NTE."""
        params = self.cost.params
        cache = self._cache_for(state) if self.config.local_cache else None
        if cache is not None:
            found = cache.probe(next_start)
            if found is not MISS:
                self.cost.charge("cache", params.CACHE_HIT)
                self.stats._counters["cache_hits"].value += 1
                self.stats._counters["trace_enters"].value += 1
                return found
            self.cost.charge("cache", params.CACHE_MISS)  # the failed probe
            self.stats._counters["cache_misses"].value += 1
        return self._probe(next_start, cache=cache)

    def _probe(self, next_start, cache):
        params = self.cost.params
        counters = self.stats._counters
        found, units = self.directory.lookup(next_start)
        per_unit = getattr(params, DIRECTORY_COST_PARAM[self.directory.kind])
        self.cost.charge("directory", units * per_unit)
        if found is None:
            counters["directory_misses"].value += 1
            return self.tea.nte
        counters["directory_hits"].value += 1
        counters["trace_enters"].value += 1
        self.cost.charge("enter", params.ENTER_TRACE)
        if cache is not None:
            cache.insert(next_start, found)
            self.cost.charge("cache", params.CACHE_INSERT)
        return found

    # ------------------------------------------------------------------

    def snapshot(self):
        """One JSON-able observability snapshot for this replayer.

        Bundles the metrics registry (all ``replay.*`` counters, plus
        whatever else shares the registry), the tracer ring (if any),
        directory work counters, local-cache totals, and the cost-model
        breakdown.
        """
        metrics = self.obs.metrics
        directory = self.directory
        metrics.set_gauge("replay.config", self.config.describe())
        metrics.set_gauge("replay.directory.kind", directory.kind)
        metrics.set_gauge("replay.directory.size", len(directory))
        metrics.set_gauge("replay.directory.probes", directory.probes)
        metrics.set_gauge("replay.directory.units", directory.units)
        metrics.set_gauge("replay.local_caches", len(self._caches))
        metrics.set_gauge(
            "replay.local_cache_hits",
            sum(cache.hits for cache in self._caches.values()),
        )
        metrics.set_gauge(
            "replay.local_cache_misses",
            sum(cache.misses for cache in self._caches.values()),
        )
        snap = self.obs.snapshot()
        snap["cost"] = {
            "cycles": self.cost.cycles,
            "breakdown": dict(self.cost.breakdown),
        }
        return snap

    def reset(self, clear_caches=True):
        """Return to NTE (e.g. between program runs on one automaton).

        Historically this reset only ``state``, so a reused replayer
        leaked the previous run's per-state local caches (stale hit/miss
        counters *and* stale cached destinations) and the directory's
        probe/unit work counters into the next run's accounting.  By
        default both are now cleared; pass ``clear_caches=False`` for
        the old state-only behaviour when warm caches across runs are
        actually wanted.
        """
        self.state = self.tea.nte
        if clear_caches:
            self._caches.clear()
            self.directory.reset_counters()
