"""The TEA replayer: the optimised transition function of Section 4.2.

The replayer consumes block transitions (from MiniPin's edge
instrumentation) and walks the automaton.  The transition function is the
paper's optimised implementation:

1. **Explicit transition** (common case, "optimized for ... executing hot
   code"): the current state's successor map has the next PC — a short,
   inlineable analysis routine (``CALLBACK_FAST`` + map hit).
2. **Trace exit**: the out-of-line slow callback runs; if enabled, the
   per-state **local cache** is consulted first (it "speeds up transitions
   from one trace to another"), then the **global directory** (linked
   list or B+ tree); a miss lands in NTE.
3. **NTE**: every block boundary probes the global directory — local
   caches are "pointless outside of traces", exactly as the paper notes —
   which is why the Empty configuration is *slower* than replaying real
   traces (Table 4's counter-intuitive result falls out of this code).

Coverage is accounted per completed block under both counting semantics
(StarDBT-style and Pin-style; Section 4.1).
"""

from repro.core.directory import DIRECTORY_COST_PARAM, make_directory
from repro.dbt.cost import CostModel
from repro.structures.lru import DirectMappedCache, LRUCache


class ReplayConfig:
    """Transition-function configuration (the Table 4 axes).

    ``global_index``: ``"bptree"`` or ``"list"`` (the paper's No-Global
    configurations keep traces in a linked list), plus the future-work
    structures ``"hash"`` and ``"sorted"``.
    ``local_cache``: enable the per-state cache.
    ``cache_kind``: ``"direct"`` (direct-mapped) or ``"lru"``.
    ``cache_size``: entries per state cache.
    """

    __slots__ = ("global_index", "local_cache", "cache_kind", "cache_size",
                 "bptree_order")

    def __init__(self, global_index="bptree", local_cache=True,
                 cache_kind="direct", cache_size=16, bptree_order=16):
        if global_index not in ("bptree", "list", "hash", "sorted"):
            raise ValueError(
                "global_index must be one of 'bptree', 'list', 'hash', "
                "'sorted'"
            )
        if cache_kind not in ("direct", "lru"):
            raise ValueError("cache_kind must be 'direct' or 'lru'")
        self.global_index = global_index
        self.local_cache = local_cache
        self.cache_kind = cache_kind
        self.cache_size = cache_size
        self.bptree_order = bptree_order

    @classmethod
    def global_local(cls):
        """The paper's best configuration (B+ tree + local cache)."""
        return cls(global_index="bptree", local_cache=True)

    @classmethod
    def global_no_local(cls):
        return cls(global_index="bptree", local_cache=False)

    @classmethod
    def no_global_local(cls):
        return cls(global_index="list", local_cache=True)

    @classmethod
    def no_global_no_local(cls):
        """The configuration the paper could not even measure (>100x)."""
        return cls(global_index="list", local_cache=False)

    def describe(self):
        global_name = "Global" if self.global_index == "bptree" else "No Global"
        local_name = "Local" if self.local_cache else "No Local"
        return "%s / %s" % (global_name, local_name)


class ReplayStats:
    """Event counters for one replay run."""

    __slots__ = (
        "blocks",
        "in_trace_hits",
        "cache_hits",
        "cache_misses",
        "directory_hits",
        "directory_misses",
        "nte_probes",
        "trace_enters",
        "trace_exits",
        "covered_dbt",
        "covered_pin",
        "total_dbt",
        "total_pin",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def coverage(self, pin_counting=True):
        """Covered fraction of dynamic instructions (0.0-1.0)."""
        if pin_counting:
            return self.covered_pin / self.total_pin if self.total_pin else 0.0
        return self.covered_dbt / self.total_dbt if self.total_dbt else 0.0

    def __repr__(self):
        return (
            "<ReplayStats blocks=%d hits=%d enters=%d exits=%d coverage=%.1f%%>"
            % (
                self.blocks,
                self.in_trace_hits,
                self.trace_enters,
                self.trace_exits,
                100.0 * self.coverage(),
            )
        )


class TeaReplayer:
    """Drives a TEA over block transitions with cost accounting."""

    def __init__(self, tea, config=None, cost=None, profile=None):
        self.tea = tea
        self.config = config or ReplayConfig.global_local()
        self.cost = cost if cost is not None else CostModel()
        self.profile = profile
        self.stats = ReplayStats()
        self.state = tea.nte
        self.directory = make_directory(
            self.config.global_index, order=self.config.bptree_order
        )
        for entry, head in tea.heads.items():
            self.directory.insert(entry, head)
        self._caches = {}
        #: Optional observer ``fn(previous_state, new_state, transition)``
        #: called after every step — the phase detector hooks in here.
        self.on_step = None

    # ------------------------------------------------------------------

    def register_trace(self, entry, head_state):
        """Make a newly recorded trace findable (online recording path)."""
        self.directory.insert(entry, head_state)

    def _cache_for(self, state):
        cache = self._caches.get(state.sid)
        if cache is None:
            if self.config.cache_kind == "direct":
                cache = DirectMappedCache(self.config.cache_size)
            else:
                cache = LRUCache(self.config.cache_size)
            self._caches[state.sid] = cache
        return cache

    # ------------------------------------------------------------------

    def step(self, transition):
        """Consume one block transition; returns the new state.

        ``transition.block`` just finished executing; coverage for it is
        attributed to the state the automaton was in while it ran.
        """
        stats = self.stats
        cost = self.cost
        params = cost.params
        state = self.state
        previous = state

        stats.blocks += 1
        stats.total_dbt += transition.instrs_dbt
        stats.total_pin += transition.instrs_pin
        in_trace = state.tbb is not None
        if in_trace:
            stats.covered_dbt += transition.instrs_dbt
            stats.covered_pin += transition.instrs_pin

        next_start = transition.next_start
        if next_start is None:
            # Program ended; no transition to take.
            if self.profile is not None:
                self.profile.record_block(state, transition)
            return state

        if in_trace:
            destination = state.transitions.get(next_start)
            if destination is not None:
                cost.charge("callback", params.CALLBACK_FAST)
                cost.charge("transition", params.IN_TRACE_TRANSITION)
                stats.in_trace_hits += 1
                self.state = destination
            else:
                cost.charge("callback", params.CALLBACK_SLOW)
                stats.trace_exits += 1
                self.state = self._leave_trace(state, next_start)
        else:
            cost.charge("callback", params.CALLBACK_SLOW)
            stats.nte_probes += 1
            self.state = self._probe(next_start, cache=None)

        if self.profile is not None:
            self.profile.record_block(previous, transition)
            self.profile.record_edge(previous, self.state)
        if self.on_step is not None:
            self.on_step(previous, self.state, transition)
        return self.state

    def _leave_trace(self, state, next_start):
        """Side exit: local cache, then global directory, else NTE."""
        params = self.cost.params
        cache = self._cache_for(state) if self.config.local_cache else None
        if cache is not None:
            found = cache.lookup(next_start)
            if found is not None:
                self.cost.charge("cache", params.CACHE_HIT)
                self.stats.cache_hits += 1
                self.stats.trace_enters += 1
                return found
            self.cost.charge("cache", params.CACHE_HIT)  # the failed probe
            self.stats.cache_misses += 1
        return self._probe(next_start, cache=cache)

    def _probe(self, next_start, cache):
        params = self.cost.params
        found, units = self.directory.lookup(next_start)
        per_unit = getattr(params, DIRECTORY_COST_PARAM[self.directory.kind])
        self.cost.charge("directory", units * per_unit)
        if found is None:
            self.stats.directory_misses += 1
            return self.tea.nte
        self.stats.directory_hits += 1
        self.stats.trace_enters += 1
        self.cost.charge("enter", params.ENTER_TRACE)
        if cache is not None:
            cache.insert(next_start, found)
            self.cost.charge("cache", params.CACHE_INSERT)
        return found

    # ------------------------------------------------------------------

    def reset(self):
        """Return to NTE (e.g. between program runs on one automaton)."""
        self.state = self.tea.nte
