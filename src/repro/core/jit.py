"""Per-automaton specializing replay codegen (the TEA JIT engine).

The compiled engine (:mod:`repro.core.compiled`) already lowers the
automaton into flat tables, but its hot loop is still *generic*: every
block pays a per-state successor-dict probe, and every side exit walks
the configurable cache/directory machinery through runtime flags.  The
paper's observation that the transition function dominates replay
(Table 4) points at the classic DBT answer — specialize the dispatch
code *per automaton*, the way a translator specializes per trace.

This module is that translator.  :func:`generate_replay_source` emits a
Python module tailored to one :class:`~repro.core.compiled.CompiledTea`
and one :class:`~repro.core.replay.ReplayConfig`:

- **state cells** — each state becomes a small list
  ``[expected_pc, next_cell, sid, cache, cache_values, exit_pc,
  exit_cell]``; the in-trace fast path is one integer compare plus one
  list index (``if pc == node[0]: node = node[1]``).  This exploits a
  structural fact of real TEAs: almost every in-trace state has exactly
  one successor, so its transition label is a *constant* that can be
  baked into the cell;
- **monomorphic exit stubs** — slots 5/6 memoise the last side exit
  taken from the state.  A state's local cache mutates only on that
  state's own exits, so "same PC as the previous exit" *proves* the
  cache would hit again — the dominant slow path collapses to one
  compare (measured: 90-97%% of exits on the Table 4 workloads repeat
  the previous exit PC);
- **baked constants** — cost-model charge constants
  (``CALLBACK_FAST``, ``IN_TRACE_TRANSITION``, ``CACHE_MISS``, the
  per-directory probe-unit cost), the cache geometry and the
  ``tbb_flag`` discrimination are emitted as literals; configuration
  branches the compiled engine tests per event simply do not exist in
  the generated code;
- **directory memoisation** — the global directory is immutable during
  a replay (``register_trace`` invalidates), so lookup results,
  including their probe-unit counts, are memoised; the deferred
  ``probes``/unit work is flushed into the directory's own counters at
  the batch boundary so observability gauges stay exact.

States with more than one successor fall back to a shared jump table
(``MULTI``); states whose fan-out exceeds the specialization threshold
are *not* specialized — reaching one mid-batch hands the rest of the
stream to a :class:`~repro.core.compiled.CompiledReplayer` (guard +
deopt, see :class:`JitReplayer`).

Accounting is bit-exact against ``TeaReplayer.step()`` and
``CompiledReplayer.run()``: identical ``replay.*`` counters, identical
cost charges in the same batch-boundary order (all replay charge
constants are integral floats, so regrouping sums is exact below
2**53).  The differential suite in ``tests/test_jit_engine.py`` pins
this down over the Table 4 configs and randomized automata.

Generated sources carry a structured header (magic, format version,
automaton digest, config token, cost-parameter token) and are cached on
disk by :class:`~repro.store.AutomatonStore` next to the TEAB blob;
verify rules TEA033/TEA034 (:mod:`repro.verify.rules_jit`) gate every
load of cached JIT code the same way TEA030-TEA032 gate ``CompiledTea``.
"""

import hashlib

from repro.core.automaton import NTE_SID
from repro.core.compiled import CompiledReplayer
from repro.core.directory import (
    DIRECTORY_COST_PARAM,
    DIRECTORY_UNITS_ATTR,
    make_directory,
)
from repro.core.replay import ReplayConfig, ReplayStats
from repro.dbt.cost import CostModel
from repro.obs import Observability
from repro.structures.lru import DirectMappedCache, LRUCache

#: First token of every generated source's header line.
JIT_MAGIC = "TEAJIT"

#: Generated-source format version (bump on layout changes; loaders
#: reject other versions and fall back to regeneration).
JIT_VERSION = 1

#: On-disk suffix for cached generated sources (sits next to the
#: ``.teab`` snapshot in the store shard; the store's snapshot listing
#: filters on the ``.teab`` suffix, so these never alias a content key).
JIT_SOURCE_SUFFIX = ".jit.py"

#: A state whose successor fan-out exceeds this is left unspecialized;
#: reaching it deopts the batch remainder to the compiled engine.
DEFAULT_SPECIALIZE_THRESHOLD = 16

#: Cell slot holding a value no packed ``next_start`` can equal (real
#: PCs are >= 0 and END_OF_RUN is -1): the "no expectation" marker.
_NO_MATCH = -3

#: Cost parameters the generated code bakes as literals, in emission
#: order (the header's params token hashes these values).
JIT_COST_FIELDS = (
    "CALLBACK_FAST", "CALLBACK_SLOW", "IN_TRACE_TRANSITION",
    "CACHE_HIT", "CACHE_MISS", "CACHE_INSERT",
    "LIST_ELEMENT", "BPTREE_NODE", "HASH_SLOT", "ARRAY_COMPARISON",
    "ENTER_TRACE",
)


def structural_digest(compiled):
    """SHA-256 over the automaton's flat tables (shape identity).

    Mirrors :meth:`CompiledTea.structurally_equal`: the per-state
    instruction metadata is excluded (snapshot-lowered automata carry
    zeros there), so a snapshot round-trip keeps its digest.
    """
    digest = hashlib.sha256()
    digest.update(b"TEAJIT-TABLES-1")
    for table in (compiled.labels, compiled.trans_offset,
                  compiled.trans_labels, compiled.trans_dest,
                  compiled.head_entries, compiled.head_sids):
        digest.update(table.tobytes())
        digest.update(b"|")
    digest.update(bytes(compiled.tbb_flag))
    return digest.hexdigest()


def jit_config_token(config):
    """Short stable token naming the config axes the codegen bakes."""
    if config.local_cache:
        cache = "%s%d" % (config.cache_kind, config.cache_size)
    else:
        cache = "nocache"
    return "%s-o%d-%s" % (config.global_index, config.bptree_order, cache)


def config_from_token(token):
    """Invert :func:`jit_config_token`; raises ``ValueError`` on junk.

    The token names only the axes the codegen bakes (directory kind,
    tree order, cache geometry) — the reconstructed config is complete
    for replay purposes.
    """
    parts = token.split("-")
    if len(parts) != 3 or not parts[1].startswith("o"):
        raise ValueError("malformed JIT config token %r" % (token,))
    global_index, order_part, cache = parts
    order = int(order_part[1:])
    if cache == "nocache":
        return ReplayConfig(global_index=global_index, local_cache=False,
                            bptree_order=order)
    for kind in ("direct", "lru"):
        if cache.startswith(kind):
            return ReplayConfig(
                global_index=global_index, local_cache=True,
                cache_kind=kind, cache_size=int(cache[len(kind):]),
                bptree_order=order,
            )
    raise ValueError("malformed JIT config token %r" % (token,))


def params_signature(params):
    """The baked cost constants as a tuple of floats."""
    return tuple(float(getattr(params, name)) for name in JIT_COST_FIELDS)


def params_token(params):
    """12-hex-digit token over the baked cost constants."""
    payload = ",".join(repr(value) for value in params_signature(params))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]


def specialize_tables(compiled, threshold=DEFAULT_SPECIALIZE_THRESHOLD):
    """Derive the specialization tables for one automaton.

    Returns ``(shift, exp, nxt, multi, deopt_sids)``:

    - ``shift`` — label bit width for the packed ``(sid << shift) |
      label`` jump-table keys;
    - ``exp[sid]`` — the transition label the fast path compares
      against (:data:`_NO_MATCH` when the state takes no fast path);
    - ``nxt[sid]`` — destination state of that fast transition;
    - ``multi`` — packed-key jump table for the remaining successors of
      states with fan-out in ``[2, threshold]``;
    - ``deopt_sids`` — states with fan-out above ``threshold`` (left
      unspecialized; the runner hands these to the compiled engine).

    Raises ``ValueError`` for automata the codegen cannot specialize
    (negative transition labels would collide with the packed stream's
    terminal sentinel).
    """
    labels = compiled.labels
    if len(labels) and min(labels) < 0:
        raise ValueError(
            "cannot specialize: automaton has negative transition labels"
        )
    max_label = max(labels) if len(labels) else 0
    shift = max(1, int(max_label).bit_length())
    n_states = compiled.n_states
    tbb_flag = compiled.tbb_flag
    successors = compiled.successor_maps()
    exp = [_NO_MATCH] * n_states
    nxt = list(range(n_states))
    multi = {}
    deopt = []
    for sid in range(n_states):
        # Mirrors the compiled engine: only in-trace states consult
        # their successor map; NTE and any other out-of-trace state go
        # straight to the directory.
        if not tbb_flag[sid] or not successors[sid]:
            continue
        items = list(successors[sid].items())
        if len(items) > threshold:
            deopt.append(sid)
            continue
        exp[sid], nxt[sid] = items[0]
        for label, dest in items[1:]:
            multi[(sid << shift) | label] = dest
    return shift, exp, nxt, multi, tuple(deopt)


def parse_jit_header(source):
    """Parse a generated source's header; returns a dict or ``None``.

    The header is the first line::

        # TEAJIT v1 digest=<64 hex> config=<token> params=<12 hex> threshold=<n>
    """
    line = source.split("\n", 1)[0].strip()
    if not line.startswith("#"):
        return None
    fields = line[1:].split()
    if len(fields) < 2 or fields[0] != JIT_MAGIC:
        return None
    if not fields[1].startswith("v"):
        return None
    try:
        header = {"magic": fields[0], "version": int(fields[1][1:])}
    except ValueError:
        return None
    for field in fields[2:]:
        key, _, value = field.partition("=")
        if not _:
            return None
        header[key] = value
    try:
        header["threshold"] = int(header.get("threshold", -1))
    except ValueError:
        return None
    return header


def extract_jit_tables(source):
    """Extract the literal tables from a generated source via ``ast``.

    Used by the TEA033/TEA034 verify rules, which must audit cached
    sources *without executing them*.  Returns a name -> value dict for
    every top-level literal assignment; raises ``SyntaxError`` on
    unparseable input and ``ValueError`` on non-literal table values.
    """
    import ast

    tables = {}
    module = ast.parse(source)
    for statement in module.body:
        if not isinstance(statement, ast.Assign):
            continue
        if len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            continue
        tables[target.id] = ast.literal_eval(statement.value)
    return tables


# ----------------------------------------------------------------------
# Code generation


def _emit_flush(lines, config, params, per_unit_name, units_attr):
    """Emit the batch-boundary flush (shared by the normal and deopt
    epilogues — the deopt path rewrites ``blocks``/totals first)."""
    signature = params_signature(params)
    baked = dict(zip(JIT_COST_FIELDS, signature))
    lines += [
        "        fast_hits = blocks - trace_exits - nte_probes - eor",
        "        counters['blocks'].value += blocks",
        "        counters['total_dbt'].value += total_dbt",
        "        counters['total_pin'].value += total_pin",
        "        counters['covered_dbt'].value += total_dbt - uncovered_dbt",
        "        counters['covered_pin'].value += total_pin - uncovered_pin",
        "        counters['in_trace_hits'].value += fast_hits",
        "        counters['trace_exits'].value += trace_exits",
        "        counters['nte_probes'].value += nte_probes",
        "        counters['cache_hits'].value += cache_hits",
        "        counters['cache_misses'].value += cache_misses",
        "        counters['directory_hits'].value += directory_hits",
        "        counters['directory_misses'].value += directory_misses",
        "        counters['trace_enters'].value += "
        "cache_hits + directory_hits",
        "        directory = R.directory",
        "        directory.probes += memo_probes",
        "        directory.%s += memo_units" % units_attr,
        "        R._agg_cache_hits += cache_hits",
        "        R._agg_cache_misses += cache_misses",
        "        if fast_hits:",
        "            charge('callback', fast_hits * %r)"
        % baked["CALLBACK_FAST"],
        "            charge('transition', fast_hits * %r)"
        % baked["IN_TRACE_TRANSITION"],
        "        slow_calls = trace_exits + nte_probes",
        "        if slow_calls:",
        "            charge('callback', slow_calls * %r)"
        % baked["CALLBACK_SLOW"],
        "        if cache_hits or cache_misses or cache_inserts:",
        "            charge('cache', cache_hits * %r + cache_misses * %r"
        " + cache_inserts * %r)"
        % (baked["CACHE_HIT"], baked["CACHE_MISS"], baked["CACHE_INSERT"]),
        "        if trace_exits + nte_probes > cache_hits:",
        "            charge('directory', directory_units * %r)"
        % baked[per_unit_name],
        "        if directory_hits:",
        "            charge('enter', directory_hits * %r)"
        % baked["ENTER_TRACE"],
        "        R.obs.emit('replay.batch', blocks=blocks,"
        " in_trace_hits=fast_hits, trace_exits=trace_exits,"
        " nte_probes=nte_probes)",
        "        R._node = node",
    ]


def _emit_directory_probe(lines, indent, counts_nte):
    """Emit the memoised directory lookup (shared by exit/NTE paths)."""
    pad = " " * indent
    lines += [
        pad + "m = memo_get(pc)",
        pad + "if m is None:",
        pad + "    found, units = lookup(pc)",
        pad + "    m = memo[pc] = (",
        pad + "        cells[found] if found is not None else None, units)",
        pad + "else:",
        pad + "    memo_probes += 1",
        pad + "    memo_units += m[1]",
        pad + "dest = m[0]",
        pad + "directory_units += m[1]",
    ]


def generate_replay_source(compiled, config=None, params=None,
                           threshold=DEFAULT_SPECIALIZE_THRESHOLD):
    """Emit the specialized replay module for one automaton + config.

    The result is a self-contained Python source string: literal
    specialization tables, a ``bind(replayer)`` function returning
    ``(cells, run)``, and a structured header for the cache/verify
    layers.  ``exec`` it once (that is what :class:`JitCode` does) and
    call ``run(packed)`` per batch.
    """
    config = config or ReplayConfig.global_local()
    params = params if params is not None else CostModel().params
    shift, exp, nxt, multi, deopt_sids = specialize_tables(
        compiled, threshold=threshold
    )
    use_cache = config.local_cache
    is_lru = use_cache and config.cache_kind != "direct"
    cache_size = config.cache_size
    per_unit_name = DIRECTORY_COST_PARAM[config.global_index]
    units_attr = DIRECTORY_UNITS_ATTR[config.global_index]
    use_multi = bool(multi)
    use_deopt = bool(deopt_sids)

    lines = [
        "# %s v%d digest=%s config=%s params=%s threshold=%d" % (
            JIT_MAGIC, JIT_VERSION, structural_digest(compiled),
            jit_config_token(config), params_token(params), threshold,
        ),
        '"""Machine-generated specialized TEA replay loop; do not edit.',
        "",
        "Emitted by repro.core.jit.generate_replay_source for one",
        "automaton (see the digest in the header line).  Regenerate",
        "rather than patching: the verify rules TEA033/TEA034 reject",
        "sources whose tables disagree with their automaton.",
        '"""',
        "",
        "SHIFT = %d" % shift,
        "N_STATES = %d" % compiled.n_states,
        "TBB = %r" % bytes(compiled.tbb_flag),
        "EXP = %r" % (exp,),
        "NXT = %r" % (nxt,),
        "MULTI = %r" % (multi,),
        "DEOPT_SIDS = %r" % (deopt_sids,),
        "",
        "_DEOPT = ['deopt']   # identity marker for unspecialized cells",
        "",
        "",
        "def bind(R):",
        "    cells = [[EXP[s], None, s, None, None, %d, None]" % _NO_MATCH,
        "             for s in range(N_STATES)]",
        "    for s in range(N_STATES):",
        "        cells[s][1] = cells[NXT[s]]",
        "    for s in range(N_STATES):",
        "        if TBB[s]:",
    ]
    if is_lru:
        lines += ["            cells[s][3] = {}"]
    elif use_cache:
        lines += [
            "            cells[s][3] = [None] * %d" % cache_size,
            "            cells[s][4] = [None] * %d" % cache_size,
        ]
    else:
        lines += ["            cells[s][3] = True"]
    lines += [
        "    for s in DEOPT_SIDS:",
        "        cells[s][0] = %d" % _NO_MATCH,
        "        cells[s][3] = _DEOPT",
        "        cells[s][5] = %d" % _NO_MATCH,
        "    multi = {key: cells[dest] for key, dest in MULTI.items()}",
        "    multi_get = multi.get",
        "    nte_cell = cells[%d]" % NTE_SID,
        "",
        "    def run(packed):",
        "        length = len(packed)",
        "        if length % 3:",
        "            raise ValueError(",
        "                'packed batch length %d is not a multiple of 3'",
        "                % length)",
        "        counters = R.stats._counters",
        "        charge = R.cost.charge",
        "        lookup = R.directory.lookup",
        "        memo = R._dir_memo",
        "        memo_get = memo.get",
        "        touched_add = R._cache_touched.add",
        "        node = R._node",
        "        blocks = length // 3",
        "        starts = list(packed[0::3])",
        "        dbt_lane = list(packed[1::3])",
        "        pin_lane = list(packed[2::3])",
        "        total_dbt = sum(dbt_lane)",
        "        total_pin = sum(pin_lane)",
        "        uncovered_dbt = 0",
        "        uncovered_pin = 0",
        "        trace_exits = 0",
        "        nte_probes = 0",
        "        eor = 0",
        "        cache_hits = 0",
        "        cache_misses = 0",
        "        cache_inserts = 0",
        "        directory_hits = 0",
        "        directory_misses = 0",
        "        directory_units = 0",
        "        memo_probes = 0",
        "        memo_units = 0",
        "        it = iter(starts)",
        "        hint = it.__length_hint__",
    ]
    if use_deopt:
        lines += ["        deopt_at = -1"]
    lines += [
        "        for pc in it:",
        "            if pc == node[0]:",
        "                node = node[1]",
        "                continue",
    ]
    if use_cache:
        # Monomorphic exit stub: same PC as the previous (cache-backed)
        # exit from this state proves the cache hits again.
        lines += [
            "            if pc == node[5]:",
            "                trace_exits += 1",
            "                cache_hits += 1",
            "                node = node[6]",
            "                continue",
        ]
    lines += [
        "            keys = node[3]",
        "            if keys is not None:",
    ]
    if use_deopt:
        lines += [
            "                if keys is _DEOPT:",
            "                    deopt_at = blocks - hint() - 1",
            "                    break",
        ]
    if use_multi:
        lines += [
            "                d = multi_get((node[2] << %d) | pc)" % shift,
            "                if d is not None:",
            "                    node = d",
            "                    continue",
        ]
    lines += [
        "                if pc < 0:",
        "                    eor += 1",
        "                    continue",
        "                trace_exits += 1",
    ]
    if is_lru:
        lines += [
            "                found = keys.get(pc)",
            "                if found is not None:",
            "                    del keys[pc]",
            "                    keys[pc] = found",
            "                    cache_hits += 1",
            "                    node[5] = pc",
            "                    node[6] = found",
            "                    node = found",
            "                    continue",
            "                cache_misses += 1",
        ]
    elif use_cache:
        lines += [
            "                slot = pc %% %d" % cache_size,
            "                if keys[slot] == pc:",
            "                    cache_hits += 1",
            "                    found = node[4][slot]",
            "                    node[5] = pc",
            "                    node[6] = found",
            "                    node = found",
            "                    continue",
            "                cache_misses += 1",
        ]
    _emit_directory_probe(lines, 16, counts_nte=False)
    lines += [
        "                if dest is None:",
        "                    directory_misses += 1",
    ]
    if use_cache:
        # The compiled engine creates the state's (empty) cache on any
        # exit; record dir-miss exits so the cache-population gauges
        # agree (every other exit leaves a visible cache entry).
        lines += ["                    touched_add(node[2])"]
    lines += [
        "                    node = nte_cell",
        "                else:",
        "                    directory_hits += 1",
    ]
    if is_lru:
        lines += [
            "                    cache_inserts += 1",
            "                    keys[pc] = dest",
            "                    if len(keys) > %d:" % cache_size,
            "                        del keys[next(iter(keys))]",
            "                    node[5] = pc",
            "                    node[6] = dest",
        ]
    elif use_cache:
        lines += [
            "                    cache_inserts += 1",
            "                    keys[slot] = pc",
            "                    node[4][slot] = dest",
            "                    node[5] = pc",
            "                    node[6] = dest",
        ]
    lines += [
        "                    node = dest",
        "            else:",
        "                index = blocks - hint() - 1",
        "                uncovered_dbt += dbt_lane[index]",
        "                uncovered_pin += pin_lane[index]",
        "                if pc < 0:",
        "                    eor += 1",
        "                    continue",
        "                nte_probes += 1",
    ]
    _emit_directory_probe(lines, 16, counts_nte=True)
    lines += [
        "                if dest is None:",
        "                    directory_misses += 1",
        "                    node = nte_cell",
        "                else:",
        "                    directory_hits += 1",
        "                    node = dest",
    ]
    if use_deopt:
        lines += [
            "        if deopt_at >= 0:",
            "            blocks = deopt_at",
            "            total_dbt = sum(dbt_lane[:deopt_at])",
            "            total_pin = sum(pin_lane[:deopt_at])",
        ]
    _emit_flush(lines, config, params, per_unit_name, units_attr)
    if use_deopt:
        lines += [
            "        if deopt_at >= 0:",
            "            return (node[2], deopt_at)",
        ]
    lines += [
        "        return node[2]",
        "",
        "    return cells, run",
        "",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Compiled code wrapper


class JitCode:
    """One generated replay module: source + executed namespace.

    Immutable and shareable: ``bind()`` builds fresh per-replayer cells,
    so many :class:`JitReplayer` instances (or service workers) can hold
    one ``JitCode``.
    """

    __slots__ = ("source", "header", "_namespace")

    def __init__(self, source):
        header = parse_jit_header(source)
        if header is None:
            raise ValueError(
                "not a TEA JIT source (missing '# %s v%d ...' header)"
                % (JIT_MAGIC, JIT_VERSION)
            )
        if header["version"] != JIT_VERSION:
            raise ValueError(
                "unsupported TEA JIT source version %r (this build "
                "understands v%d)" % (header["version"], JIT_VERSION)
            )
        self.source = source
        self.header = header
        namespace = {}
        code = compile(source, "<teajit:%s>" % self.digest[:12], "exec")
        exec(code, namespace)  # noqa: S102 — gated by TEA033/TEA034
        if "bind" not in namespace:
            raise ValueError("TEA JIT source defines no bind() function")
        self._namespace = namespace

    @classmethod
    def from_compiled(cls, compiled, config=None, params=None,
                      threshold=DEFAULT_SPECIALIZE_THRESHOLD):
        """Generate + compile the specialized module for an automaton."""
        return cls(generate_replay_source(
            compiled, config=config, params=params, threshold=threshold,
        ))

    @classmethod
    def from_source(cls, source):
        """Wrap an existing generated source (e.g. from the store cache).

        Callers loading from untrusted/on-disk locations should gate
        through :func:`repro.verify.api.verify_jit_source` first — the
        store's ``verify_on_load`` path does.
        """
        return cls(source)

    # ------------------------------------------------------------------

    @property
    def digest(self):
        return self.header.get("digest", "")

    @property
    def config_token(self):
        return self.header.get("config", "")

    @property
    def params_token(self):
        return self.header.get("params", "")

    @property
    def threshold(self):
        return self.header.get("threshold", -1)

    @property
    def n_states(self):
        return self._namespace["N_STATES"]

    @property
    def deopt_sids(self):
        return self._namespace["DEOPT_SIDS"]

    def matches(self, compiled=None, config=None, params=None):
        """Guard check: does this code describe that automaton/config?"""
        if compiled is not None and self.digest != structural_digest(compiled):
            return False
        if config is not None and self.config_token != jit_config_token(config):
            return False
        if params is not None and self.params_token != params_token(params):
            return False
        return True

    def bind(self, replayer):
        """Build this code's cells + runner closure for one replayer."""
        return self._namespace["bind"](replayer)

    def __repr__(self):
        return "<JitCode digest=%s config=%s states=%d deopt=%d>" % (
            self.digest[:12], self.config_token, self.n_states,
            len(self.deopt_sids),
        )


# ----------------------------------------------------------------------
# The replayer


class JitReplayer:
    """Drives generated specialized code over packed transition batches.

    The API mirrors :class:`~repro.core.compiled.CompiledReplayer` —
    same constructor knobs plus ``code`` (a prebuilt :class:`JitCode`,
    e.g. from :meth:`AutomatonStore.get_jit`) and ``threshold``; same
    ``stats``/``cost``/``directory``/``sid``/``snapshot`` surface; the
    accounting is bit-exact against both other engines.

    Guards and deopt
    ----------------
    - *Construction guards*: a supplied ``code`` must match the
      automaton digest, the config token and the live cost parameters;
      code is regenerated when only the parameters drifted, and the
      replayer falls back to a :class:`CompiledReplayer` outright when
      the automaton cannot be specialized at all.
    - *Runtime guard*: reaching a state whose fan-out exceeded the
      specialization threshold hands the remainder of that batch — and
      every later batch — to the compiled engine, with the prefix
      already flushed (counters are registry-backed, so the handover is
      seamless and still bit-exact).
    - ``reset(clear_caches=True)`` re-arms the specialized loop after a
      threshold deopt; permanent (construction) deopts stay put.

    Observability adds ``replay.jit_deopts`` (counter) and the
    ``replay.jit_*`` gauges emitted by :meth:`snapshot`.
    """

    def __init__(self, compiled, config=None, cost=None, obs=None,
                 code=None, threshold=DEFAULT_SPECIALIZE_THRESHOLD):
        self.compiled = compiled
        self.config = config or ReplayConfig.global_local()
        self.cost = cost if cost is not None else CostModel()
        self.obs = obs if obs is not None else Observability()
        self.stats = ReplayStats(metrics=self.obs.metrics)
        self.directory = make_directory(
            self.config.global_index, order=self.config.bptree_order
        )
        for entry, head_sid in zip(compiled.head_entries,
                                   compiled.head_sids):
            self.directory.insert(entry, head_sid)
        self.threshold = threshold
        self._dir_memo = {}
        # States that took an exit whose lookup dir-missed: the
        # compiled engine materialises an (empty) cache there, so the
        # cache-population gauge must count them too.
        self._cache_touched = set()
        self._agg_cache_hits = 0
        self._agg_cache_misses = 0
        self._fallback = None
        self._fallback_active = False
        self._deopt_reason = None
        self._permanent_deopt = False
        self._deopts = self.obs.metrics.counter("replay.jit_deopts")
        self.cells = None
        self._node = None
        self._runner = None

        if code is not None and not code.matches(
                compiled=compiled, config=self.config):
            # Wrong automaton or config: that code cannot be trusted
            # here under any parameters.
            code = None
        if code is not None and not code.matches(params=self.cost.params):
            # Right automaton, drifted cost constants: the baked charge
            # literals are stale.  Regenerate below.
            code = None
        if code is None:
            try:
                code = JitCode.from_compiled(
                    compiled, config=self.config, params=self.cost.params,
                    threshold=threshold,
                )
            except ValueError as error:
                self.code = None
                self._activate_fallback(
                    "unspecializable: %s" % error, sid=NTE_SID,
                    permanent=True,
                )
                return
        self.code = code
        self.cells, self._runner = code.bind(self)
        self._node = self.cells[NTE_SID]

    # ------------------------------------------------------------------

    @property
    def sid(self):
        """Current state id (mirrors ``CompiledReplayer.sid``)."""
        if self._fallback_active:
            return self._fallback.sid
        return self._node[2]

    @sid.setter
    def sid(self, value):
        if self._fallback_active:
            self._fallback.sid = value
        else:
            self._node = self.cells[value]

    @property
    def deopted(self):
        """True while the compiled fallback is driving."""
        return self._fallback_active

    @property
    def deopt_reason(self):
        return self._deopt_reason

    # ------------------------------------------------------------------

    def register_trace(self, entry, head_sid):
        """Make a newly known trace findable (parity with TeaReplayer).

        Invalidates the directory memo wholesale: an insertion reshapes
        the container, so the memoised probe-unit counts of *other*
        entries go stale too, not just this PC's result.
        """
        self.directory.insert(entry, head_sid)
        self._dir_memo.clear()

    def run(self, packed):
        """Consume one packed batch; returns the final state id.

        Accepts the same flat ``(next_start, instrs_dbt, instrs_pin)``
        int sequences as :meth:`CompiledReplayer.run`, with the same
        batch-boundary accounting.  One deviation: the compiled engine
        flushes batch-atomically even when an injected fault escapes
        mid-batch; the generated loop has no try/finally (nothing in
        the specialized walk can raise), so a fault injected into the
        directory surfaces before any flush.
        """
        if self._fallback_active:
            return self._fallback.run(packed)
        result = self._runner(packed)
        if type(result) is tuple:
            sid, index = result
            self._activate_fallback("specialization threshold", sid=sid)
            remainder = packed[3 * index:]
            if len(remainder):
                return self._fallback.run(remainder)
            return self._fallback.sid
        return result

    # ------------------------------------------------------------------

    def _activate_fallback(self, reason, sid, permanent=False):
        """Hand the replay over to a compiled engine sharing our state."""
        fallback = CompiledReplayer(
            self.compiled, config=self.config, cost=self.cost, obs=self.obs,
        )
        # Counters are registry-backed, so the fallback's ReplayStats
        # already aliases ours; directory identity preserves probe/unit
        # counters and any traces registered mid-replay.
        fallback.stats = self.stats
        fallback.directory = self.directory
        fallback.sid = sid
        fallback._caches = self._convert_caches()
        self._fallback = fallback
        self._fallback_active = True
        self._permanent_deopt = self._permanent_deopt or permanent
        self._deopt_reason = reason
        self._deopts.inc()
        self.obs.emit("replay.jit_deopt", reason=reason,
                      permanent=bool(permanent))

    def _convert_caches(self):
        """Lower cell-embedded caches into the compiled engine's shape."""
        caches = {}
        if self.cells is None or not self.config.local_cache:
            return caches
        is_lru = self.config.cache_kind != "direct"
        size = self.config.cache_size
        deopt_sids = set(self.code.deopt_sids)
        for cell in self.cells:
            # Unspecialized cells carry the _DEOPT marker (a list) in
            # the cache slot — not a cache.
            if cell[2] in deopt_sids:
                continue
            store = cell[3]
            if store is None or not isinstance(store, (dict, list)):
                continue
            if is_lru:
                if not store:
                    continue
                cache = LRUCache(size)
                # The emulation dict is maintained in recency order
                # (hits reinsert), exactly OrderedDict's convention.
                for pc, dest in store.items():
                    cache._entries[pc] = dest[2]
                caches[cell[2]] = cache
            else:
                if not any(key is not None for key in store):
                    continue
                cache = DirectMappedCache(size)
                cache._keys = list(store)
                cache._values = [
                    dest[2] if dest is not None else None
                    for dest in cell[4]
                ]
                caches[cell[2]] = cache
        # Dir-miss-only states: compiled holds an empty cache for them.
        cache_ctor = LRUCache if is_lru else DirectMappedCache
        for sid in self._cache_touched:
            if sid not in caches:
                caches[sid] = cache_ctor(size)
        return caches

    # ------------------------------------------------------------------

    def coverage(self, pin_counting=True):
        return self.stats.coverage(pin_counting=pin_counting)

    def snapshot(self):
        """Observability snapshot (compiled-engine gauges plus the
        ``replay.jit_*`` markers)."""
        metrics = self.obs.metrics
        directory = self.directory
        metrics.set_gauge("replay.engine", "jit")
        metrics.set_gauge("replay.config", self.config.describe())
        metrics.set_gauge("replay.directory.kind", directory.kind)
        metrics.set_gauge("replay.directory.size", len(directory))
        metrics.set_gauge("replay.directory.probes", directory.probes)
        metrics.set_gauge("replay.directory.units", directory.units)
        cache_hits = self._agg_cache_hits
        cache_misses = self._agg_cache_misses
        active = 0
        if self._fallback is not None:
            fallback_caches = self._fallback._caches
            active = len(fallback_caches)
            cache_hits += sum(c.hits for c in fallback_caches.values())
            cache_misses += sum(c.misses for c in fallback_caches.values())
        elif self.cells is not None and self.config.local_cache:
            deopt_sids = set(self.code.deopt_sids)
            populated = set(self._cache_touched)
            for cell in self.cells:
                if cell[2] in deopt_sids:
                    continue
                store = cell[3]
                if isinstance(store, dict) and store:
                    populated.add(cell[2])
                elif (isinstance(store, list)
                        and any(k is not None for k in store)):
                    populated.add(cell[2])
            active = len(populated)
        metrics.set_gauge("replay.local_caches", active)
        metrics.set_gauge("replay.local_cache_hits", cache_hits)
        metrics.set_gauge("replay.local_cache_misses", cache_misses)
        code = self.code
        metrics.set_gauge("replay.jit_active", not self._fallback_active)
        metrics.set_gauge(
            "replay.jit_code_digest", code.digest[:12] if code else "")
        metrics.set_gauge(
            "replay.jit_specialized_states",
            (code.n_states - len(code.deopt_sids)) if code else 0)
        metrics.set_gauge(
            "replay.jit_deopt_states", len(code.deopt_sids) if code else 0)
        metrics.set_gauge(
            "replay.jit_dir_memo_entries", len(self._dir_memo))
        if self._deopt_reason:
            metrics.set_gauge("replay.jit_deopt_reason", self._deopt_reason)
        snap = self.obs.snapshot()
        snap["cost"] = {
            "cycles": self.cost.cycles,
            "breakdown": dict(self.cost.breakdown),
        }
        return snap

    def reset(self, clear_caches=True):
        """Return to NTE (see :meth:`CompiledReplayer.reset`).

        With ``clear_caches=True`` this also re-arms the specialized
        loop after a threshold deopt (the warm caches the fallback
        accumulated are dropped along with everything else); permanent
        construction-time deopts stay on the compiled fallback.
        """
        if self._permanent_deopt:
            self._fallback.reset(clear_caches=clear_caches)
            return
        if clear_caches:
            self._fallback = None
            self._fallback_active = False
            self._deopt_reason = None
            self._dir_memo.clear()
            self._cache_touched.clear()
            self.directory.reset_counters()
            self._agg_cache_hits = 0
            self._agg_cache_misses = 0
            size = self.config.cache_size
            deopt_sids = set(self.code.deopt_sids)
            for cell in self.cells:
                if cell[2] in deopt_sids:
                    continue   # keep the _DEOPT marker (and its -3 slots)
                store = cell[3]
                if isinstance(store, dict):
                    store.clear()
                elif isinstance(store, list):
                    cell[3] = [None] * size
                    cell[4] = [None] * size
                cell[5] = _NO_MATCH
                cell[6] = None
            self._node = self.cells[NTE_SID]
            return
        # State-only reset: warm caches survive *with* their stats —
        # exactly the object/compiled engines' clear_caches=False
        # contract (the directory memo stays valid too: the directory
        # itself was not touched).
        if self._fallback_active:
            self._fallback.reset(clear_caches=False)
            return
        self._node = self.cells[NTE_SID]

    def __repr__(self):
        mode = "fallback:%s" % self._deopt_reason if self._fallback_active \
            else "specialized"
        return "<JitReplayer states=%d %s>" % (self.compiled.n_states, mode)
