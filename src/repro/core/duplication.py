"""Trace duplication for unroll profiling (the Section 2 motivation).

A TEA cannot simulate an *unrolled* trace: the unrolled copy's
instructions have no counterpart in the unmodified executable.  But the
trace can be **duplicated** instead of unrolled — the duplicated trace
(Figure 1(d)) executes the same original addresses twice per cycle, so it
can "be safely loaded alongside the original program for profiling", and
the per-copy profile maps one-to-one onto the unrolled trace's
instructions (instructions C and D of Figure 1(d) are instructions 5 and
6 of the unrolled Figure 1(c)).

:func:`duplicate_trace` implements that transformation for any cyclic
trace: ``factor`` copies of every TBB, with forward edges kept inside a
copy and backward (cycle) edges routed to the *next* copy, the final copy
cycling back to the first.  The result is a valid
:class:`~repro.traces.model.Trace` over the original addresses, so
Algorithm 1 and the replayer work on it unchanged.
"""

from repro.errors import TraceError
from repro.traces.model import Trace, TraceSet


def duplicate_trace(trace, factor=2, new_id=None):
    """Return ``trace`` duplicated ``factor`` times (Figure 1(b) -> 1(d))."""
    if factor < 2:
        raise TraceError("duplication factor must be >= 2")
    size = len(trace.tbbs)
    if size == 0:
        raise TraceError("cannot duplicate an empty trace")
    duplicated = Trace(
        new_id if new_id is not None else trace.trace_id,
        trace.kind,
        anchor=trace.anchor,
    )
    for _copy in range(factor):
        for tbb in trace.tbbs:
            duplicated.add_block(tbb.block)
    for copy in range(factor):
        base = copy * size
        for tbb in trace.tbbs:
            for _label, successor in tbb.successors.items():
                if successor > tbb.index:
                    # Forward edge: stays within this copy.
                    duplicated.add_edge(base + tbb.index, base + successor)
                else:
                    # Backward (cycle) edge: route to the next copy, the
                    # last copy cycling back to the first.
                    next_base = ((copy + 1) % factor) * size
                    duplicated.add_edge(base + tbb.index, next_base + successor)
    duplicated.check()
    return duplicated


def duplicate_in_set(trace_set, entry, factor=2):
    """Return a new TraceSet with the trace at ``entry`` duplicated.

    All other traces are carried over unchanged; the duplicated trace
    keeps its entry address, so directories and NTE transitions are
    unaffected.
    """
    original = trace_set.trace_at(entry)
    if original is None:
        raise TraceError("no trace with entry %#x" % entry)
    result = TraceSet(kind=trace_set.kind)
    for trace in trace_set:
        if trace is original:
            result.add(duplicate_trace(trace, factor=factor))
        else:
            result.add(trace)
    return result
