"""The TEA automaton.

States and labelled transitions, exactly as Section 3 defines them:

- one state per TBB (Definition 2 guarantees uniqueness), named
  ``$$T<i>.<addr>`` like the paper's ``$$T1.next``;
- the special **NTE** state, representing execution outside any trace;
- transitions labelled with the program counter that triggers them
  (the successor block's start address).

Explicit transitions cover control flow *inside* traces (and, when the
builder is asked to link traces, statically known trace-to-trace edges).
Transitions into traces from NTE — Algorithm 1's lines 15-17 — are kept
as the ``heads`` registry: a mapping from trace entry address to head
state.  The replayer's transition function materialises those NTE edges
through its lookup directory, which is precisely the data structure
Section 4.2 ablates.  Transitions *to* NTE are the default for any label
with no explicit edge, as in any DFA with a sink-like catch state.
"""

from repro.errors import TeaError

#: State id reserved for NTE.
NTE_SID = 0


class TeaState:
    """One automaton state: a TBB, or NTE when ``tbb`` is None."""

    __slots__ = ("sid", "tbb", "transitions")

    def __init__(self, sid, tbb=None):
        self.sid = sid
        self.tbb = tbb
        self.transitions = {}

    @property
    def is_nte(self):
        return self.tbb is None

    @property
    def name(self):
        return "NTE" if self.tbb is None else self.tbb.name

    @property
    def trace_id(self):
        return None if self.tbb is None else self.tbb.trace_id

    def __repr__(self):
        return "<TeaState %s %d transitions>" % (self.name, len(self.transitions))


class TEA:
    """The whole-program trace execution automaton."""

    def __init__(self):
        self.nte = TeaState(NTE_SID)
        self.states = [self.nte]
        self.heads = {}      # trace entry address -> head TeaState
        self._by_tbb = {}    # (trace_id, index) -> TeaState

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_tbb_state(self, tbb):
        """Create (or return) the state representing ``tbb``."""
        key = (tbb.trace_id, tbb.index)
        existing = self._by_tbb.get(key)
        if existing is not None:
            return existing
        state = TeaState(len(self.states), tbb)
        self.states.append(state)
        self._by_tbb[key] = state
        return state

    def state_for(self, tbb):
        """The state representing ``tbb``; raises if absent."""
        try:
            return self._by_tbb[(tbb.trace_id, tbb.index)]
        except KeyError:
            raise TeaError("no state for %s" % tbb.name) from None

    def has_state_for(self, tbb):
        return (tbb.trace_id, tbb.index) in self._by_tbb

    def add_transition(self, source, label, destination):
        """Add ``source --label--> destination``; enforces determinism."""
        existing = source.transitions.get(label)
        if existing is not None:
            if existing is not destination:
                raise TeaError(
                    "nondeterministic transition from %s on %#x"
                    % (source.name, label)
                )
            return
        source.transitions[label] = destination

    def register_head(self, trace, head_state):
        """Record the NTE -> head transition for ``trace`` (lines 15-17)."""
        entry = trace.entry
        existing = self.heads.get(entry)
        if existing is not None and existing is not head_state:
            raise TeaError("conflicting head registration at %#x" % entry)
        self.heads[entry] = head_state

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------

    @property
    def n_states(self):
        return len(self.states)

    @property
    def n_transitions(self):
        return sum(len(state.transitions) for state in self.states)

    @property
    def n_traces(self):
        return len(self.heads)

    def next_state(self, state, label):
        """Pure transition function (no caches, no cost accounting).

        Used by tests and the figure renderer; the replayer implements
        the optimised version with the Section 4.2 structures.
        """
        explicit = state.transitions.get(label)
        if explicit is not None:
            return explicit
        head = self.heads.get(label)
        if head is not None:
            return head
        return self.nte

    def simulate(self, labels, start=None):
        """Run the pure automaton over a PC label sequence; yields states."""
        state = start if start is not None else self.nte
        for label in labels:
            state = self.next_state(state, label)
            yield state

    def to_dot(self):
        """Graphviz rendering (Figure 3 style: NTE plus TBB states)."""
        lines = [
            "digraph tea {",
            "  rankdir=TB;",
            '  node [shape=ellipse, fontname=monospace];',
            '  s0 [label="NTE", shape=doublecircle];',
        ]
        for state in self.states[1:]:
            lines.append('  s%d [label="%s"];' % (state.sid, state.name))
        for state in self.states:
            for label, destination in sorted(state.transitions.items()):
                lines.append(
                    '  s%d -> s%d [label="%#x"];'
                    % (state.sid, destination.sid, label)
                )
        for entry, head in sorted(self.heads.items()):
            lines.append('  s0 -> s%d [label="%#x", style=dashed];'
                         % (head.sid, entry))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return "<TEA states=%d transitions=%d traces=%d>" % (
            self.n_states,
            self.n_transitions,
            self.n_traces,
        )
