"""Algorithm 1: converting traces to TEA.

The structure follows the paper line by line:

1.  ``TEA.States <- {NTE}``; ``TEA.Transitions <- {}`` — a fresh
    :class:`~repro.core.automaton.TEA` starts that way.
2.  Lines 3-5: one state per TBB (Property 1: every TBB representable).
3.  Lines 6-14: for each TBB, walk its successors; successors that are
    trace blocks get explicit labelled transitions, others fall to NTE
    (the automaton's default), giving Property 2.
4.  Lines 15-17: register NTE -> trace-head transitions for every trace.

``link_traces`` additionally materialises *statically known* trace-to-
trace transitions (a side-exit address that is exactly another trace's
entry).  The paper's implementation resolves those through the lookup
directory + local cache instead, so the default is off; the ablation
bench ``bench_ablation_linking`` measures what explicit linking buys.
"""


from repro.core.automaton import TEA


def build_tea(trace_set, link_traces=False):
    """Build the whole-program TEA for ``trace_set`` (Algorithm 1)."""
    tea = TEA()
    for trace in trace_set:
        sync_trace(tea, trace)
    if link_traces:
        # Second pass so links can target traces added later in the set.
        for trace in trace_set:
            sync_trace(tea, trace, trace_set=trace_set, link_traces=True)
    return tea


def sync_trace(tea, trace, trace_set=None, link_traces=False):
    """Add (or re-sync) one trace's states and transitions into ``tea``.

    Idempotent: already-present states and transitions are kept, so the
    online recorder calls this when a trace is committed, and tree-based
    recorders call it again after extending a committed tree.
    """
    # Lines 3-5: states for every TBB.
    for tbb in trace:
        tea.add_tbb_state(tbb)

    # Lines 6-14: transitions out of every TBB.
    for tbb in trace:
        source = tea.state_for(tbb)
        for label, successor_index in tbb.successors.items():
            destination = tea.state_for(trace.tbbs[successor_index])
            tea.add_transition(source, label, destination)
        if link_traces and trace_set is not None:
            for label in tbb.exit_labels():
                if label is None:
                    continue
                other = trace_set.trace_at(label)
                if other is None or not tea.has_state_for(other.tbbs[0]):
                    continue
                if label not in source.transitions:
                    tea.add_transition(
                        source, label, tea.state_for(other.tbbs[0])
                    )
        # Exits not matched above transition to NTE implicitly: in a DFA
        # reading PC labels, any label without an explicit edge falls out
        # of the trace — the automaton's default models lines 12-13.

    # Lines 15-17: the NTE -> head transition.
    tea.register_head(trace, tea.state_for(trace.tbbs[0]))
    return tea
