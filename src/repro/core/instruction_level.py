"""Instruction-granularity TEA.

The paper defines TEA over "instructions or basic blocks"; Figure 1's
trace is written at instruction granularity ((1)-(6)), and the Section 2
profiling discussion is per-instruction.  This module provides that
finer automaton:

- one state per *trace instruction* (a TBB expands into a chain of
  instruction states, linked by fall-through-labelled transitions);
- the TBB's outgoing labelled transitions move from its last
  instruction's state;
- NTE and the head directory work exactly as at block granularity.

The replayer consumes the same block-transition stream the engines
already produce and expands each block into its statically known
instruction PC sequence, so no new instrumentation is needed — at the
cost of one automaton step per instruction (which is also the honest
cost a real instruction-level TEA pays, and why the paper's
implementation works on basic blocks; see ``bench_ablation_granularity``).
"""

from repro.core.automaton import TeaState
from repro.core.directory import DIRECTORY_COST_PARAM, make_directory
from repro.core.replay import ReplayConfig, ReplayStats
from repro.dbt.cost import CostModel
from repro.errors import TeaError


class InstructionPoint:
    """Identity of one instruction inside a TBB (plays the tbb role for
    :class:`~repro.core.automaton.TeaState`)."""

    __slots__ = ("trace_id", "tbb_index", "offset", "addr", "index")

    def __init__(self, trace_id, tbb_index, offset, addr):
        self.trace_id = trace_id
        self.tbb_index = tbb_index
        self.offset = offset
        self.addr = addr
        # ``index`` keeps TeaState.name-compatible semantics unique.
        self.index = (tbb_index, offset)

    @property
    def name(self):
        return "$$T%d.%#x[%d.%d]" % (
            self.trace_id, self.addr, self.tbb_index, self.offset
        )

    def __repr__(self):
        return "<InstructionPoint %s>" % self.name


class InstructionTEA:
    """The instruction-granularity automaton."""

    def __init__(self):
        self.nte = TeaState(0)
        self.states = [self.nte]
        self.heads = {}
        self._by_point = {}

    def _add_state(self, point):
        state = TeaState(len(self.states), point)
        self.states.append(state)
        self._by_point[(point.trace_id, point.tbb_index, point.offset)] = state
        return state

    def state_at(self, trace_id, tbb_index, offset):
        try:
            return self._by_point[(trace_id, tbb_index, offset)]
        except KeyError:
            raise TeaError(
                "no instruction state (T%d, #%d, +%d)"
                % (trace_id, tbb_index, offset)
            ) from None

    @property
    def n_states(self):
        return len(self.states)

    @property
    def n_transitions(self):
        return sum(len(state.transitions) for state in self.states)

    @property
    def n_traces(self):
        return len(self.heads)


def _block_instruction_addrs(program, block):
    addrs = []
    addr = block.start
    while True:
        instruction = program.instruction_at(addr)
        addrs.append(addr)
        if addr == block.end:
            return addrs
        addr = instruction.fallthrough


def build_instruction_tea(trace_set, program):
    """Algorithm 1 at instruction granularity."""
    tea = InstructionTEA()
    chains = {}  # (trace_id, tbb_index) -> [states]
    for trace in trace_set:
        for tbb in trace:
            addrs = _block_instruction_addrs(program, tbb.block)
            chain = []
            for offset, addr in enumerate(addrs):
                point = InstructionPoint(trace.trace_id, tbb.index, offset, addr)
                chain.append(tea._add_state(point))
            chains[(trace.trace_id, tbb.index)] = chain
            # Fall-through transitions within the block: the label is
            # the next instruction's PC.
            for state, successor, addr in zip(chain, chain[1:], addrs[1:]):
                state.transitions[addr] = successor
    for trace in trace_set:
        for tbb in trace:
            last = chains[(trace.trace_id, tbb.index)][-1]
            for label, successor_index in tbb.successors.items():
                target = chains[(trace.trace_id, successor_index)][0]
                existing = last.transitions.get(label)
                if existing is not None and existing is not target:
                    raise TeaError(
                        "nondeterministic instruction transition at %#x"
                        % label
                    )
                last.transitions[label] = target
        head = chains[(trace.trace_id, 0)][0]
        tea.heads[trace.entry] = head
    return tea


class InstructionTeaReplayer:
    """Replays block transitions by expanding them to instruction PCs."""

    def __init__(self, tea, program, config=None, cost=None, profile=None):
        self.tea = tea
        self.program = program
        self.config = config or ReplayConfig.global_local()
        self.cost = cost if cost is not None else CostModel()
        self.profile = profile
        self.stats = ReplayStats()
        self.state = tea.nte
        self.directory = make_directory(
            self.config.global_index, order=self.config.bptree_order
        )
        for entry, head in tea.heads.items():
            self.directory.insert(entry, head)
        self._addr_cache = {}

    def _addrs_for(self, block):
        found = self._addr_cache.get(block.key)
        if found is None:
            found = _block_instruction_addrs(self.program, block)
            self._addr_cache[block.key] = found
        return found

    def step_block(self, transition):
        """Expand one block transition into instruction-level steps."""
        stats = self.stats
        stats.blocks += 1
        stats.total_dbt += transition.instrs_dbt
        stats.total_pin += transition.instrs_pin
        block = transition.block
        addrs = self._addrs_for(block)

        # Coverage is per instruction now: the automaton may enter/leave
        # a trace mid-block (it cannot at block granularity, but the
        # accounting stays uniform and conservative here).
        covered = 0
        state = self.state
        # Step over the instructions *after* the first: the first
        # instruction's state is where the previous step left us.
        if state.tbb is not None:
            covered += 1
        for addr in addrs[1:]:
            state = self._step_label(state, addr)
            if state.tbb is not None:
                covered += 1
        if transition.next_start is not None:
            state = self._step_label(state, transition.next_start)
        self.state = state
        stats.covered_dbt += covered
        # REP expansion executes inside one instruction: attribute the
        # Pin-count surplus to that instruction's coverage state.
        surplus = transition.instrs_pin - transition.instrs_dbt
        stats.covered_pin += covered + (
            surplus if state.tbb is not None else 0
        )
        if self.profile is not None:
            self.profile.record_block(state, transition)
        return state

    def _step_label(self, state, label):
        params = self.cost.params
        explicit = state.transitions.get(label)
        if explicit is not None:
            self.cost.charge("callback", params.CALLBACK_FAST)
            self.cost.charge("transition", params.IN_TRACE_TRANSITION)
            self.stats.in_trace_hits += 1
            return explicit
        self.cost.charge("callback", params.CALLBACK_SLOW)
        if state.tbb is not None:
            self.stats.trace_exits += 1
        else:
            self.stats.nte_probes += 1
        found, units = self.directory.lookup(label)
        per_unit = getattr(params, DIRECTORY_COST_PARAM[self.directory.kind])
        self.cost.charge("directory", units * per_unit)
        if found is None:
            self.stats.directory_misses += 1
            return self.tea.nte
        self.stats.directory_hits += 1
        self.stats.trace_enters += 1
        self.cost.charge("enter", params.ENTER_TRACE)
        return found


def instruction_tea_bytes(tea, model):
    """Memory-model accounting for an instruction-granularity TEA."""
    return (
        model.nte_bytes
        + (tea.n_states - 1) * model.state_bytes
        + tea.n_transitions * model.transition_bytes
        + tea.n_traces
        * (model.tea_trace_descriptor_bytes + model.directory_entry_bytes)
    )
