"""The compiled flat-table replay engine.

:class:`~repro.core.replay.TeaReplayer` walks the automaton as an
object graph: per-transition :class:`~repro.cfg.builder.BlockTransition`
objects, per-state ``TeaState`` attribute chasing, per-state transition
dicts holding state *objects*.  That is fine for correctness work, but
Table 4 says the transition function is the replay hot path — so this
module lowers the automaton the way a real DBT lowers its dispatch
tables: into contiguous integer arrays, indexed by state id.

:class:`CompiledTea` holds the lowered automaton:

- ``labels`` / ``label_ids`` — the global PC-label intern table: every
  distinct transition label and head entry, as a sorted ``array('q')``
  plus the reverse ``{pc: label_index}`` dict;
- ``trans_offset`` / ``trans_labels`` / ``trans_dest`` — every state's
  transition list flattened into one successor array; state ``sid``
  owns the slice ``[trans_offset[sid], trans_offset[sid + 1])``, sorted
  by label (the exact order the TEAB codec stores);
- ``head_entries`` / ``head_sids`` — the packed NTE head registry, in
  the source automaton's registration order (directory *insertion
  order* shapes the probe-unit accounting — linked-list scan lengths,
  B+ tree node layout, hash clustering — so it must be preserved, not
  normalised);
- ``tbb_flag`` / ``instrs_dbt`` / ``instrs_pin`` — parallel per-state
  metadata: in-trace flag plus the state's *static* instruction counts
  (advisory; zero when lowered straight from a TEAB snapshot, which
  does not store them).

:class:`CompiledReplayer` drives those tables over **packed transition
batches** — flat ``(next_start, instrs_dbt, instrs_pin)`` int triples
(see :mod:`repro.pin.packed`) — instead of transition objects, with
accounting identical to ``TeaReplayer``: the same ``replay.*``
counters, the same CostModel charges in the same order, the same
local-cache/directory semantics on side exits.  The differential suite
in ``tests/test_compiled_engine.py`` pins that equivalence down.

``CompiledTea`` instances are immutable after construction and safe to
share read-only across threads (the replay service preloads one per
snapshot); each :class:`CompiledReplayer` owns its own mutable caches,
directory and stats, exactly like ``TeaReplayer``.
"""

from array import array

from repro.core.automaton import NTE_SID
from repro.core.directory import DIRECTORY_COST_PARAM, make_directory
from repro.core.replay import ReplayConfig, ReplayStats
from repro.dbt.cost import CostModel
from repro.obs import Observability
from repro.structures.lru import MISS, DirectMappedCache, LRUCache

#: ``next_start`` value marking an end-of-run transition in a packed
#: stream (``BlockTransition.next_start is None``).  Real PCs are
#: non-negative, so any negative value is terminal.
END_OF_RUN = -1


class CompiledTea:
    """A TEA lowered into contiguous integer tables (see module doc)."""

    __slots__ = ("n_states", "labels", "label_ids", "tbb_flag",
                 "trans_offset", "trans_labels", "trans_dest",
                 "head_entries", "head_sids", "_head_map",
                 "instrs_dbt", "instrs_pin", "_succ")

    def __init__(self, n_states, tbb_flag, trans_offset, trans_labels,
                 trans_dest, head_entries, head_sids,
                 instrs_dbt=None, instrs_pin=None):
        self.n_states = n_states
        self.tbb_flag = bytes(tbb_flag)
        self.trans_offset = array("q", trans_offset)
        self.trans_labels = array("q", trans_labels)
        self.trans_dest = array("q", trans_dest)
        self.head_entries = array("q", head_entries)
        self.head_sids = array("q", head_sids)
        self.instrs_dbt = array(
            "q", instrs_dbt if instrs_dbt is not None else [0] * n_states
        )
        self.instrs_pin = array(
            "q", instrs_pin if instrs_pin is not None else [0] * n_states
        )
        self._head_map = dict(zip(self.head_entries, self.head_sids))
        # Global PC intern table: every label seen anywhere in the
        # automaton (transitions + heads), sorted, deduplicated.
        distinct = sorted(set(self.trans_labels) | set(self.head_entries))
        self.labels = array("q", distinct)
        self.label_ids = {pc: lid for lid, pc in enumerate(distinct)}
        self._succ = None
        self._validate()

    def _validate(self):
        """Constructor-time structural gate.

        Thin wrapper over the verifier's table checks
        (:func:`repro.verify.rules_compiled.structural_diagnostics`):
        every finding carries rule id ``TEA030``, and the raised
        :class:`~repro.errors.VerificationError` is still a
        ``ValueError``, preserving the historical contract.  Ordering
        (per-state label sortedness) is *not* enforced here — the
        replayer tolerates unsorted runs — only by the full TEA030
        rule in a verification pass.
        """
        from repro.errors import VerificationError
        from repro.verify.rules_compiled import structural_diagnostics

        diagnostics = list(structural_diagnostics(self))
        if diagnostics:
            raise VerificationError(
                "malformed compiled TEA tables: %s"
                % diagnostics[0].message,
                diagnostics=diagnostics,
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_buffers(cls, n_states, tbb_flag, trans_offset, trans_labels,
                     trans_dest, head_entries, head_sids, labels=None,
                     instrs_dbt=None, instrs_pin=None, validate=True):
        """Adopt already-lowered tables without copying them.

        Unlike ``__init__`` (which copies every sequence into a fresh
        ``array('q')``), the int64 buffers are taken as-is — typically
        ``memoryview.cast('q')`` views straight into an ``mmap``'ed
        TEAB v2 snapshot, so N processes mapping the same file share
        one read-only copy of the tables.  The views keep their backing
        buffer alive for the compiled automaton's lifetime.  ``labels``
        may pass the snapshot's interned PC pool (sorted distinct
        labels + head entries) to skip rebuilding it.

        ``validate=False`` skips the TEA030 structural gate; only pass
        it when the bytes were already certified (the v2 section scan,
        rule TEA024, proves the same CSR invariants).
        """
        self = object.__new__(cls)
        self.n_states = n_states
        self.tbb_flag = bytes(tbb_flag)
        self.trans_offset = trans_offset
        self.trans_labels = trans_labels
        self.trans_dest = trans_dest
        self.head_entries = head_entries
        self.head_sids = head_sids
        self.instrs_dbt = (instrs_dbt if instrs_dbt is not None
                           else array("q", bytes(8 * n_states)))
        self.instrs_pin = (instrs_pin if instrs_pin is not None
                           else array("q", bytes(8 * n_states)))
        self._head_map = dict(zip(head_entries, head_sids))
        if labels is None:
            labels = array(
                "q", sorted(set(trans_labels) | set(head_entries))
            )
        self.labels = labels
        self.label_ids = {pc: lid for lid, pc in enumerate(labels)}
        self._succ = None
        if validate:
            self._validate()
        return self

    @classmethod
    def from_tea(cls, tea):
        """Lower a built :class:`~repro.core.automaton.TEA`."""
        n_states = tea.n_states
        tbb_flag = bytearray(n_states)
        instrs_dbt = array("q", [0] * n_states)
        instrs_pin = array("q", [0] * n_states)
        trans_offset = array("q", [0] * (n_states + 1))
        trans_labels = array("q")
        trans_dest = array("q")
        for state in tea.states:
            sid = state.sid
            for label, destination in sorted(state.transitions.items()):
                trans_labels.append(label)
                trans_dest.append(destination.sid)
            trans_offset[sid + 1] = len(trans_labels)
            if state.tbb is not None:
                tbb_flag[sid] = 1
                n_instrs = state.tbb.block.n_instrs
                instrs_dbt[sid] = n_instrs
                instrs_pin[sid] = n_instrs
        # Registration order, NOT sorted: the replayer inserts heads
        # into its lookup directory in this order, and probe-unit
        # accounting (list scans, tree shape, hash clustering) depends
        # on it.  A TEAB snapshot stores heads sorted by entry — and the
        # object TEA loaded from that snapshot carries the same sorted
        # dict order, so the engines still agree there.
        head_entries = array("q")
        head_sids = array("q")
        for entry, head in tea.heads.items():
            head_entries.append(entry)
            head_sids.append(head.sid)
        return cls(n_states, tbb_flag, trans_offset, trans_labels,
                   trans_dest, head_entries, head_sids,
                   instrs_dbt=instrs_dbt, instrs_pin=instrs_pin)

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------

    @property
    def n_transitions(self):
        return len(self.trans_labels)

    @property
    def n_heads(self):
        return len(self.head_entries)

    @property
    def n_labels(self):
        return len(self.labels)

    def successor_maps(self):
        """Per-state ``{next_pc: dest_sid}`` dispatch dicts, by sid.

        Built lazily from the canonical flat arrays and cached on the
        compiled automaton, so every replayer sharing it (the service
        worker pool) reuses one set of read-only dicts.  States with no
        transitions share a single empty dict.
        """
        maps = self._succ
        if maps is None:
            offsets = self.trans_offset
            trans_labels = self.trans_labels
            trans_dest = self.trans_dest
            empty = {}
            maps = []
            for sid in range(self.n_states):
                low, high = offsets[sid], offsets[sid + 1]
                if low == high:
                    maps.append(empty)
                else:
                    maps.append(dict(zip(trans_labels[low:high],
                                         trans_dest[low:high])))
            self._succ = maps
        return maps

    def head_sid(self, entry):
        """The head state id registered at ``entry``, or ``None``."""
        return self._head_map.get(entry)

    def next_sid(self, sid, label):
        """Pure transition function over the tables (mirrors
        :meth:`~repro.core.automaton.TEA.next_state`)."""
        destination = self.successor_maps()[sid].get(label)
        if destination is not None:
            return destination
        head = self.head_sid(label)
        return head if head is not None else NTE_SID

    def structurally_equal(self, other):
        """True when both lowerings encode the same automaton *shape*.

        The per-state instruction metadata is deliberately excluded:
        TEAB snapshots do not store it, so a snapshot-compiled automaton
        carries zeros where a ``from_tea`` lowering carries real counts.
        Heads are compared as a mapping — their array *order* is
        directory-insertion provenance, not automaton shape.
        """
        return (
            self.n_states == other.n_states
            and self.tbb_flag == other.tbb_flag
            and self.trans_offset == other.trans_offset
            and self.trans_labels == other.trans_labels
            and self.trans_dest == other.trans_dest
            and self._head_map == other._head_map
            and self.labels == other.labels
        )

    def describe(self):
        """JSON-able structural summary (mirrors TEA interrogation)."""
        return {
            "states": self.n_states,
            "in_trace_states": sum(self.tbb_flag),
            "transitions": self.n_transitions,
            "heads": self.n_heads,
            "labels": self.n_labels,
            "static_instrs_dbt": sum(self.instrs_dbt),
            "static_instrs_pin": sum(self.instrs_pin),
        }

    def __repr__(self):
        return "<CompiledTea states=%d transitions=%d heads=%d labels=%d>" % (
            self.n_states, self.n_transitions, self.n_heads, self.n_labels,
        )


class CompiledReplayer:
    """Drives a :class:`CompiledTea` over packed transition batches.

    The API mirrors :class:`~repro.core.replay.TeaReplayer` — same
    constructor knobs, same ``stats``/``cost``/``directory``/``snapshot``
    surface — except the current state is the integer :attr:`sid` and
    :meth:`run` consumes packed int triples rather than transition
    objects (:func:`repro.pin.packed.pack_transitions` produces them).

    Directory and local-cache values are integer state ids, so the slow
    path allocates nothing per event.
    """

    def __init__(self, compiled, config=None, cost=None, obs=None):
        self.compiled = compiled
        self.config = config or ReplayConfig.global_local()
        self.cost = cost if cost is not None else CostModel()
        self.obs = obs if obs is not None else Observability()
        self.stats = ReplayStats(metrics=self.obs.metrics)
        self.sid = NTE_SID
        self.directory = make_directory(
            self.config.global_index, order=self.config.bptree_order
        )
        for entry, head_sid in zip(compiled.head_entries,
                                   compiled.head_sids):
            self.directory.insert(entry, head_sid)
        self._caches = {}
        self._succ = compiled.successor_maps()
        # Pre-bound per-state dispatch (one dict.get per sid) saves an
        # attribute lookup on every hot-path transition.
        self._succ_get = [mapping.get for mapping in self._succ]

    # ------------------------------------------------------------------

    def register_trace(self, entry, head_sid):
        """Make a newly known trace findable (parity with TeaReplayer)."""
        self.directory.insert(entry, head_sid)

    # ------------------------------------------------------------------

    def run(self, packed):
        """Consume one packed batch; returns the final state id.

        ``packed`` is any flat int sequence of ``(next_start,
        instrs_dbt, instrs_pin)`` triples (``array('q')`` from the
        packed-stream encoder, or a plain list).  A negative
        ``next_start`` (:data:`END_OF_RUN`) accounts the block but takes
        no transition, exactly like a ``next_start=None`` object.

        Accounting matches :meth:`TeaReplayer.run` with *every* charge
        deferred to the batch boundary — the object engine defers only
        the hot-path charges and applies cache/directory/enter charges
        per event, but every replay charge constant is an integral
        float, so summing them in a different association is still
        bit-exact (exact double arithmetic below 2**53).  One more
        deliberate difference: block/instruction totals are summed at C
        speed up front, so if an exception escapes mid-batch the whole
        batch's totals are still flushed (batch-atomic, vs. the object
        engine's partial-progress flush) — the automaton walk itself
        cannot raise, so this only shows under injected faults.
        """
        length = len(packed)
        if length % 3:
            raise ValueError(
                "packed batch length %d is not a multiple of 3" % length
            )
        counters = self.stats._counters
        cost = self.cost
        params = cost.params
        succ_get = self._succ_get
        tbb_flag = self.compiled.tbb_flag
        sid = self.sid

        # Slow-path collaborators, hoisted out of the walk loop.
        config = self.config
        use_cache = config.local_cache
        cache_size = config.cache_size
        is_lru = config.cache_kind != "direct"
        cache_ctor = LRUCache if is_lru else DirectMappedCache
        caches = self._caches
        caches_get = caches.get
        lookup = self.directory.lookup
        per_unit = getattr(params, DIRECTORY_COST_PARAM[self.directory.kind])

        blocks = length // 3
        # The per-lane work is done at C speed: one boxed int per block
        # in the walk loop (the next PC), totals via sum() over the
        # instruction lanes.  Coverage is total minus the instructions
        # of out-of-trace blocks, accumulated only on the (rare) NTE
        # path — all integer arithmetic, so the counters are exact.
        starts = list(packed[0::3])
        total_dbt = sum(packed[1::3])
        total_pin = sum(packed[2::3])
        uncovered_dbt = 0
        uncovered_pin = 0
        fast_hits = 0
        trace_exits = 0
        nte_probes = 0
        cache_hits = 0
        cache_misses = 0
        cache_inserts = 0
        directory_hits = 0
        directory_misses = 0
        directory_units = 0

        try:
            for index, next_start in enumerate(starts):
                if tbb_flag[sid]:
                    if next_start >= 0:
                        destination = succ_get[sid](next_start)
                        if destination is not None:
                            fast_hits += 1
                            sid = destination
                            continue
                        # Side exit: local cache, then directory.  The
                        # LRU probe is inlined (dict get + move_to_end)
                        # — the cache object's own hit/miss counters are
                        # still maintained so snapshot() gauges match.
                        trace_exits += 1
                        cache = None
                        if use_cache:
                            cache = caches_get(sid)
                            if cache is None:
                                cache = cache_ctor(cache_size)
                                caches[sid] = cache
                            if is_lru:
                                entries = cache._entries
                                found = entries.get(next_start, MISS)
                                if found is not MISS:
                                    entries.move_to_end(next_start)
                                    cache.hits += 1
                                    cache_hits += 1
                                    sid = found
                                    continue
                                cache.misses += 1
                            else:
                                found = cache.probe(next_start)
                                if found is not MISS:
                                    cache_hits += 1
                                    sid = found
                                    continue
                            cache_misses += 1
                        found, units = lookup(next_start)
                        directory_units += units
                        if found is None:
                            directory_misses += 1
                            sid = NTE_SID
                        else:
                            directory_hits += 1
                            sid = found
                            if cache is not None:
                                cache.insert(next_start, found)
                                cache_inserts += 1
                else:
                    base = 3 * index
                    uncovered_dbt += packed[base + 1]
                    uncovered_pin += packed[base + 2]
                    if next_start >= 0:
                        nte_probes += 1
                        found, units = lookup(next_start)
                        directory_units += units
                        if found is None:
                            directory_misses += 1
                            sid = NTE_SID
                        else:
                            directory_hits += 1
                            sid = found
        finally:
            # Batch-boundary flush: counters first, then every deferred
            # cycle charge (see the docstring for why batching the
            # slow-path charges is still bit-exact).
            self.sid = sid
            counters["blocks"].value += blocks
            counters["total_dbt"].value += total_dbt
            counters["total_pin"].value += total_pin
            counters["covered_dbt"].value += total_dbt - uncovered_dbt
            counters["covered_pin"].value += total_pin - uncovered_pin
            counters["in_trace_hits"].value += fast_hits
            counters["trace_exits"].value += trace_exits
            counters["nte_probes"].value += nte_probes
            counters["cache_hits"].value += cache_hits
            counters["cache_misses"].value += cache_misses
            counters["directory_hits"].value += directory_hits
            counters["directory_misses"].value += directory_misses
            counters["trace_enters"].value += cache_hits + directory_hits
            if fast_hits:
                cost.charge("callback", fast_hits * params.CALLBACK_FAST)
                cost.charge("transition",
                            fast_hits * params.IN_TRACE_TRANSITION)
            slow_calls = trace_exits + nte_probes
            if slow_calls:
                cost.charge("callback", slow_calls * params.CALLBACK_SLOW)
            if cache_hits or cache_misses or cache_inserts:
                cost.charge(
                    "cache",
                    cache_hits * params.CACHE_HIT
                    + cache_misses * params.CACHE_MISS
                    + cache_inserts * params.CACHE_INSERT,
                )
            if trace_exits + nte_probes > cache_hits:
                # At least one directory lookup happened.
                cost.charge("directory", directory_units * per_unit)
            if directory_hits:
                cost.charge("enter", directory_hits * params.ENTER_TRACE)
            self.obs.emit(
                "replay.batch",
                blocks=blocks,
                in_trace_hits=fast_hits,
                trace_exits=trace_exits,
                nte_probes=nte_probes,
            )
        return sid

    # ------------------------------------------------------------------

    def coverage(self, pin_counting=True):
        return self.stats.coverage(pin_counting=pin_counting)

    def snapshot(self):
        """Observability snapshot (same gauges as TeaReplayer, plus the
        ``replay.engine`` marker)."""
        metrics = self.obs.metrics
        directory = self.directory
        metrics.set_gauge("replay.engine", "compiled")
        metrics.set_gauge("replay.config", self.config.describe())
        metrics.set_gauge("replay.directory.kind", directory.kind)
        metrics.set_gauge("replay.directory.size", len(directory))
        metrics.set_gauge("replay.directory.probes", directory.probes)
        metrics.set_gauge("replay.directory.units", directory.units)
        metrics.set_gauge("replay.local_caches", len(self._caches))
        metrics.set_gauge(
            "replay.local_cache_hits",
            sum(cache.hits for cache in self._caches.values()),
        )
        metrics.set_gauge(
            "replay.local_cache_misses",
            sum(cache.misses for cache in self._caches.values()),
        )
        snap = self.obs.snapshot()
        snap["cost"] = {
            "cycles": self.cost.cycles,
            "breakdown": dict(self.cost.breakdown),
        }
        return snap

    def reset(self, clear_caches=True):
        """Return to NTE; by default also drop per-state caches and
        zero the directory probe/unit counters (see
        :meth:`TeaReplayer.reset`)."""
        self.sid = NTE_SID
        if clear_caches:
            self._caches.clear()
            self.directory.reset_counters()
