"""Persisting TEA (trace shape) and profile information.

"Storing trace shape and profiling information for reuse in future
executions" is the paper's third listed use.  A TEA file is the trace-set
document (the shape — the automaton is rebuilt deterministically from it
with Algorithm 1) plus optional profile counters keyed by
``(trace_id, tbb_index)`` so they survive state-id renumbering.
"""

import json

from repro.core.builder import build_tea
from repro.core.profile import TeaProfile
from repro.errors import SerializationError
from repro.traces.serialization import trace_set_from_json, trace_set_to_json
from repro.util import atomic_write_json

FORMAT_VERSION = 1


def tea_to_json(trace_set, tea=None, profile=None):
    """Serialize trace shape (+ optional profile) to a JSON-able dict."""
    document = {
        "version": FORMAT_VERSION,
        "traces": trace_set_to_json(trace_set),
    }
    if profile is not None:
        if tea is None:
            raise SerializationError("profile serialization needs the TEA")
        counts = []
        for state in tea.states:
            if state.tbb is None:
                continue
            executed = profile.state_counts.get(state.sid, 0)
            if executed:
                counts.append(
                    [state.tbb.trace_id, state.tbb.index, executed]
                )
        document["profile"] = {
            "state_counts": counts,
            "trace_enters": sorted(profile.trace_enters.items()),
            "trace_exits": sorted(profile.trace_exits.items()),
            "trace_head_executions": sorted(
                profile.trace_head_executions.items()
            ),
        }
    return document


def tea_from_json(document, block_index, link_traces=False):
    """Rebuild ``(trace_set, tea, profile_or_None)`` from a TEA document."""
    try:
        version = document["version"]
        if version != FORMAT_VERSION:
            raise SerializationError("unsupported TEA format v%s" % version)
        trace_set = trace_set_from_json(document["traces"], block_index)
        tea = build_tea(trace_set, link_traces=link_traces)
        payload = document.get("profile")
    except (KeyError, TypeError) as error:
        raise SerializationError("malformed TEA document: %s" % error) from None
    profile = None
    if payload is not None:
        profile = TeaProfile()
        by_key = {}
        for trace in trace_set:
            for tbb in trace:
                by_key[(tbb.trace_id, tbb.index)] = tea.state_for(tbb)
        for trace_id, index, executed in payload["state_counts"]:
            state = by_key.get((trace_id, index))
            if state is None:
                raise SerializationError(
                    "profile refers to unknown TBB (T%s, #%s)" % (trace_id, index)
                )
            profile.state_counts[state.sid] = executed
        for name in ("trace_enters", "trace_exits", "trace_head_executions"):
            counters = getattr(profile, name)
            for trace_id, value in payload.get(name, ()):
                counters[int(trace_id)] = value
    return trace_set, tea, profile


def save_tea(path, trace_set, tea=None, profile=None):
    """Write a TEA document to ``path`` atomically.

    A crash mid-write can never leave a truncated, unloadable file:
    the document lands in a temp file that is renamed over ``path``
    only once fully written (:mod:`repro.util.fsio`).
    """
    atomic_write_json(path, tea_to_json(trace_set, tea=tea, profile=profile))


def load_tea(path, block_index, link_traces=False):
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SerializationError("cannot read %s: %s" % (path, error)) from None
    return tea_from_json(document, block_index, link_traces=link_traces)
