"""Profile information attached to TEA states.

One of TEA's selling points is collecting *accurate* profile data for
traces without generating trace code: because each TBB has its own state,
duplicated copies of a block (``$$T1.next`` vs ``$$T2.next``) get separate
counters — "the ability to label duplicate instructions differently for
every copy of it in the running program" (Section 2).

:class:`TeaProfile` keeps per-state execution counts, per-edge counts and
per-trace enter/exit counts; trace exit *ratios* feed the phase-detection
extension (:mod:`repro.analysis.phases`).
"""


class TeaProfile:
    """Execution counters keyed by TEA state ids."""

    def __init__(self):
        self.state_counts = {}
        self.state_instructions = {}
        self.edge_counts = {}
        self.trace_enters = {}
        self.trace_exits = {}
        self.trace_head_executions = {}

    # ------------------------------------------------------------------
    # recording (called by the replayer)
    # ------------------------------------------------------------------

    def record_block(self, state, transition):
        """The block just executed while the automaton was in ``state``."""
        sid = state.sid
        self.state_counts[sid] = self.state_counts.get(sid, 0) + 1
        self.state_instructions[sid] = (
            self.state_instructions.get(sid, 0) + transition.instrs_dbt
        )
        tbb = state.tbb
        if tbb is not None and tbb.index == 0:
            trace_id = tbb.trace_id
            self.trace_head_executions[trace_id] = (
                self.trace_head_executions.get(trace_id, 0) + 1
            )

    def record_edge(self, source, destination):
        key = (source.sid, destination.sid)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + 1
        source_trace = source.trace_id
        destination_trace = destination.trace_id
        if source_trace != destination_trace:
            if destination_trace is not None:
                self.trace_enters[destination_trace] = (
                    self.trace_enters.get(destination_trace, 0) + 1
                )
            if source_trace is not None:
                self.trace_exits[source_trace] = (
                    self.trace_exits.get(source_trace, 0) + 1
                )

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------

    def count_for(self, state):
        return self.state_counts.get(state.sid, 0)

    def exit_ratio(self, trace_id):
        """Side exits per head execution — Wimmer-style stability signal.

        A hot, stable trace loops through its head many times per exit
        (ratio near 0); a trace constantly falling out has ratio near 1.
        """
        heads = self.trace_head_executions.get(trace_id, 0)
        exits = self.trace_exits.get(trace_id, 0)
        if heads == 0:
            return 1.0 if exits else 0.0
        return min(exits / heads, 1.0)

    def hottest_states(self, limit=10):
        """``(sid, count)`` pairs, hottest first."""
        ranked = sorted(self.state_counts.items(), key=lambda item: -item[1])
        return ranked[:limit]

    def merge(self, other):
        """Accumulate another run's profile into this one."""
        for attribute in (
            "state_counts",
            "state_instructions",
            "trace_enters",
            "trace_exits",
            "trace_head_executions",
        ):
            mine = getattr(self, attribute)
            for key, value in getattr(other, attribute).items():
                mine[key] = mine.get(key, 0) + value
        for key, value in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + value

    def __repr__(self):
        return "<TeaProfile %d states, %d edges>" % (
            len(self.state_counts),
            len(self.edge_counts),
        )
