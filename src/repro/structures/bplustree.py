"""A B+ tree over integer keys.

This is the "global B+ tree" of Section 4.2: the TEA transition function
searches it for a trace whose start address matches the next program
counter.  The implementation is a textbook order-``b`` B+ tree:

- all values live in leaves; internal nodes hold routing keys only;
- leaves are chained for range iteration;
- insertion splits full nodes upward; deletion borrows from or merges
  with siblings and collapses the root when it empties.

Search reports the number of nodes visited so the replayer's cost model
can charge probe work proportional to the actual descent (this is what
makes the Table 4 "Global" columns emergent rather than assumed).
"""

import bisect

DEFAULT_ORDER = 16

#: Internal miss sentinel: lets one root-to-leaf descent distinguish "key
#: absent" from "key present with a stored ``None`` value".
_MISS = object()


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf):
        self.keys = []
        self.children = []  # internal nodes only
        self.values = []    # leaves only
        self.next_leaf = None
        self.is_leaf = is_leaf


class BPlusTree:
    """Mapping from integer keys to arbitrary values, B+ tree backed.

    ``order`` is the maximum number of keys per node (>= 3).
    """

    def __init__(self, order=DEFAULT_ORDER):
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0
        self.height = 1

    def __len__(self):
        return self._size

    def __contains__(self, key):
        return self._search(key)[0] is not _MISS

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _descend(self, key):
        """Return the node path from root to the leaf that may hold ``key``."""
        path = [self._root]
        node = self._root
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
            path.append(node)
        return path

    def _search(self, key):
        """One descent; returns ``(value_or__MISS, nodes_visited)``."""
        node = self._root
        visited = 1
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
            visited += 1
        position = bisect.bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            return node.values[position], visited
        return _MISS, visited

    def search(self, key):
        """Return ``(value, nodes_visited)``; value is None on a miss.

        ``nodes_visited`` counts every node touched during the descent —
        the cost-model unit for a global-directory probe.  A stored
        ``None`` is indistinguishable from a miss here; use :meth:`get`
        with a sentinel default or ``in`` when that matters.
        """
        value, visited = self._search(key)
        return (None, visited) if value is _MISS else (value, visited)

    def get(self, key, default=None):
        value, _ = self._search(key)
        return default if value is _MISS else value

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key, value):
        """Insert or replace ``key``."""
        path = self._descend(key)
        leaf = path[-1]
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            leaf.values[position] = value
            return
        leaf.keys.insert(position, key)
        leaf.values.insert(position, value)
        self._size += 1
        if len(leaf.keys) > self.order:
            self._split(path)

    def _split(self, path):
        node = path[-1]
        parents = path[:-1]
        while len(node.keys) > self.order:
            middle = len(node.keys) // 2
            right = _Node(is_leaf=node.is_leaf)
            if node.is_leaf:
                right.keys = node.keys[middle:]
                right.values = node.values[middle:]
                node.keys = node.keys[:middle]
                node.values = node.values[:middle]
                right.next_leaf = node.next_leaf
                node.next_leaf = right
                separator = right.keys[0]
            else:
                separator = node.keys[middle]
                right.keys = node.keys[middle + 1:]
                right.children = node.children[middle + 1:]
                node.keys = node.keys[:middle]
                node.children = node.children[:middle + 1]
            if parents:
                parent = parents.pop()
                position = bisect.bisect_right(parent.keys, separator)
                parent.keys.insert(position, separator)
                parent.children.insert(position + 1, right)
                node = parent
            else:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, right]
                self._root = new_root
                self.height += 1
                return

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, key):
        """Remove ``key``; returns True when it was present."""
        path = []
        positions = []
        node = self._root
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            path.append(node)
            positions.append(position)
            node = node.children[position]
        position = bisect.bisect_left(node.keys, key)
        if position >= len(node.keys) or node.keys[position] != key:
            return False
        node.keys.pop(position)
        node.values.pop(position)
        self._size -= 1
        self._rebalance(node, path, positions)
        return True

    @property
    def _min_keys(self):
        return self.order // 2

    def _rebalance(self, node, path, positions):
        while path and len(node.keys) < self._min_keys:
            parent = path[-1]
            index = positions[-1]
            left = parent.children[index - 1] if index > 0 else None
            right = parent.children[index + 1] if index + 1 < len(parent.children) else None

            if left is not None and len(left.keys) > self._min_keys:
                self._borrow_from_left(parent, index, left, node)
                return
            if right is not None and len(right.keys) > self._min_keys:
                self._borrow_from_right(parent, index, node, right)
                return
            if left is not None:
                self._merge(parent, index - 1, left, node)
            else:
                self._merge(parent, index, node, right)
            node = parent
            path.pop()
            positions.pop()

        if not self._root.is_leaf and len(self._root.keys) == 0:
            self._root = self._root.children[0]
            self.height -= 1

    @staticmethod
    def _borrow_from_left(parent, index, left, node):
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[index - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(parent, index, node, right):
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            node.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            node.children.append(right.children.pop(0))

    @staticmethod
    def _merge(parent, left_index, left, right):
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------
    # iteration / introspection
    # ------------------------------------------------------------------

    def _first_leaf(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self):
        """Yield ``(key, value)`` in ascending key order."""
        leaf = self._first_leaf()
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, value
            leaf = leaf.next_leaf

    def keys(self):
        for key, _ in self.items():
            yield key

    def range(self, low, high):
        """Yield ``(key, value)`` with ``low <= key < high``."""
        node = self._root
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, low)
            node = node.children[position]
        while node is not None:
            for key, value in zip(node.keys, node.values):
                if key < low:
                    continue
                if key >= high:
                    return
                yield key, value
            node = node.next_leaf

    def node_count(self):
        """Total node count (for memory accounting and invariants)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def check_invariants(self):
        """Raise AssertionError when any B+ tree invariant is violated.

        Used by the property-based tests: keys sorted within nodes, node
        occupancy bounds, uniform leaf depth, leaf chain consistency, and
        routing keys separating subtrees correctly.
        """
        leaf_depths = set()

        def walk(node, depth, low, high):
            assert node.keys == sorted(node.keys), "unsorted keys"
            for key in node.keys:
                assert (low is None or key >= low) and (
                    high is None or key < high
                ), "routing violation"
            if node is not self._root:
                minimum = 1 if node.is_leaf else self._min_keys
                # Leaves may legitimately run down to 1 key only when the
                # tree has a single leaf; otherwise they obey min occupancy.
                if self._root.is_leaf:
                    minimum = 0
                assert len(node.keys) >= min(minimum, self._min_keys) or (
                    node.is_leaf and self._size < self._min_keys
                ), "underfull node"
            assert len(node.keys) <= self.order, "overfull node"
            if node.is_leaf:
                leaf_depths.add(depth)
                assert len(node.values) == len(node.keys)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [low] + list(node.keys) + [high]
                for i, child in enumerate(node.children):
                    walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self._root, 1, None, None)
        assert len(leaf_depths) == 1, "leaves at differing depths"
        chained = list(self.keys())
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size, "size mismatch"

    def __repr__(self):
        return "<BPlusTree order=%d size=%d height=%d>" % (
            self.order,
            self._size,
            self.height,
        )
