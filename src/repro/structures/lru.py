"""Small local caches for the TEA transition function.

The paper's "local cache" speeds up transitions from one trace to another:
each trace-exit state remembers where recent exits landed, avoiding the
global directory probe.  Two geometries are provided — the ablation bench
``bench_ablation_cache_size`` sweeps both:

- :class:`LRUCache`: fully associative with least-recently-used eviction
  (``collections.OrderedDict`` based).
- :class:`DirectMappedCache`: a fixed array indexed by a key hash, one
  entry per set — closest to what an inlined code stub would implement.

Both caches share a ``probe``/``lookup`` pair: ``probe`` returns the
:data:`MISS` sentinel on a failed probe so a stored ``None`` value is
unambiguous (the replayer's trace-exit path relies on this to charge
``CACHE_MISS`` only on actual misses); ``lookup`` keeps the old
``None``-on-miss convenience API.
"""

from collections import OrderedDict


class _Miss:
    """Singleton sentinel distinguishing a failed probe from stored None."""

    __slots__ = ()

    def __repr__(self):
        return "<cache MISS>"

    def __bool__(self):
        return False


#: Returned by ``probe`` when the key is absent.  Falsy and private to
#: probing: never stored as a value.
MISS = _Miss()


class LRUCache:
    """Fully associative LRU cache of bounded capacity."""

    __slots__ = ("capacity", "_entries", "hits", "misses")

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, key):
        """Return the cached value, or :data:`MISS` when absent."""
        entries = self._entries
        value = entries.get(key, MISS)
        if value is MISS:
            self.misses += 1
            return MISS
        entries.move_to_end(key)
        self.hits += 1
        return value

    def lookup(self, key):
        """Return the cached value or ``None``; updates recency and stats.

        Ambiguous for stored ``None`` values — use :meth:`probe` when
        that distinction matters.
        """
        value = self.probe(key)
        return None if value is MISS else value

    def insert(self, key, value):
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def invalidate(self, key):
        self._entries.pop(key, None)

    def reset_stats(self):
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    def clear(self):
        """Drop every entry *and* the probe stats.

        A cleared cache is a new cache: replayer resets reuse cleared
        caches across runs, and stale hit/miss counts would leak into
        the next run's observability snapshot.
        """
        self._entries.clear()
        self.reset_stats()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries


class DirectMappedCache:
    """Direct-mapped cache: ``slots`` entries, conflict misses evict."""

    __slots__ = ("slots", "_keys", "_values", "hits", "misses")

    def __init__(self, slots):
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.slots = slots
        self._keys = [None] * slots
        self._values = [None] * slots
        self.hits = 0
        self.misses = 0

    def probe(self, key):
        """Return the cached value, or :data:`MISS` when absent."""
        index = key % self.slots
        if self._keys[index] == key:
            self.hits += 1
            return self._values[index]
        self.misses += 1
        return MISS

    def lookup(self, key):
        """``None``-on-miss convenience; see :meth:`LRUCache.lookup`."""
        value = self.probe(key)
        return None if value is MISS else value

    def insert(self, key, value):
        index = key % self.slots
        self._keys[index] = key
        self._values[index] = value

    def invalidate(self, key):
        index = key % self.slots
        if self._keys[index] == key:
            self._keys[index] = None
            self._values[index] = None

    def reset_stats(self):
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    def clear(self):
        """Drop every entry *and* the probe stats (see LRUCache.clear)."""
        self._keys = [None] * self.slots
        self._values = [None] * self.slots
        self.reset_stats()

    def __len__(self):
        return sum(1 for key in self._keys if key is not None)

    def __contains__(self, key):
        return self._keys[key % self.slots] == key
