"""Auxiliary data structures for the TEA transition function.

Section 4.2 of the paper attributes most of TEA's overhead to the
transition lookup and evaluates three helpers: keeping traces in a plain
linked list, a global B+ tree keyed by trace start address, and a small
per-state local cache.  This package provides all three as standalone,
fully tested structures:

- :class:`~repro.structures.bplustree.BPlusTree` — insert/search/delete/
  range over integer keys, with probe-cost accounting (nodes visited).
- :class:`~repro.structures.lru.LRUCache` and
  :class:`~repro.structures.lru.DirectMappedCache` — the local caches.
"""

from repro.structures.bplustree import BPlusTree
from repro.structures.lru import DirectMappedCache, LRUCache

__all__ = ["BPlusTree", "LRUCache", "DirectMappedCache"]
