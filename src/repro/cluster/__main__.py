"""CLI for the sharded replay cluster.

Examples::

    # Boot a whole local cluster: 3 subprocess workers + the router
    # (SIGTERM drains the router, then the workers):
    python -m repro.cluster up --store .tea_store --workers 3 \\
        --port 7400

    # Run only the router over already-running workers:
    python -m repro.cluster serve --port 7400 \\
        --worker 127.0.0.1:7401 --worker 127.0.0.1:7402

    # Where would each snapshot land?  (pure ring math, no network):
    python -m repro.cluster plan --store .tea_store \\
        --worker w1 --worker w2 --worker w3 --replicas 2

    # Live topology of a running router:
    python -m repro.cluster status --port 7400

The router speaks the ordinary service protocol, so
``python -m repro.service call --port 7400 replay ...`` works
unchanged against a cluster.
"""

import argparse
import asyncio
import json
import signal
import sys

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.testing import WorkerProcess
from repro.errors import ReproError
from repro.service.client import ServiceClient
from repro.store import AutomatonStore, DEFAULT_STORE_DIR
from repro.util import atomic_write_text


def _parse_worker(spec):
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            "worker %r is not host:port (e.g. 127.0.0.1:7401)" % spec
        )
    return (host, int(port))


def _router_config(args):
    return ClusterConfig(
        host=args.host, port=args.port, replicas=args.replicas,
        vnodes=args.vnodes, max_queue=args.max_queue,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        health_interval=args.health_interval, fail_after=args.fail_after,
        forward_timeout=args.forward_timeout,
        drain_timeout=args.drain_timeout,
    )


def _run_router(workers, args, on_started=None, on_drained=None):
    """Start a router over ``workers`` and serve until SIGTERM/SIGINT."""
    router = ClusterRouter(workers, config=_router_config(args))
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        loop.run_until_complete(router.start())
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, router.initiate_shutdown)
        host, port = router.address
        print("repro.cluster router on %s:%d (%d workers, %d healthy, "
              "replicas=%d)"
              % (host, port, len(router._workers),
                 len(router.healthy_workers), args.replicas),
              flush=True)
        if args.port_file:
            atomic_write_text(args.port_file, "%d\n" % port)
        if on_started is not None:
            on_started(router)
        loop.run_until_complete(router.serve_forever())
        print("repro.cluster router drained cleanly", flush=True)
        if on_drained is not None:
            on_drained()
    finally:
        loop.close()
    return 0


def _cmd_serve(args):
    """Router only; workers are already running elsewhere."""
    workers = [_parse_worker(spec) for spec in args.worker or ()]
    if not workers:
        raise ReproError("serve needs at least one --worker host:port")
    return _run_router(workers, args)


def _cmd_up(args):
    """Boot N subprocess workers plus the router, in one command."""
    store = AutomatonStore(args.store)
    if not len(store):
        raise ReproError(
            "store %s holds no snapshots; build one with "
            "'python -m repro.service build'" % store.root
        )
    workers = [
        WorkerProcess(args.store, args.workdir or ".", name="worker%d" % i,
                      host=args.host, threads=args.worker_threads,
                      debug=args.debug).spawn()
        for i in range(args.workers)
    ]
    try:
        for worker in workers:
            worker.wait_ready(timeout=args.start_timeout)
        print("workers: %s"
              % ", ".join("%s:%d (pid %d)" % (w.host, w.port, w.pid)
                          for w in workers),
              flush=True)

        def _stop_workers():
            for worker in workers:
                worker.terminate()
            print("repro.cluster workers drained", flush=True)

        return _run_router(
            [(w.host, w.port, w.pid) for w in workers], args,
            on_drained=_stop_workers,
        )
    except BaseException:
        for worker in workers:
            try:
                worker.kill()
            except Exception:  # noqa: BLE001 — teardown on failure
                pass
        raise


def _cmd_plan(args):
    """Offline routing table: snapshot digest -> replica set."""
    names = list(args.worker or ())
    if not names:
        raise ReproError("plan needs at least one --worker name")
    ring = HashRing(names, vnodes=args.vnodes)
    store = AutomatonStore(args.store)
    plan = {
        "replicas": args.replicas,
        "ring": ring.describe(),
        "snapshots": [
            {
                "key": key,
                "label": (store.describe(key).get("meta") or {}).get("label"),
                "workers": ring.nodes_for(key, args.replicas),
            }
            for key in sorted(store.keys())
        ],
    }
    print(json.dumps(plan, indent=2, sort_keys=True))
    return 0


def _cmd_status(args):
    """Live cluster-info + stats from a running router."""
    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        info = client.call("cluster-info")
        stats = client.call("stats")
    print(json.dumps({"cluster": info, "stats": stats},
                     indent=2, sort_keys=True))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="route replay requests across sharded workers",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_router_options(sub):
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=0,
                         help="router TCP port (0 = pick a free one)")
        sub.add_argument("--replicas", type=int, default=2,
                         help="replica fan-out per snapshot (default 2)")
        sub.add_argument("--vnodes", type=int, default=DEFAULT_VNODES)
        sub.add_argument("--max-queue", type=int, default=8,
                         help="per-worker in-flight cap before shedding")
        sub.add_argument("--quota-rate", type=float, default=0.0,
                         help="per-client tokens per second")
        sub.add_argument("--quota-burst", type=int, default=0,
                         help="per-client burst (0 disables quotas)")
        sub.add_argument("--health-interval", type=float, default=0.5)
        sub.add_argument("--fail-after", type=int, default=2,
                         help="failed probes before ring eviction")
        sub.add_argument("--forward-timeout", type=float, default=120.0)
        sub.add_argument("--drain-timeout", type=float, default=30.0)
        sub.add_argument("--port-file",
                         help="write the bound router port here")

    serve = commands.add_parser(
        "serve", help="run the router over existing workers"
    )
    add_router_options(serve)
    serve.add_argument("--worker", action="append",
                       help="worker address host:port (repeatable)")

    up = commands.add_parser(
        "up", help="boot N subprocess workers plus the router"
    )
    add_router_options(up)
    up.add_argument("--store", default=DEFAULT_STORE_DIR,
                    help="shared snapshot store (default %(default)s)")
    up.add_argument("--workers", type=int, default=3,
                    help="worker process count (default 3)")
    up.add_argument("--worker-threads", type=int, default=2,
                    help="replay threads per worker (default 2)")
    up.add_argument("--workdir",
                    help="directory for worker port files (default .)")
    up.add_argument("--start-timeout", type=float, default=240.0)
    up.add_argument("--debug", action="store_true",
                    help="enable worker debug RPCs (sleep) — tests only")

    plan = commands.add_parser(
        "plan", help="print the offline snapshot -> worker routing table"
    )
    plan.add_argument("--store", default=DEFAULT_STORE_DIR)
    plan.add_argument("--worker", action="append",
                      help="worker name for the ring (repeatable)")
    plan.add_argument("--replicas", type=int, default=2)
    plan.add_argument("--vnodes", type=int, default=DEFAULT_VNODES)

    status = commands.add_parser(
        "status", help="query a running router's topology and stats"
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, required=True)
    status.add_argument("--timeout", type=float, default=60.0)

    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "up":
            return _cmd_up(args)
        if args.command == "plan":
            return _cmd_plan(args)
        return _cmd_status(args)
    except (ReproError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
