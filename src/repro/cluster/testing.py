"""Harnesses for driving a replay cluster from tests and scripts.

Three layers, by weight:

- :class:`RouterThread` — a :class:`~repro.cluster.ClusterRouter` on a
  background event-loop thread (the cluster twin of
  :class:`~repro.service.testing.ServiceThread`);
- :class:`ClusterThreadHarness` — router plus N in-process
  :class:`~repro.service.testing.ServiceThread` workers.  Everything
  lives in the test process: fast startup, full introspection.  Used
  by the backpressure/quota/retry tests (which need ``debug`` sleep
  workers), but workers cannot be SIGKILLed;
- :class:`ClusterProcessHarness` — router in-process, workers as real
  ``python -m repro.service serve`` subprocesses over a shared store.
  This is the chaos layer: :meth:`WorkerProcess.kill` delivers a real
  ``SIGKILL`` mid-replay, and :meth:`WorkerProcess.restart` brings the
  worker back on its old port so ring rejoin can be observed.

Every bind in this module is ephemeral (``port=0``); the only
apparent exception, a worker restart, reuses the port the kernel
already assigned to that worker.
"""

import os
import subprocess
import sys
import tempfile
import threading

import asyncio

from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.service.client import ServiceClient
from repro.service.testing import ServiceThread, ephemeral_config, wait_for_port_file


class RouterThread:
    """Run a :class:`ClusterRouter` on a background event loop thread."""

    def __init__(self, workers=(), config=None, obs=None,
                 start_timeout=120.0):
        self.router = ClusterRouter(workers, config=config, obs=obs)
        self.start_timeout = start_timeout
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    def start(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="tea-router", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.router.start(), self._loop
        )
        try:
            future.result(timeout=self.start_timeout)
        except BaseException:
            self._shutdown_loop()
            raise
        return self

    def stop(self):
        """Graceful drain, then tear the loop down."""
        if self._loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.router.stop(), self._loop
            ).result(timeout=self.start_timeout)
        finally:
            self._shutdown_loop()

    def run(self, coro, timeout=60.0):
        """Run a coroutine on the router's loop (test hook)."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout=timeout)

    def _run_loop(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _shutdown_loop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    @property
    def address(self):
        return self.router.address

    @property
    def host(self):
        return self.address[0]

    @property
    def port(self):
        return self.address[1]

    def client(self, **kwargs):
        """A fresh blocking client aimed at the router."""
        host, port = self.address
        return ServiceClient(host, port, **kwargs)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class ClusterThreadHarness:
    """Router + N in-process worker threads over one shared store."""

    def __init__(self, store, n_workers=3, worker_config=None,
                 router_config=None, obs=None, debug=False):
        self.store = store
        self.n_workers = int(n_workers)
        self._worker_config_kwargs = dict(worker_config or {})
        if debug:
            self._worker_config_kwargs["debug"] = True
        self.router_config = router_config or ClusterConfig()
        self.obs = obs
        self.workers = []
        self.router_thread = None

    def start(self):
        try:
            for _ in range(self.n_workers):
                worker = ServiceThread(
                    self.store,
                    config=ephemeral_config(**self._worker_config_kwargs),
                )
                worker.start()
                self.workers.append(worker)
            self.router_thread = RouterThread(
                [worker.address for worker in self.workers],
                config=self.router_config, obs=self.obs,
            )
            self.router_thread.start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self):
        if self.router_thread is not None:
            try:
                self.router_thread.stop()
            finally:
                self.router_thread = None
        for worker in self.workers:
            try:
                worker.stop()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        self.workers = []

    @property
    def router(self):
        return self.router_thread.router

    def client(self, **kwargs):
        return self.router_thread.client(**kwargs)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class WorkerProcess:
    """One ``python -m repro.service serve`` subprocess worker.

    The worker binds ``port=0`` and publishes its resolved port via
    ``--port-file``; :meth:`restart` reuses that same port so the
    router sees the identical worker id rejoin the ring.
    """

    def __init__(self, store_dir, workdir, name="worker", host="127.0.0.1",
                 threads=2, debug=False, request_timeout=120.0):
        self.store_dir = str(store_dir)
        self.workdir = str(workdir)
        self.name = name
        self.host = host
        self.threads = int(threads)
        self.debug = debug
        self.request_timeout = float(request_timeout)
        self.port = None
        self.process = None

    @property
    def pid(self):
        return self.process.pid if self.process is not None else None

    @property
    def address(self):
        return (self.host, self.port)

    def _port_file(self):
        return os.path.join(self.workdir, "%s.port" % self.name)

    def start(self, timeout=240.0):
        """Spawn the worker; blocks until it publishes its port."""
        self.spawn()
        return self.wait_ready(timeout=timeout)

    def spawn(self):
        """Spawn without waiting (callers may start several in parallel
        and :meth:`wait_ready` each afterwards)."""
        port_file = self._port_file()
        if os.path.exists(port_file):
            os.unlink(port_file)
        command = [
            sys.executable, "-m", "repro.service", "serve",
            "--store", self.store_dir,
            "--host", self.host,
            "--port", str(self.port or 0),
            "--workers", str(self.threads),
            "--timeout", str(self.request_timeout),
            "--port-file", port_file,
        ]
        if self.debug:
            command.append("--debug")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            path for path in (src_root, env.get("PYTHONPATH")) if path
        )
        self.process = subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        return self

    def wait_ready(self, timeout=240.0):
        self.port = wait_for_port_file(self._port_file(), timeout=timeout)
        return self

    def kill(self):
        """SIGKILL — the chaos move.  No drain, no goodbye."""
        if self.process is not None:
            self.process.kill()
            self.process.wait(timeout=30.0)

    def terminate(self, timeout=60.0):
        """SIGTERM and wait: the worker drains gracefully."""
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            self.process.wait(timeout=timeout)

    def restart(self, timeout=240.0):
        """Relaunch on the *same* port after a kill (ring rejoin)."""
        if self.port is None:
            raise RuntimeError("worker was never started")
        self.spawn()
        return self.wait_ready(timeout=timeout)

    def client(self, **kwargs):
        return ServiceClient(self.host, self.port, **kwargs)


class ClusterProcessHarness:
    """Router in-process + N subprocess workers over a shared store."""

    def __init__(self, store_dir, n_workers=3, router_config=None,
                 obs=None, workdir=None, worker_threads=2, debug=False,
                 start_timeout=240.0):
        self.store_dir = str(store_dir)
        self.n_workers = int(n_workers)
        self.router_config = router_config or ClusterConfig()
        self.obs = obs
        self.worker_threads = worker_threads
        self.debug = debug
        self.start_timeout = start_timeout
        self._tempdir = None
        self.workdir = workdir
        self.workers = []
        self.router_thread = None

    def start(self):
        if self.workdir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-cluster-")
            self.workdir = self._tempdir.name
        try:
            self.workers = [
                WorkerProcess(
                    self.store_dir, self.workdir, name="worker%d" % index,
                    threads=self.worker_threads, debug=self.debug,
                ).spawn()
                for index in range(self.n_workers)
            ]
            for worker in self.workers:
                worker.wait_ready(timeout=self.start_timeout)
            self.router_thread = RouterThread(
                [(w.host, w.port, w.pid) for w in self.workers],
                config=self.router_config, obs=self.obs,
                start_timeout=self.start_timeout,
            )
            self.router_thread.start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self):
        if self.router_thread is not None:
            try:
                self.router_thread.stop()
            finally:
                self.router_thread = None
        for worker in self.workers:
            try:
                worker.terminate()
            except Exception:  # noqa: BLE001 — best-effort teardown
                worker.kill()
        self.workers = []
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
            self.workdir = None

    @property
    def router(self):
        return self.router_thread.router

    def client(self, **kwargs):
        return self.router_thread.client(**kwargs)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
