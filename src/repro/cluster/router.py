"""The sharded replay cluster router.

A :class:`ClusterRouter` is the front-end of a multi-process replay
cluster: it speaks the same length-prefixed JSON protocol as
:class:`~repro.service.server.TeaService` (any
:class:`~repro.service.client.ServiceClient` works unchanged), but
instead of replaying locally it consistent-hashes each request's
snapshot digest onto a ring of worker processes — each one an ordinary
``repro.service`` server over a shared
:class:`~repro.store.AutomatonStore` — and forwards the request.

Routing and load policy
-----------------------
- **affinity** — requests naming a snapshot route to the
  ``replicas`` workers owning that digest on the
  :class:`~repro.cluster.ring.HashRing` (label/benchmark aliases are
  resolved to content keys first, so either name routes identically);
  among the replica set the least-loaded worker wins, which fans a hot
  snapshot out across its replicas instead of melting the primary;
- **backpressure** — each worker has a bounded in-flight queue
  (``max_queue``); when every eligible worker is full the request is
  *shed* with a structured ``overloaded`` error instead of queueing
  unboundedly — clients with a
  :class:`~repro.service.client.RetryPolicy` back off and retry;
- **quotas** — an optional per-client token bucket (``quota_burst``
  tokens, refilled at ``quota_rate``/s, keyed by the ``client`` request
  param or the peer address) rejects over-quota requests with
  ``quota-exceeded``;
- **health** — a background loop pings every worker; consecutive
  failures evict the worker from the ring (requests re-route to the
  surviving replicas) and a later successful probe rejoins it.  A
  connection failure during a forward evicts immediately and the
  request is retried on the next candidate, so a SIGKILL'd worker
  never silently eats a request;
- **drain** — shutdown closes the listener, answers every accepted
  request, and only then stops (same discipline as the single-node
  service).

All replay-family RPCs are read-only and idempotent, which is what
makes transparent re-forwarding after a worker death safe.

Everything is metered through ``repro.obs``: ``router.*`` counters
(forwards, sheds, quota rejections, retries, evictions, rejoins),
per-worker queue-depth gauges, and per-method latency histograms
(p50/p95/p99 via :class:`~repro.obs.Histogram`), exported by the
``stats`` RPC.
"""

import asyncio
import time

from repro import __version__
from repro.errors import ReproError
from repro.obs import Observability
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.service.protocol import (
    E_INTERNAL,
    E_OVERLOADED,
    E_PARSE,
    E_QUOTA,
    E_SHUTDOWN,
    E_TIMEOUT,
    E_TOO_LARGE,
    E_UNAVAILABLE,
    MAX_PAYLOAD_DEFAULT,
    PayloadTooLarge,
    ProtocolError,
    encode_frame,
    error_reply,
    read_frame,
)


class ClusterSetupError(ReproError):
    """The router could not start (no workers, bad addresses)."""


class _WorkerFailure(ReproError):
    """Internal: a forward attempt failed at the transport layer."""


class _Overloaded(ReproError):
    """Internal: every eligible worker queue is full (mapped to
    ``overloaded``)."""


class _Unavailable(ReproError):
    """Internal: no healthy worker can take the request (mapped to
    ``worker-unavailable``)."""


class ClusterConfig:
    """Operational knobs for one :class:`ClusterRouter` instance."""

    __slots__ = ("host", "port", "replicas", "vnodes", "max_queue",
                 "quota_rate", "quota_burst", "health_interval",
                 "health_timeout", "fail_after", "connect_timeout",
                 "forward_timeout", "max_payload", "drain_timeout")

    def __init__(self, host="127.0.0.1", port=0, replicas=2,
                 vnodes=DEFAULT_VNODES, max_queue=8, quota_rate=0.0,
                 quota_burst=0, health_interval=0.5, health_timeout=5.0,
                 fail_after=2, connect_timeout=5.0, forward_timeout=120.0,
                 max_payload=MAX_PAYLOAD_DEFAULT, drain_timeout=30.0):
        self.host = host
        self.port = port
        #: Replica fan-out: how many distinct ring owners may serve a
        #: given snapshot digest.
        self.replicas = max(1, int(replicas))
        self.vnodes = int(vnodes)
        #: Bounded per-worker queue: in-flight forwards above this shed
        #: with ``overloaded``.  0 sheds everything (used by tests).
        self.max_queue = int(max_queue)
        #: Token-bucket quota per client id; ``quota_burst <= 0``
        #: disables quotas, ``quota_rate`` may be 0 (no refill).
        self.quota_rate = float(quota_rate)
        self.quota_burst = int(quota_burst)
        self.health_interval = float(health_interval)
        self.health_timeout = float(health_timeout)
        #: Consecutive failed health probes before ring eviction.
        self.fail_after = max(1, int(fail_after))
        self.connect_timeout = float(connect_timeout)
        self.forward_timeout = float(forward_timeout)
        self.max_payload = max_payload
        self.drain_timeout = float(drain_timeout)


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate``/s refill."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate, burst, now):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def take(self, now):
        """Consume one token; False when the bucket is empty."""
        if now > self.stamp:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class WorkerHandle:
    """One worker in the router's registry (ring member or evictee)."""

    __slots__ = ("worker_id", "host", "port", "pid", "healthy",
                 "failures", "inflight", "forwards", "ever_joined")

    def __init__(self, host, port, pid=None):
        self.host = str(host)
        self.port = int(port)
        self.worker_id = "%s:%d" % (self.host, self.port)
        self.pid = pid
        self.healthy = False
        self.failures = 0
        self.inflight = 0
        self.forwards = 0
        self.ever_joined = False

    def describe(self):
        return {
            "id": self.worker_id,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "healthy": self.healthy,
            "failures": self.failures,
            "inflight": self.inflight,
            "forwards": self.forwards,
        }

    def __repr__(self):
        state = "up" if self.healthy else "down"
        return "<WorkerHandle %s %s inflight=%d>" % (
            self.worker_id, state, self.inflight)


#: Methods the router answers itself; everything else is forwarded to
#: a worker (including methods the router has never heard of — the
#: worker's own ``unknown-method`` error passes straight through).
LOCAL_METHODS = ("ping", "stats", "cluster-info", "worker-register",
                 "worker-deregister", "reload", "shutdown")

#: Most buckets to retain before pruning the stalest client entries.
_MAX_BUCKETS = 4096


class ClusterRouter:
    """The consistent-hash router over ``repro.service`` workers.

    Parameters
    ----------
    workers:
        Initial worker addresses: ``(host, port)`` or ``(host, port,
        pid)`` tuples.  Workers may also join later via the
        ``worker-register`` RPC.
    config:
        :class:`ClusterConfig`; defaults are fine for tests.
    obs:
        Optional shared :class:`~repro.obs.Observability`.
    """

    def __init__(self, workers=(), config=None, obs=None):
        self.config = config or ClusterConfig()
        self.obs = obs if obs is not None else Observability()
        self._workers = {}          # worker_id -> WorkerHandle
        self._ring = HashRing(vnodes=self.config.vnodes)
        self._aliases = {}          # label/benchmark -> content key
        self._buckets = {}          # client id -> TokenBucket
        self._server = None
        self._inflight = set()
        self._health_task = None
        self._draining = False
        self._stopped = None
        self._started_at = None
        for spec in workers:
            host, port = spec[0], spec[1]
            pid = spec[2] if len(spec) > 2 else None
            self._add_worker(host, port, pid=pid)
        metrics = self.obs.metrics
        self._requests = metrics.counter("router.requests")
        self._ok = metrics.counter("router.ok")
        self._errors = metrics.counter("router.errors")
        self._forwards = metrics.counter("router.forwards")
        self._shed = metrics.counter("router.shed")
        self._quota_rejected = metrics.counter("router.quota_rejected")
        self._retries = metrics.counter("router.retries")
        self._evictions = metrics.counter("router.evictions")
        self._rejoins = metrics.counter("router.rejoins")
        self._registers = metrics.counter("router.registers")
        self._leaves = metrics.counter("router.leaves")
        self._worker_errors = metrics.counter("router.worker_errors")
        self._bytes_in = metrics.counter("router.bytes_in")
        self._bytes_out = metrics.counter("router.bytes_out")
        self._connections = metrics.counter("router.connections")
        self._update_worker_gauges()

    # ------------------------------------------------------------------
    # registry / ring plumbing
    # ------------------------------------------------------------------

    def _add_worker(self, host, port, pid=None):
        worker = WorkerHandle(host, port, pid=pid)
        if worker.worker_id in self._workers:
            return self._workers[worker.worker_id]
        self._workers[worker.worker_id] = worker
        return worker

    def _update_worker_gauges(self):
        metrics = self.obs.metrics
        metrics.set_gauge("router.workers", len(self._workers))
        metrics.set_gauge(
            "router.workers_healthy",
            sum(1 for worker in self._workers.values() if worker.healthy),
        )
        for worker in self._workers.values():
            metrics.set_gauge("router.queue_depth.%s" % worker.worker_id,
                              worker.inflight)

    def _mark_up(self, worker):
        worker.failures = 0
        if not worker.healthy:
            worker.healthy = True
            if self._ring.add(worker.worker_id) and worker.ever_joined:
                self._rejoins.inc()
            worker.ever_joined = True
        self._update_worker_gauges()

    def _mark_down(self, worker, hard=False):
        """One more strike against ``worker``; evict when over the bar.

        ``hard`` is a transport-level failure observed while forwarding
        (connection refused, reset mid-frame) — definitive evidence, so
        the worker leaves the ring immediately rather than after
        ``fail_after`` probes.
        """
        worker.failures += 1
        if worker.healthy and (hard
                               or worker.failures >= self.config.fail_after):
            worker.healthy = False
            if self._ring.remove(worker.worker_id):
                self._evictions.inc()
        self._update_worker_gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        """Probe the initial workers, bind the listener, start probing."""
        if not self._workers:
            raise ClusterSetupError(
                "a cluster router needs at least one worker address "
                "(or a worker-register call once it is up)"
            )
        self._stopped = asyncio.Event()
        await asyncio.gather(
            *(self._probe(worker) for worker in self._workers.values())
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._started_at = time.monotonic()
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        sockets = self._server.sockets
        return sockets[0].getsockname()[:2]

    @property
    def healthy_workers(self):
        return [w for w in self._workers.values() if w.healthy]

    async def serve_forever(self):
        await self._stopped.wait()

    def initiate_shutdown(self):
        """Begin a graceful drain from the event loop (signal-safe)."""
        if not self._draining:
            asyncio.ensure_future(self.stop())

    async def stop(self):
        """Graceful drain: refuse new work, finish in-flight, close."""
        if self._server is None:
            return
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
        self._server.close()
        await self._server.wait_closed()
        pending = [task for task in self._inflight if not task.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for task in still_pending:
                task.cancel()
        self._stopped.set()

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------

    async def _health_loop(self):
        try:
            while not self._draining:
                await asyncio.sleep(self.config.health_interval)
                await asyncio.gather(
                    *(self._probe(worker)
                      for worker in list(self._workers.values()))
                )
        except asyncio.CancelledError:
            pass

    async def _probe(self, worker):
        """One health ping; updates ring membership either way."""
        try:
            reply = await self._exchange(
                worker, "ping", {}, timeout=self.config.health_timeout
            )
            alive = bool(reply.get("ok"))
        except (_WorkerFailure, asyncio.TimeoutError):
            alive = False
        if alive:
            self._mark_up(worker)
            if not self._aliases:
                await self._refresh_aliases(worker)
        else:
            self._mark_down(worker)

    async def _refresh_aliases(self, worker):
        """Pull the snapshot listing once to resolve labels to digests."""
        try:
            reply = await self._exchange(
                worker, "snapshots", {}, timeout=self.config.health_timeout
            )
        except (_WorkerFailure, asyncio.TimeoutError):
            return
        if not reply.get("ok"):
            return
        aliases = {}
        for info in (reply.get("result") or {}).get("snapshots", ()):
            key = info.get("key")
            if not key:
                continue
            for alias in (info.get("label"), info.get("benchmark")):
                if alias:
                    aliases.setdefault(str(alias), key)
        self._aliases = aliases

    # ------------------------------------------------------------------
    # connection / request plumbing (mirrors TeaService)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self._connections.inc()
        peer = writer.get_extra_info("peername")
        peer_id = "%s" % (peer[0] if peer else "unknown",)
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, self.config.max_payload,
                        counter=self._bytes_in,
                    )
                except PayloadTooLarge as error:
                    await self._send(writer, write_lock,
                                     error_reply(None, E_TOO_LARGE, error))
                    self._errors.inc()
                    break
                except ProtocolError as error:
                    await self._send(writer, write_lock,
                                     error_reply(None, E_PARSE, error))
                    self._errors.inc()
                    break
                if request is None:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock, peer_id)
                )
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer, lock, reply):
        data = encode_frame(reply)
        async with lock:
            writer.write(data)
            await writer.drain()
        self._bytes_out.inc(len(data))

    async def _serve_request(self, request, writer, write_lock, peer_id):
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        self._requests.inc()
        started = time.perf_counter()
        if not isinstance(params, dict):
            reply = error_reply(request_id, E_PARSE,
                                "params must be an object")
        elif self._draining:
            reply = error_reply(request_id, E_SHUTDOWN, "router is draining")
        elif method in LOCAL_METHODS:
            reply = await self._serve_local(method, params, request_id)
        else:
            reply = await self._route(method, params, request_id, peer_id)
        if reply.get("ok"):
            self._ok.inc()
        else:
            self._errors.inc()
        try:
            await self._send(writer, write_lock, reply)
        except (ConnectionError, OSError):
            pass
        elapsed = time.perf_counter() - started
        self.obs.metrics.histogram("router.latency.%s" % method).observe(
            elapsed)
        self.obs.metrics.counter("router.method.%s" % method).inc()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _admit(self, params, peer_id):
        """Token-bucket admission; returns None or an error code."""
        if self.config.quota_burst <= 0:
            return None
        client = str(params.get("client") or peer_id)
        now = time.monotonic()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= _MAX_BUCKETS:
                stalest = min(self._buckets, key=lambda c:
                              self._buckets[c].stamp)
                del self._buckets[stalest]
            bucket = self._buckets[client] = TokenBucket(
                self.config.quota_rate, self.config.quota_burst, now
            )
        if bucket.take(now):
            return None
        self._quota_rejected.inc()
        return E_QUOTA

    def _candidates(self, params, tried):
        """Eligible workers in preference order (affinity first)."""
        name = params.get("snapshot")
        if name is not None:
            key = self._aliases.get(str(name), str(name))
            ranked = self._ring.nodes_for(key, self.config.replicas)
            replica_set = [
                self._workers[node] for node in ranked
                if node in self._workers
                and self._workers[node].healthy
                and node not in tried
            ]
            if replica_set:
                return replica_set
        spread = [
            worker for worker in self._workers.values()
            if worker.healthy and worker.worker_id not in tried
        ]
        spread.sort(key=lambda worker: (worker.inflight, worker.worker_id))
        return spread

    async def _route(self, method, params, request_id, peer_id):
        """Admission + candidate selection + forward-with-retry."""
        code = self._admit(params, peer_id)
        if code is not None:
            return error_reply(
                request_id, code,
                "client %r is over its request quota (burst %d, %.3g/s); "
                "retry with backoff"
                % (str(params.get("client") or peer_id),
                   self.config.quota_burst, self.config.quota_rate),
            )
        tried = set()
        while True:
            candidates = self._candidates(params, tried)
            if not candidates:
                if tried:
                    return error_reply(
                        request_id, E_UNAVAILABLE,
                        "all %d candidate workers failed while forwarding "
                        "%r; retry with backoff" % (len(tried), method),
                    )
                return error_reply(
                    request_id, E_UNAVAILABLE,
                    "no healthy worker in the ring (of %d registered); "
                    "retry with backoff" % len(self._workers),
                )
            worker = min(candidates, key=lambda w: w.inflight)
            if worker.inflight >= self.config.max_queue:
                self._shed.inc()
                return error_reply(
                    request_id, E_OVERLOADED,
                    "every eligible worker queue is full "
                    "(%d candidates at depth >= %d); retry with backoff"
                    % (len(candidates), self.config.max_queue),
                )
            tried.add(worker.worker_id)
            worker.inflight += 1
            self.obs.metrics.set_gauge(
                "router.queue_depth.%s" % worker.worker_id, worker.inflight)
            try:
                reply = await self._exchange(
                    worker, method, params,
                    timeout=self.config.forward_timeout,
                )
            except asyncio.TimeoutError:
                self._worker_errors.inc()
                return error_reply(
                    request_id, E_TIMEOUT,
                    "worker %s exceeded the %.1fs forward timeout"
                    % (worker.worker_id, self.config.forward_timeout),
                )
            except _WorkerFailure:
                # Hard transport failure: evict now, retry the next
                # candidate.  Replay RPCs are idempotent reads, so
                # re-forwarding can never double-apply anything.
                self._worker_errors.inc()
                self._mark_down(worker, hard=True)
                self._retries.inc()
                continue
            finally:
                worker.inflight -= 1
                self.obs.metrics.set_gauge(
                    "router.queue_depth.%s" % worker.worker_id,
                    worker.inflight)
            worker.forwards += 1
            self._forwards.inc()
            self.obs.metrics.counter(
                "router.forward.%s" % worker.worker_id).inc()
            reply["id"] = request_id
            return reply

    async def _exchange(self, worker, method, params, timeout):
        """One request/response round-trip to ``worker`` on a fresh
        connection.

        Raises :class:`_WorkerFailure` on any transport-level problem
        and lets :class:`asyncio.TimeoutError` escape for the caller to
        classify (a slow worker is not a dead worker).
        """
        reader = writer = None
        try:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(worker.host, worker.port),
                    timeout=self.config.connect_timeout,
                )
            except asyncio.TimeoutError:
                raise _WorkerFailure(
                    "connect to %s timed out" % worker.worker_id) from None
            except (ConnectionError, OSError) as error:
                raise _WorkerFailure(
                    "connect to %s failed: %s" % (worker.worker_id, error)
                ) from None
            frame = encode_frame(
                {"id": 0, "method": method, "params": params})
            try:
                writer.write(frame)
                await writer.drain()
                reply = await asyncio.wait_for(
                    read_frame(reader, self.config.max_payload),
                    timeout=timeout,
                )
            except (ConnectionError, OSError, ProtocolError) as error:
                raise _WorkerFailure(
                    "worker %s dropped the connection: %s"
                    % (worker.worker_id, error)
                ) from None
            if reply is None:
                raise _WorkerFailure(
                    "worker %s closed the connection before replying"
                    % worker.worker_id
                )
            return reply
        finally:
            if writer is not None:
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    # ------------------------------------------------------------------
    # local RPCs
    # ------------------------------------------------------------------

    async def _serve_local(self, method, params, request_id):
        try:
            handler = getattr(self, "_rpc_%s" % method.replace("-", "_"))
            result = await handler(params)
            return {"id": request_id, "ok": True, "result": result}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — structured reply
            return error_reply(
                request_id, E_INTERNAL,
                "%s: %s" % (type(error).__name__, error),
            )

    async def _rpc_ping(self, params):
        return {
            "pong": True,
            "role": "router",
            "version": __version__,
            "workers": len(self._workers),
            "healthy": len(self.healthy_workers),
        }

    async def _rpc_cluster_info(self, params):
        return {
            "draining": self._draining,
            "replicas": self.config.replicas,
            "max_queue": self.config.max_queue,
            "quota": {"rate": self.config.quota_rate,
                      "burst": self.config.quota_burst},
            "workers": [
                self._workers[worker_id].describe()
                for worker_id in sorted(self._workers)
            ],
            "ring": self._ring.describe(),
            "aliases": len(self._aliases),
        }

    async def _rpc_worker_register(self, params):
        host = params.get("host", "127.0.0.1")
        port = params.get("port")
        if not isinstance(port, int) or not 0 < port < 65536:
            raise ValueError("'port' must be a TCP port number")
        worker = self._add_worker(host, port, pid=params.get("pid"))
        self._registers.inc()
        await self._probe(worker)
        return {"registered": worker.worker_id,
                "healthy": worker.healthy,
                "workers": len(self._workers)}

    async def _rpc_worker_deregister(self, params):
        host = params.get("host", "127.0.0.1")
        port = params.get("port")
        if not isinstance(port, int):
            raise ValueError("'port' must be a TCP port number")
        worker_id = "%s:%d" % (host, port)
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return {"removed": False, "workers": len(self._workers)}
        self._ring.remove(worker_id)
        self._leaves.inc()
        self._update_worker_gauges()
        return {"removed": True, "workers": len(self._workers)}

    async def _rpc_reload(self, params):
        """Broadcast a hot-reload to every healthy worker.

        Unlike replay traffic — routed to one affinity worker — a
        reload must reach the whole fleet, or retired snapshots would
        keep serving from the workers the swap missed.  The router
        forwards ``reload`` to each healthy worker, aggregates the
        per-worker outcomes, and then refreshes its label→digest alias
        map (a swapped label now resolves to the new content key).
        """
        workers = self.healthy_workers
        results = {}
        for worker in workers:
            try:
                reply = await self._exchange(
                    worker, "reload", params,
                    timeout=self.config.forward_timeout,
                )
            except (asyncio.TimeoutError, _WorkerFailure) as error:
                self._worker_errors.inc()
                results[worker.worker_id] = {"error": str(error)}
                continue
            if reply.get("ok"):
                results[worker.worker_id] = reply.get("result")
            else:
                results[worker.worker_id] = {
                    "error": (reply.get("error") or {}).get("message")
                }
        self._aliases = {}
        for worker in workers:
            await self._refresh_aliases(worker)
            if self._aliases:
                break
        return {"workers": results, "reached": len(results)}

    async def _rpc_stats(self, params):
        snapshot = self.obs.snapshot()
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        counters = snapshot["metrics"]["counters"]
        return {
            "uptime_seconds": uptime,
            "draining": self._draining,
            "workers": len(self._workers),
            "healthy": len(self.healthy_workers),
            "qps": (counters["router.forwards"] / uptime) if uptime else 0.0,
            "shed": counters["router.shed"],
            "quota_rejected": counters["router.quota_rejected"],
            "retries": counters["router.retries"],
            "evictions": counters["router.evictions"],
            "rejoins": counters["router.rejoins"],
            "registers": counters["router.registers"],
            "leaves": counters["router.leaves"],
            "metrics": snapshot["metrics"],
        }

    async def _rpc_shutdown(self, params):
        self.initiate_shutdown()
        return {"stopping": True}
