"""``repro.cluster`` — the sharded replay cluster.

A horizontal scaling layer over :mod:`repro.service`: a
consistent-hash router front-end fans replay requests out across N
worker processes, each an ordinary single-node replay server over a
shared snapshot store.

- :mod:`repro.cluster.ring` — :class:`HashRing`, the virtual-node
  consistent-hash ring (balance and minimal-remapping properties are
  pinned by the hypothesis suite in ``tests/test_cluster.py``);
- :mod:`repro.cluster.router` — :class:`ClusterRouter`, the asyncio
  front-end: replica fan-out, bounded per-worker queues with
  ``overloaded`` shedding, per-client token-bucket quotas, health
  probing with ring eviction/rejoin, and graceful drain;
- :mod:`repro.cluster.testing` — in-process and subprocess harnesses
  used by the chaos tests and the CI smoke script;
- ``python -m repro.cluster`` / ``repro tools cluster`` — serve a
  router, boot a whole cluster (``up``), or inspect routing (``plan``,
  ``status``).

Topology, routing rules, and failure semantics: docs/cluster.md.
"""

from repro.cluster.ring import DEFAULT_VNODES, HashRing, key_point, node_points
from repro.cluster.router import (
    ClusterConfig,
    ClusterRouter,
    ClusterSetupError,
    TokenBucket,
    WorkerHandle,
)

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "key_point",
    "node_points",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSetupError",
    "TokenBucket",
    "WorkerHandle",
]
