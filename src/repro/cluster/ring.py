"""Consistent-hash ring over snapshot content keys.

The cluster router places every worker at :data:`DEFAULT_VNODES`
pseudo-random points on a 64-bit hash circle and routes each snapshot
digest to the first worker point at or after the digest's own point
(clockwise).  Two properties make this the right structure for the
sharded replay cluster:

- **balance** — with enough virtual nodes per worker, each worker owns
  a near-equal fraction of the key space (``arc_shares`` measures the
  owned fraction exactly; the property suite bounds it);
- **minimal remapping** — adding a worker moves to it only the keys it
  now owns, and removing a worker moves only the keys it owned; every
  other key keeps its owner (asserted exactly, per key, by the
  hypothesis suite in ``tests/test_cluster.py``).

Hashing uses :func:`repro.store.stable_hash64` (a SHA-256 prefix), so
every router process — and the ``repro tools cluster plan`` CLI — maps
the same digest to the same worker regardless of Python hash
randomization.  Replica fan-out for hot snapshots is ``nodes_for(key,
n)``: the first ``n`` *distinct* workers clockwise from the key.
"""

from bisect import bisect_right

from repro.store import stable_hash64

#: Virtual nodes per worker.  128 points per worker keeps the maximum
#: owned arc within ~2x of the ideal share for 2-16 workers (bounded by
#: the deterministic balance tests).
DEFAULT_VNODES = 128

#: Hash-domain salts: a worker's ring points and a routed key can never
#: collide by construction.
_NODE_SALT = "ring-node"
_KEY_SALT = "ring-key"

#: The ring circumference (64-bit hash space).
RING_SPAN = 1 << 64


def key_point(key):
    """The ring position of a routed key (snapshot digest or alias)."""
    return stable_hash64(str(key), salt=_KEY_SALT)


def node_points(node, vnodes=DEFAULT_VNODES):
    """The ``vnodes`` ring positions claimed by ``node``."""
    return [
        stable_hash64("%s#%d" % (node, index), salt=_NODE_SALT)
        for index in range(vnodes)
    ]


class HashRing:
    """A consistent-hash ring mapping keys to member nodes.

    Nodes are opaque strings (the router uses ``host:port`` worker
    ids).  Membership changes rebuild the sorted point table — at
    cluster scale (tens of workers, hundreds of points each) a rebuild
    is microseconds and keeps lookups a single ``bisect``.
    """

    __slots__ = ("vnodes", "_nodes", "_points", "_hashes")

    def __init__(self, nodes=(), vnodes=DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes = set()
        self._points = []   # sorted [(hash, node)], ties broken by node
        self._hashes = []   # parallel list of hashes for bisect
        for node in nodes:
            self.add(node)

    # -- membership ---------------------------------------------------

    def add(self, node):
        """Add a node; returns False if it was already a member."""
        node = str(node)
        if node in self._nodes:
            return False
        self._nodes.add(node)
        self._rebuild()
        return True

    def remove(self, node):
        """Remove a node; returns False if it was not a member."""
        node = str(node)
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._rebuild()
        return True

    def _rebuild(self):
        points = []
        for node in self._nodes:
            for point in node_points(node, self.vnodes):
                points.append((point, node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @property
    def nodes(self):
        """Current members, sorted (a tuple; membership is a set)."""
        return tuple(sorted(self._nodes))

    def __contains__(self, node):
        return str(node) in self._nodes

    def __len__(self):
        return len(self._nodes)

    # -- lookups ------------------------------------------------------

    def node_for(self, key):
        """The owning node for ``key``; None on an empty ring."""
        if not self._points:
            return None
        index = bisect_right(self._hashes, key_point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def nodes_for(self, key, count=1):
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        This is the replica set for a snapshot digest: the primary
        first, then the successive fallbacks.  Returns fewer nodes when
        the ring has fewer members than ``count``.
        """
        if not self._points or count < 1:
            return []
        start = bisect_right(self._hashes, key_point(key))
        found = []
        seen = set()
        n_points = len(self._points)
        for offset in range(n_points):
            node = self._points[(start + offset) % n_points][1]
            if node not in seen:
                seen.add(node)
                found.append(node)
                if len(found) == count:
                    break
        return found

    # -- diagnostics --------------------------------------------------

    def arc_shares(self):
        """Exact fraction of the hash circle owned by each node.

        The share of a node is the summed length of the arcs ending at
        its points, divided by the circle.  ``sum(shares) == 1`` up to
        float rounding; the balance tests bound ``max(shares)`` and
        ``min(shares)`` against the ideal ``1 / len(ring)``.
        """
        if not self._points:
            return {}
        shares = {node: 0 for node in self._nodes}
        previous = self._points[-1][0] - RING_SPAN
        for point, node in self._points:
            shares[node] += point - previous
            previous = point
        return {node: owned / RING_SPAN for node, owned in shares.items()}

    def describe(self):
        """JSON-able summary for the ``cluster-info`` RPC and the CLI."""
        shares = self.arc_shares()
        return {
            "vnodes": self.vnodes,
            "nodes": [
                {"node": node, "share": shares[node]}
                for node in self.nodes
            ],
        }

    def __repr__(self):
        return "<HashRing %d nodes x %d vnodes>" % (len(self), self.vnodes)
