"""Content-addressed audit result cache.

Mirrors the harness :class:`~repro.harness.cache.ResultCache`
discipline — two-level hash-prefix sharding, atomic JSON writes,
corrupt entries count as misses — but keys on the *audit fingerprint*:
the artifact's content digest, the rule-catalog version
(:func:`repro.verify.catalog_version`), and the engine options that
change what a run means (disabled rules, strict mode, deep decode).

Because the catalog version hashes every registered rule's metadata,
adding or rewording a rule invalidates every cached result
automatically: the fleet re-audits exactly when the rules change, and
warm reruns over an unchanged store cost one digest per artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterable, Iterator, Optional

#: Bumped when the cached document layout changes.
AUDIT_CACHE_SCHEMA = 1


def audit_fingerprint(artifact_digest: str, catalog_version: str,
                      disabled: Iterable[str] = (),
                      strict: bool = False, deep: bool = True) -> str:
    """The cache key for one (artifact, catalog, options) triple."""
    payload = json.dumps({
        "schema": AUDIT_CACHE_SCHEMA,
        "artifact": artifact_digest,
        "catalog": catalog_version,
        "disabled": sorted(disabled),
        "strict": bool(strict),
        "deep": bool(deep),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def file_digest(path: Any) -> Optional[str]:
    """SHA-256 hex of a file's bytes, or ``None`` when unreadable."""
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return None


class AuditCache:
    """Disk-backed audit report cache under ``root``."""

    def __init__(self, root: Any, obs: Any = None) -> None:
        self.root = str(root)
        self.obs = obs

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Any]:
        """The cached report document, or ``None`` (corrupt = miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            self._count("audit.cache.misses")
            return None
        if (not isinstance(document, dict)
                or document.get("schema") != AUDIT_CACHE_SCHEMA
                or document.get("key") != key):
            self._count("audit.cache.misses")
            return None
        self._count("audit.cache.hits")
        return document.get("report")

    def put(self, key: str, report: Any) -> None:
        """Store one report document (atomic write)."""
        from repro.util.fsio import atomic_write_json

        atomic_write_json(self.path_for(key), {
            "schema": AUDIT_CACHE_SCHEMA,
            "key": key,
            "report": report,
        })
        self._count("audit.cache.writes")

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for filename in sorted(os.listdir(shard_dir)):
                if filename.endswith(".json"):
                    yield os.path.join(shard_dir, filename)

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
