"""AST concurrency analysis for the service stack (TEA08x substrate).

The replay service promises "zero dropped or wrong answers" while
serving from an asyncio event loop backed by a worker-thread pool.
Two whole classes of regression break that promise without failing any
functional test on a fast machine: blocking calls that sneak onto the
event loop, and lock-discipline violations (awaiting while holding a
``threading.Lock``, acquiring locks against the documented order,
mutating a process-shared cache without its lock).

:class:`ConcurrencyAnalysis` parses one module and derives:

- **blocking facts** — calls that perform file I/O, sleeps, process
  spawns or store access (``open``, ``time.sleep``, ``os.stat``,
  ``x.store.anything()``, a curated set of known-blocking repro
  helpers);
- a **blocking closure** — same-module functions/methods that reach a
  blocking fact through direct calls (``foo()``, ``self.foo()``);
  function *references* (e.g. ``run_in_executor(pool, self.preload)``)
  deliberately do not propagate — handing a blocking function to the
  executor is the sanctioned pattern;
- **coroutine findings** — blocking facts (direct or via the closure)
  inside ``async def`` bodies;
- **lock findings** — ``await`` under a ``threading.Lock``,
  ``asyncio.Lock`` acquired with a plain ``with``, ``threading.Lock``
  acquired with ``async with``, and nested acquisitions violating
  :data:`LOCK_ORDER`;
- **shared-cache findings** — module-level ``*_CACHE`` dict literals
  mutated in a function body outside any ``with <lock>:`` block.

A line containing ``# audit: ok-blocking`` suppresses blocking
findings anchored on it (the escape hatch for sanctioned exceptions).
The analysis is heuristic by design — it must be cheap enough to run
on every commit — and is calibrated to be finding-free on the repo's
own service/cluster/store tree (a property the test suite pins).
"""

from __future__ import annotations

import ast

#: Dotted call prefixes that always block the calling thread.
BLOCKING_MODULE_CALLS = frozenset({
    "time.sleep",
    "os.listdir", "os.scandir", "os.stat", "os.unlink", "os.remove",
    "os.replace", "os.rename", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.walk",
    "socket.create_connection", "socket.getaddrinfo", "socket.socket",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "shutil.copy", "shutil.copyfile", "shutil.copytree", "shutil.rmtree",
    "shutil.move",
})

#: Bare builtins that block.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Final attribute names known to block regardless of the receiver —
#: the repo's own I/O-heavy helpers (store access, snapshot mapping,
#: workload generation, atomic writes).
BLOCKING_KNOWN_NAMES = frozenset({
    "get_bytes", "put_bytes", "get_compiled", "map_compiled",
    "get_jit", "migrate", "put_minimized",
    "open_snapshot_mapping", "cached_mapping", "cached_compiled",
    "load_benchmark", "load_tea_binary", "dump_tea_binary",
    "atomic_write_bytes", "atomic_write_text", "atomic_write_json",
})

#: Receiver attribute names whose method calls hit the filesystem —
#: ``anything.store.method()`` goes through an ``AutomatonStore``.
BLOCKING_RECEIVERS = frozenset({"store"})

#: The documented lock-acquisition order (coarse to fine).  A lock may
#: be acquired while holding only locks that appear *earlier* here;
#: see docs/audit.md ("Lock discipline").
LOCK_ORDER = ("_PROCESS_LOCK", "_jit_lock", "_replay_memo_lock")

#: Suppression pragma: a line carrying this comment is exempt from
#: blocking-call findings.
PRAGMA = "audit: ok-blocking"


def _dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _blocking_reason(call):
    """Why this Call node blocks, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in BLOCKING_BUILTINS:
            return "builtin %s()" % func.id
        return None
    if not isinstance(func, ast.Attribute):
        return None
    dotted = _dotted_name(func)
    if dotted is not None:
        for prefix in BLOCKING_MODULE_CALLS:
            if dotted == prefix or dotted.endswith("." + prefix):
                return "%s()" % prefix
    if func.attr in BLOCKING_KNOWN_NAMES:
        return "%s() (known-blocking helper)" % func.attr
    receiver = func.value
    if (isinstance(receiver, ast.Attribute)
            and receiver.attr in BLOCKING_RECEIVERS):
        return ".%s.%s() (store access hits the filesystem)" % (
            receiver.attr, func.attr)
    return None


class _FunctionInfo:
    """One function/method: its AST, kind, and derived facts."""

    __slots__ = ("qualname", "node", "is_async", "blocking",
                 "calls", "cls")

    def __init__(self, qualname, node, is_async, cls=None):
        self.qualname = qualname
        self.node = node
        self.is_async = is_async
        self.cls = cls
        #: [(lineno, reason)] — direct blocking facts in this body.
        self.blocking = []
        #: Bare names of same-module callables invoked directly.
        self.calls = set()


def _own_statements(node):
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class Finding:
    """One concurrency finding: a check id, message and source line."""

    __slots__ = ("check", "message", "lineno")

    def __init__(self, check, message, lineno):
        self.check = check
        self.message = message
        self.lineno = lineno

    def __repr__(self):
        return "<Finding %s L%s %r>" % (self.check, self.lineno,
                                        self.message)


class ConcurrencyAnalysis:
    """Parse one module and expose the TEA08x analyses.

    ``source`` is the module text, ``filename`` a display handle.
    Raises ``SyntaxError`` when the module does not parse (callers
    surface that as its own finding).
    """

    def __init__(self, source, filename="<module>"):
        self.filename = filename
        self.module = ast.parse(source, filename=filename)
        self._suppressed = frozenset(
            lineno for lineno, line in enumerate(source.splitlines(), 1)
            if PRAGMA in line
        )
        self.functions = {}
        self.lock_kinds = {}
        self._index_module()
        self._collect_lock_kinds()
        self._collect_facts()
        self._closure = self._blocking_closure()

    # -- indexing ------------------------------------------------------

    def _index_module(self):
        for node in self.module.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, cls=None)
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        self._add_function(member, cls=node.name)

    def _add_function(self, node, cls):
        qualname = node.name if cls is None else "%s.%s" % (cls, node.name)
        info = _FunctionInfo(qualname, node,
                             isinstance(node, ast.AsyncFunctionDef),
                             cls=cls)
        # Same-name methods on different classes share the bare-name
        # call edge (self.foo() cannot be resolved without types); the
        # closure is a may-analysis, so over-approximating is correct.
        self.functions.setdefault(node.name, []).append(info)

    def _collect_lock_kinds(self):
        """Map lock variable names (bare or attribute) to their kind.

        Recognizes ``X = threading.Lock()`` / ``self.x = asyncio.Lock()``
        (also RLock) anywhere in the module.
        """
        for node in ast.walk(self.module):
            if not isinstance(node, ast.Assign):
                continue
            dotted = _dotted_name(node.value.func) if isinstance(
                node.value, ast.Call) else None
            if dotted in ("threading.Lock", "threading.RLock"):
                kind = "threading"
            elif dotted in ("asyncio.Lock",):
                kind = "asyncio"
            else:
                continue
            for target in node.targets:
                name = (target.id if isinstance(target, ast.Name)
                        else target.attr if isinstance(target, ast.Attribute)
                        else None)
                if name:
                    self.lock_kinds[name] = kind

    def _collect_facts(self):
        for infos in self.functions.values():
            for info in infos:
                for child in _own_statements(info.node):
                    if not isinstance(child, ast.Call):
                        continue
                    reason = _blocking_reason(child)
                    if reason and child.lineno not in self._suppressed:
                        info.blocking.append((child.lineno, reason))
                    callee = child.func
                    if isinstance(callee, ast.Name):
                        info.calls.add(callee.id)
                    elif (isinstance(callee, ast.Attribute)
                          and isinstance(callee.value, ast.Name)
                          and callee.value.id in ("self", "cls")):
                        info.calls.add(callee.attr)

    def _blocking_closure(self):
        """Bare names of functions that (transitively) block."""
        blocking = {
            name for name, infos in self.functions.items()
            if any(info.blocking for info in infos)
        }
        changed = True
        while changed:
            changed = False
            for name, infos in self.functions.items():
                if name in blocking:
                    continue
                for info in infos:
                    if info.calls & blocking:
                        blocking.add(name)
                        changed = True
                        break
        return blocking

    # -- TEA080: blocking calls reachable from coroutines --------------

    def coroutine_blocking_findings(self):
        findings = []
        for infos in self.functions.values():
            for info in infos:
                if not info.is_async:
                    continue
                for lineno, reason in info.blocking:
                    findings.append(Finding(
                        "blocking-call",
                        "coroutine %s calls blocking %s on the event "
                        "loop; hand it to run_in_executor"
                        % (info.qualname, reason), lineno))
                for callee in sorted(info.calls & self._closure):
                    if callee == info.node.name:
                        continue
                    findings.append(Finding(
                        "blocking-call",
                        "coroutine %s calls %s(), which reaches "
                        "blocking I/O; hand it to run_in_executor"
                        % (info.qualname, callee),
                        info.node.lineno))
        return findings

    # -- TEA081: lock discipline ---------------------------------------

    def _lock_name(self, node):
        """The lock variable a ``with`` item acquires, or ``None``."""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
        if name in self.lock_kinds or name in LOCK_ORDER:
            return name
        return None

    def lock_findings(self):
        findings = []
        for infos in self.functions.values():
            for info in infos:
                self._walk_locks(info, info.node, held=[],
                                 findings=findings)
        return findings

    def _walk_locks(self, info, node, held, findings):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            acquired = []
            if isinstance(child, (ast.With, ast.AsyncWith)):
                is_async = isinstance(child, ast.AsyncWith)
                for item in child.items:
                    name = self._lock_name(item.context_expr)
                    if name is None:
                        continue
                    kind = self.lock_kinds.get(name, "threading")
                    if kind == "asyncio" and not is_async:
                        findings.append(Finding(
                            "lock-discipline",
                            "%s acquires asyncio lock %s with a plain "
                            "'with'; use 'async with'"
                            % (info.qualname, name), child.lineno))
                    if kind == "threading" and is_async:
                        findings.append(Finding(
                            "lock-discipline",
                            "%s acquires threading lock %s with "
                            "'async with'" % (info.qualname, name),
                            child.lineno))
                    for other in held:
                        if (name in LOCK_ORDER and other in LOCK_ORDER
                                and LOCK_ORDER.index(name)
                                <= LOCK_ORDER.index(other)):
                            findings.append(Finding(
                                "lock-discipline",
                                "%s acquires %s while holding %s — "
                                "violates the documented order %s"
                                % (info.qualname, name, other,
                                   " < ".join(LOCK_ORDER)),
                                child.lineno))
                    if kind == "threading":
                        acquired.append(name)
            elif isinstance(child, (ast.Await, ast.AsyncFor)):
                for name in held:
                    findings.append(Finding(
                        "lock-discipline",
                        "%s awaits while holding threading lock %s "
                        "(blocks the event loop for every thread)"
                        % (info.qualname, name),
                        getattr(child, "lineno", info.node.lineno)))
            self._walk_locks(info, child, held + acquired, findings)

    # -- TEA082: unguarded shared caches -------------------------------

    def _shared_caches(self):
        names = set()
        for node in self.module.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, (ast.Dict, ast.DictComp)):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id.upper() == target.id
                        and target.id.endswith("_CACHE")):
                    names.add(target.id)
        return names

    def shared_cache_findings(self):
        caches = self._shared_caches()
        if not caches:
            return []
        findings = []
        for infos in self.functions.values():
            for info in infos:
                self._walk_caches(info, info.node, caches, guarded=False,
                                  findings=findings)
        return findings

    def _mutation(self, node, caches):
        """``(cache_name, what)`` when this node mutates a cache."""
        target = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for entry in targets:
                if (isinstance(entry, ast.Subscript)
                        and isinstance(entry.value, ast.Name)
                        and entry.value.id in caches):
                    target = (entry.value.id, "item assignment")
        elif isinstance(node, ast.Delete):
            for entry in node.targets:
                if (isinstance(entry, ast.Subscript)
                        and isinstance(entry.value, ast.Name)
                        and entry.value.id in caches):
                    target = (entry.value.id, "del")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in caches
                    and func.attr in ("clear", "pop", "popitem",
                                      "setdefault", "update")):
                target = (func.value.id, ".%s()" % func.attr)
        return target

    def _walk_caches(self, info, node, caches, guarded, findings):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            now_guarded = guarded
            if isinstance(child, (ast.With, ast.AsyncWith)):
                if any(self._lock_name(item.context_expr)
                       for item in child.items):
                    now_guarded = True
            mutation = self._mutation(child, caches)
            if mutation and not guarded:
                cache, what = mutation
                findings.append(Finding(
                    "unguarded-cache",
                    "%s mutates module cache %s (%s) without holding "
                    "a lock" % (info.qualname, cache, what),
                    getattr(child, "lineno", info.node.lineno)))
            self._walk_caches(info, child, caches, now_guarded, findings)

    # -- everything ----------------------------------------------------

    def all_findings(self):
        """Every finding, ordered by line."""
        findings = (self.coroutine_blocking_findings()
                    + self.lock_findings()
                    + self.shared_cache_findings())
        return sorted(findings, key=lambda f: (f.lineno or 0, f.check))
