"""Fleet-scale static audit engine.

``repro.audit`` turns the per-artifact verifier (:mod:`repro.verify`)
into a store-wide analysis pipeline:

- :mod:`repro.audit.fixpoint` — the dataflow framework (reachability /
  liveness worklist solver, static cost intervals, directory probe
  bounds) behind the TEA06x rule family;
- :mod:`repro.audit.concurrency` — the AST concurrency analysis
  (blocking calls reachable from coroutines, lock discipline, shared
  cache guarding) behind the TEA08x rule family;
- :mod:`repro.audit.scheduler` — walks an entire
  :class:`~repro.store.AutomatonStore` (snapshots, cached JIT sources)
  plus the service source tree in parallel, reusing the harness
  sharding pattern;
- :mod:`repro.audit.cache` — the content-addressed result cache keyed
  on (artifact digest, rule-catalog version, engine options) that
  makes warm audits near-instant;
- :mod:`repro.audit.baseline` — SARIF baseline diffing (``--baseline
  old.sarif`` reports only new findings).

The package never imports :mod:`repro.verify` at module level (the
verify rules import the analyses here at function level), so the two
packages stay cycle-free.
"""

from repro.audit.baseline import diff_new_results, load_baseline
from repro.audit.cache import AuditCache
from repro.audit.scheduler import (
    AuditResult,
    audit_paths,
    audit_store,
    default_code_paths,
)

__all__ = [
    "AuditCache",
    "AuditResult",
    "audit_paths",
    "audit_store",
    "default_code_paths",
    "diff_new_results",
    "load_baseline",
]
