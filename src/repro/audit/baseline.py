"""SARIF baseline diffing for incremental audits.

A fleet audit is most useful as a *ratchet*: an existing tree may
carry known findings, and CI should block only on new ones.
``repro tools audit --baseline old.sarif`` loads a previous run's
SARIF log, fingerprints every result, and reports only results absent
from the baseline.

A fingerprint deliberately excludes volatile context (rule index,
ordering) and keeps what identifies a finding across runs: the rule
id, the artifact URI, the logical location, and the message text.
"""

from __future__ import annotations

import json
from typing import Any, FrozenSet, Set, Tuple


def result_fingerprint(result: Any) -> Tuple[str, str, str, str]:
    """Stable identity of one SARIF result across runs."""
    uri = ""
    logical = ""
    locations = result.get("locations") or []
    if locations:
        physical = locations[0].get("physicalLocation") or {}
        uri = (physical.get("artifactLocation") or {}).get("uri", "")
        names = locations[0].get("logicalLocations") or []
        if names:
            logical = names[0].get("fullyQualifiedName", "")
    return (
        result.get("ruleId", ""),
        uri,
        logical,
        (result.get("message") or {}).get("text", ""),
    )


def sarif_fingerprints(sarif: Any) -> Set[Tuple[str, str, str, str]]:
    """Every result fingerprint in a SARIF document."""
    fingerprints = set()
    for run in sarif.get("runs") or []:
        for result in run.get("results") or []:
            fingerprints.add(result_fingerprint(result))
    return fingerprints


def load_baseline(path: Any) -> FrozenSet[Tuple[str, str, str, str]]:
    """Fingerprints of a baseline SARIF file.

    Raises ``OSError`` / ``ValueError`` for unreadable or non-JSON
    input — a usage error the CLI maps to exit code 2.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError("%s is not a SARIF document" % path)
    return frozenset(sarif_fingerprints(document))


def diff_new_results(sarif: Any, baseline: Any) -> Tuple[Any, int, int]:
    """Strip baseline-known results from a SARIF document in place.

    ``baseline`` is a fingerprint set from :func:`load_baseline`.
    Returns ``(sarif, new_count, suppressed_count)`` — the same
    document with each run's ``results`` filtered to findings the
    baseline has not seen.
    """
    new_count = 0
    suppressed = 0
    for run in sarif.get("runs") or []:
        kept = []
        for result in run.get("results") or []:
            if result_fingerprint(result) in baseline:
                suppressed += 1
            else:
                kept.append(result)
                new_count += 1
        run["results"] = kept
    return sarif, new_count, suppressed
