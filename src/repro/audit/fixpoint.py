"""Dataflow fixpoints over automaton views (the TEA06x substrate).

The TEA06x rule family certifies automata by *analysis* instead of
replay: reachability and liveness are monotone dataflow problems over
the transition graph, and per-state replay cost is an interval that can
be bounded statically from the cost parameters alone.  This module is
the framework; the rules in :mod:`repro.verify.rules_dataflow` are thin
wrappers that turn analysis output into diagnostics.

Everything here operates on
:class:`~repro.verify.views.AutomatonView` — the uniform read-only
adapter over ``TEA`` and ``CompiledTea`` — so one analysis covers both
representations.  Nothing executes the subject.
"""

from __future__ import annotations

from repro.core.automaton import NTE_SID
from repro.core.directory import DIRECTORY_COST_PARAM

#: Directory kinds the cost envelope ranges over (a snapshot does not
#: record which directory the replayer will use, so static bounds take
#: the envelope across all of them).
DIRECTORY_KINDS = tuple(sorted(DIRECTORY_COST_PARAM))

#: Default B+ tree fanout (mirrors ``make_directory``).
DEFAULT_BPTREE_ORDER = 16


def solve_worklist(seeds, successors, n_nodes):
    """Generic forward fixpoint: the set reachable from ``seeds``.

    ``successors(node)`` yields successor node ids; ids outside
    ``[0, n_nodes)`` are ignored (a malformed graph must not crash the
    analysis — the shape rules report it).  Runs to a fixpoint in
    O(nodes + edges).
    """
    seen = set()
    frontier = []
    for node in seeds:
        if 0 <= node < n_nodes and node not in seen:
            seen.add(node)
            frontier.append(node)
    while frontier:
        node = frontier.pop()
        for dest in successors(node):
            if 0 <= dest < n_nodes and dest not in seen:
                seen.add(dest)
                frontier.append(dest)
    return seen


def reachable_states(view):
    """States reachable from NTE plus the head registry (forward)."""
    seeds = [NTE_SID]
    seeds.extend(sid for _, sid in view.heads)
    return solve_worklist(
        seeds,
        lambda sid: (dest for _, dest in view.edges[sid]),
        view.n_states,
    )


def head_live_states(view):
    """States reachable from some *head* (liveness of the trace body).

    A state outside this set can never participate in an in-trace walk:
    the directory only dispatches to head states, and in-trace stepping
    follows transitions.  NTE is live by definition (it anchors the
    out-of-trace regime).
    """
    seeds = [sid for _, sid in view.heads]
    live = solve_worklist(
        seeds,
        lambda sid: (dest for _, dest in view.edges[sid]),
        view.n_states,
    )
    live.add(NTE_SID)
    return live


def dead_states(view):
    """Sorted state ids no replay can ever enter."""
    reach = reachable_states(view)
    return sorted(sid for sid in range(view.n_states) if sid not in reach)


def dead_transitions(view):
    """Transitions that can never fire: ``(src, label, dest)`` where
    ``src`` is unreachable.  (A transition out of a reachable state is
    always live — replay may present any block label next.)"""
    reach = reachable_states(view)
    dead = []
    for sid in range(view.n_states):
        if sid in reach:
            continue
        for label, dest in view.edges[sid]:
            dead.append((sid, label, dest))
    return dead


def incoming_counts(view):
    """``counts[sid]`` — number of in-edges from *reachable* states."""
    reach = reachable_states(view)
    counts = [0] * view.n_states
    for sid in reach:
        for _, dest in view.edges[sid]:
            if 0 <= dest < view.n_states:
                counts[dest] += 1
    return counts


# ----------------------------------------------------------------------
# Directory probe bounds
# ----------------------------------------------------------------------


def directory_probe_bounds(kind, n_heads, order=DEFAULT_BPTREE_ORDER):
    """Static ``(min_units, max_units)`` for one lookup of a registered
    entry in a directory of ``n_heads`` heads.

    The bounds are *sound* (every actual lookup lands inside them) and
    per-kind tight enough to catch a directory charging impossible
    work:

    - ``list`` — linear scan: 1 .. n;
    - ``sorted`` — binary search: 1 .. floor(log2 n) + 1 comparisons;
    - ``bptree`` — one node per level: 1 .. height, where the height of
      an order-``m`` tree over n keys is bounded by splitting at
      ceil(m/2) fanout;
    - ``hash`` — linear probing: 1 .. capacity, where the table doubles
      from 8 slots before load ever reaches 70 %.
    """
    if n_heads <= 0:
        return (0, 0)
    if kind == "list":
        return (1, n_heads)
    if kind == "sorted":
        high = 1
        span = n_heads
        while span > 1:
            span //= 2
            high += 1
        return (1, high)
    if kind == "bptree":
        fanout = max(2, (order + 1) // 2)
        height = 1
        keys = n_heads
        while keys > order:
            keys = -(-keys // fanout)
            height += 1
        return (1, height)
    if kind == "hash":
        capacity = 8
        while n_heads > 0.7 * capacity:
            capacity *= 2
        return (1, capacity)
    raise ValueError("unknown directory kind %r" % (kind,))


# ----------------------------------------------------------------------
# Cost-interval analysis
# ----------------------------------------------------------------------


class CostInterval:
    """Closed interval ``[lo, hi]`` of cycles, in analysis order."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def scaled(self, count):
        return CostInterval(self.lo * count, self.hi * count)

    def __add__(self, other):
        return CostInterval(self.lo + other.lo, self.hi + other.hi)

    def as_dict(self):
        return {"lo": round(self.lo, 3), "hi": round(self.hi, 3)}

    def __repr__(self):
        return "CostInterval(%r, %r)" % (self.lo, self.hi)


def _exit_interval(params, n_heads, order=DEFAULT_BPTREE_ORDER):
    """Cycles charged when a block *leaves* the in-trace regime and the
    directory resolves (or misses) the next PC — enveloped over every
    directory kind and cache configuration."""
    probe_costs = []
    for kind in DIRECTORY_KINDS:
        low, high = directory_probe_bounds(kind, n_heads, order=order)
        per_unit = getattr(params, DIRECTORY_COST_PARAM[kind])
        probe_costs.append((low * per_unit, high * per_unit))
    probe_lo = min(low for low, _ in probe_costs) if probe_costs else 0.0
    probe_hi = max(high for _, high in probe_costs) if probe_costs else 0.0
    # Cheapest resolution: a local-cache hit straight into the trace.
    # Dearest: a cache miss, the worst directory probe, the insert, and
    # the trace entry.  Without a local cache the cache legs are zero,
    # so the envelope keeps 0 as the cache lower bound.
    lo = params.CALLBACK_SLOW + min(params.CACHE_HIT + params.ENTER_TRACE,
                                    probe_lo)
    hi = (params.CALLBACK_SLOW + params.CACHE_MISS + probe_hi
          + params.CACHE_INSERT + params.ENTER_TRACE)
    return CostInterval(lo, max(lo, hi))


def state_cost_intervals(view, params, order=DEFAULT_BPTREE_ORDER):
    """Per-state min/max cycles charged for consuming one block while
    the automaton sits in that state.

    The interval is a sound envelope over replay configurations (any
    directory kind, cache or not): an in-trace state's cheapest block
    is a fast-path hit (fast callback + in-trace transition); its most
    expensive is a side exit through the directory.  A state with no
    outgoing transitions always exits; out-of-trace states always pay
    the directory.  Returns ``{sid: CostInterval}``.
    """
    n_heads = len(view.heads)
    exit_cost = _exit_interval(params, n_heads, order=order)
    fast = params.CALLBACK_FAST + params.IN_TRACE_TRANSITION
    intervals = {}
    for sid in range(view.n_states):
        if view.in_trace[sid] and view.edges[sid]:
            intervals[sid] = CostInterval(min(fast, exit_cost.lo),
                                          max(fast, exit_cost.hi))
        else:
            intervals[sid] = exit_cost
    return intervals


def profile_cost_bounds(view, params, state_counts,
                        order=DEFAULT_BPTREE_ORDER):
    """Certified total-cost interval for a recorded profile.

    ``state_counts`` maps sid -> executed block count; the result is
    the sum of each state's interval scaled by its count — the tightest
    static statement the cost model supports about what that profile's
    replay could have cost.
    """
    intervals = state_cost_intervals(view, params, order=order)
    total = CostInterval(0.0, 0.0)
    for sid, count in state_counts.items():
        interval = intervals.get(sid)
        if interval is None or count <= 0:
            continue
        total = total + interval.scaled(count)
    return total
