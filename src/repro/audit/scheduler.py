"""Fleet audit scheduler: walk a store + the service tree in parallel.

Reuses the parallel-harness sharding pattern
(:mod:`repro.harness.parallel`): a module-level worker function so the
pool can pickle it, a pending list built by consulting the result
cache first, and a ``jobs=1`` path that never touches
``multiprocessing``.  Each artifact is verified independently through
:func:`repro.verify.verify_path`, so the scheduler parallelizes
*subjects*, not rules — the engine stays single-threaded and
deterministic per artifact.

Audited artifacts:

- every ``*.teab`` snapshot in the store (deep verify: snapshot,
  automaton, dataflow and — with benchmark meta — CFG families);
- every cached ``*.jit.py`` replay source (TEA033 + the TEA07x static
  certifier against the sibling snapshot);
- the concurrency-lint source targets (``repro/service``,
  ``repro/cluster``, ``repro/store/mapping.py`` — TEA08x).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Source targets of the TEA08x concurrency lint, relative to the
#: ``repro`` package root.
CODE_TARGETS = ("service", "cluster", os.path.join("store", "mapping.py"))


def default_code_paths() -> List[str]:
    """The concurrency-lint source files shipped in this install."""
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    paths = []
    for target in CODE_TARGETS:
        full = os.path.join(package_root, target)
        if os.path.isfile(full):
            paths.append(full)
        elif os.path.isdir(full):
            for name in sorted(os.listdir(full)):
                if name.endswith(".py") and not name.startswith("."):
                    paths.append(os.path.join(full, name))
    return paths


def store_artifact_paths(store_root: Any) -> List[str]:
    """Every snapshot and cached JIT source in a store, sorted."""
    from repro.store.store import JIT_SUFFIX, SNAPSHOT_SUFFIX

    paths = []
    if not os.path.isdir(store_root):
        return paths
    for shard in sorted(os.listdir(store_root)):
        shard_dir = os.path.join(store_root, shard)
        if not os.path.isdir(shard_dir):
            continue
        for filename in sorted(os.listdir(shard_dir)):
            if filename.startswith("."):
                continue
            if (filename.endswith(SNAPSHOT_SUFFIX)
                    or filename.endswith(JIT_SUFFIX)):
                paths.append(os.path.join(shard_dir, filename))
    return paths


def _synthetic_error_report(path: Any, message: str) -> Dict[str, Any]:
    """A report document for an artifact that could not be audited."""
    return {
        "target": str(path),
        "ok": False,
        "errors": 1,
        "warnings": 0,
        "rules_run": [],
        "diagnostics": [{
            "rule": "AUDIT000",
            "severity": "error",
            "message": message,
        }],
    }


def _audit_worker(job: Tuple[Any, Tuple[str, ...], bool, bool]) -> Tuple[Any, Dict[str, Any]]:
    """Verify one artifact; returns ``(path, report_document)``.

    Module-level so ``multiprocessing`` can pickle it; everything it
    needs rides in the job tuple.
    """
    path, disabled, strict, deep = job
    from repro.errors import SerializationError
    from repro.verify import default_engine, verify_path

    engine = default_engine(disabled=disabled, strict=strict)
    try:
        report = verify_path(path, engine=engine, deep=deep)
    except SerializationError as error:
        return path, _synthetic_error_report(path, str(error))
    return path, report.to_json(strict=strict)


class AuditResult:
    """Outcome of one fleet audit."""

    def __init__(self, reports: List[Dict[str, Any]],
                 stats: Dict[str, Any]) -> None:
        #: Report documents (``Report.to_json`` shape), input order.
        self.reports = reports
        #: ``artifacts`` / ``cache_hits`` / ``cold_runs`` / ``elapsed``.
        self.stats = stats

    def ok(self) -> bool:
        return all(bool(report.get("ok")) for report in self.reports)

    def report_objects(self) -> List[Any]:
        """The reports as :class:`~repro.verify.Report` instances."""
        from repro.verify import report_from_json

        return [report_from_json(document) for document in self.reports]

    def __repr__(self) -> str:
        return "<AuditResult %d artifact(s), %d cached, ok=%s>" % (
            self.stats.get("artifacts", 0),
            self.stats.get("cache_hits", 0), self.ok(),
        )


def audit_paths(paths: Iterable[Any], jobs: int = 1,
                cache: Optional[Any] = None,
                disabled: Iterable[str] = (), strict: bool = False,
                deep: bool = True, obs: Any = None) -> AuditResult:
    """Audit every path; returns an :class:`AuditResult`.

    ``cache`` is an :class:`~repro.audit.cache.AuditCache` (or
    ``None`` to disable caching); cached artifacts are served without
    touching the pool, so a warm rerun over an unchanged fleet costs
    one content digest per artifact.
    """
    from repro.audit.cache import audit_fingerprint, file_digest
    from repro.verify import catalog_version

    started = time.monotonic()
    paths = list(paths)
    version = catalog_version()
    disabled = tuple(sorted(set(disabled)))
    documents = {}
    keys = {}
    pending = []
    for path in paths:
        digest = file_digest(path)
        if digest is None:
            documents[path] = _synthetic_error_report(
                path, "cannot read artifact")
            continue
        key = audit_fingerprint(digest, version, disabled=disabled,
                                strict=strict, deep=deep)
        keys[path] = key
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            documents[path] = cached
        else:
            pending.append(path)

    jobs = max(1, int(jobs))
    if pending:
        job_list = [(path, disabled, strict, deep) for path in pending]
        if jobs == 1 or len(job_list) == 1:
            outcomes = [_audit_worker(job) for job in job_list]
        else:
            with multiprocessing.Pool(processes=min(jobs, len(job_list))) \
                    as pool:
                outcomes = list(pool.imap_unordered(_audit_worker,
                                                    job_list))
        for path, document in outcomes:
            documents[path] = document
            if cache is not None:
                cache.put(keys[path], document)

    stats = {
        "artifacts": len(paths),
        "cache_hits": len(paths) - len(pending)
        - sum(1 for path in paths if path not in keys),
        "cold_runs": len(pending),
        "unreadable": sum(1 for path in paths if path not in keys),
        "elapsed": time.monotonic() - started,
        "catalog_version": version,
        "jobs": jobs,
    }
    if obs is not None:
        metrics = obs.metrics
        metrics.counter("audit.runs").inc()
        metrics.counter("audit.artifacts").inc(stats["artifacts"])
        metrics.counter("audit.cold_runs").inc(stats["cold_runs"])
        metrics.counter("audit.cache_hits").inc(stats["cache_hits"])
    return AuditResult([documents[path] for path in paths], stats)


def audit_store(store_root: Any, code_paths: Optional[Iterable[Any]] = None,
                jobs: int = 1, cache: Optional[Any] = None,
                disabled: Iterable[str] = (), strict: bool = False,
                deep: bool = True, obs: Any = None) -> AuditResult:
    """Audit a whole :class:`~repro.store.AutomatonStore` tree.

    ``code_paths`` — the concurrency-lint targets; defaults to
    :func:`default_code_paths`, pass ``()`` to audit snapshots only.
    """
    paths = store_artifact_paths(store_root)
    if code_paths is None:
        code_paths = default_code_paths()
    paths = list(paths) + list(code_paths)
    return audit_paths(paths, jobs=jobs, cache=cache, disabled=disabled,
                       strict=strict, deep=deep, obs=obs)
