"""Trace-set serialization.

The paper's headline use case is building traces in one system (StarDBT)
and replaying them in another (a pintool): "our pintool ... loads traces
from a input file and uses the traces for program execution."  This module
is that input-file format: a small, versioned JSON document carrying every
TBB (by block address span) and every labelled edge.

Loading reconstructs block metadata against a program image through a
:class:`~repro.cfg.basic_block.BlockIndex`, which re-derives instruction
counts and byte sizes — so a trace file is portable across environments
that agree only on the program's address space, exactly like the paper's
StarDBT -> Pin hand-off.
"""

import json

from repro.errors import SerializationError
from repro.traces.model import Trace, TraceSet
from repro.util import atomic_write_json

FORMAT_VERSION = 1


def trace_set_to_json(trace_set):
    """Render a :class:`~repro.traces.model.TraceSet` as a JSON-able dict."""
    traces = []
    for trace in trace_set:
        traces.append(
            {
                "id": trace.trace_id,
                "kind": trace.kind,
                "anchor": trace.anchor,
                "tbbs": [
                    {"start": tbb.block.start, "end": tbb.block.end}
                    for tbb in trace.tbbs
                ],
                "edges": [
                    [tbb.index, successor, label]
                    for tbb in trace.tbbs
                    for label, successor in sorted(tbb.successors.items())
                ],
            }
        )
    return {"version": FORMAT_VERSION, "kind": trace_set.kind, "traces": traces}


def trace_set_from_json(document, block_index):
    """Rebuild a trace set from :func:`trace_set_to_json` output.

    ``block_index`` must be backed by the same program image the traces
    were recorded against; every block span is re-interned through it.
    """
    try:
        version = document["version"]
        if version != FORMAT_VERSION:
            raise SerializationError("unsupported trace format v%s" % version)
        trace_set = TraceSet(kind=document.get("kind"))
        for payload in document["traces"]:
            trace = Trace(payload["id"], payload["kind"],
                          anchor=payload.get("anchor"))
            for span in payload["tbbs"]:
                trace.add_block(block_index.block(span["start"], span["end"]))
            for from_index, to_index, label in payload["edges"]:
                trace.add_edge(from_index, to_index)
                if trace.tbbs[to_index].block.start != label:
                    raise SerializationError(
                        "edge label %#x inconsistent in trace %s"
                        % (label, payload["id"])
                    )
            trace_set.traces.append(trace)
            if trace.entry in trace_set.by_entry:
                raise SerializationError(
                    "duplicate trace entry %#x" % trace.entry
                )
            trace_set.by_entry[trace.entry] = trace
        trace_set.check()
        return trace_set
    except (KeyError, TypeError, IndexError) as error:
        raise SerializationError("malformed trace document: %s" % error) from None


def save_trace_set(trace_set, path):
    """Write a trace set to ``path`` as JSON, atomically."""
    atomic_write_json(path, trace_set_to_json(trace_set))


def load_trace_set(path, block_index):
    """Read a trace set previously written by :func:`save_trace_set`."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SerializationError("cannot read %s: %s" % (path, error)) from None
    return trace_set_from_json(document, block_index)
