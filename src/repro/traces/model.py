"""Trace data model: the paper's Definitions 1-3.

- Definition 1 (Basic Block) is :class:`~repro.cfg.basic_block.BasicBlock`.
- Definition 2 (Trace Basic Block): :class:`TBB` — an *instance* of a BB in
  a trace.  The same BB occurring in two traces (or twice in one trace
  tree) yields distinct TBBs, written ``$$T<id>.<addr>`` as in the paper's
  ``$$T1.next`` / ``$$T2.next`` notation.
- Definition 3 (Trace): :class:`Trace` — a collection of TBBs plus the
  control-flow edges between them, general enough for superblocks (MRET
  chains) and trace trees (TT/CTT) alike.

A :class:`TraceSet` is what a recording run produces and what both the
DBT code cache and Algorithm 1 consume.
"""

from repro.errors import TraceError
from repro.verify.diagnostics import ERROR, Diagnostic


class TBB:
    """One occurrence of a basic block inside a trace (Definition 2).

    ``successors`` maps a *label* — the program counter that triggers the
    transition, i.e. the successor block's start address — to the index of
    the successor TBB within the same trace.  This is exactly the labelled
    transition relation Algorithm 1 lifts into the TEA.
    """

    __slots__ = ("trace_id", "index", "block", "successors")

    def __init__(self, trace_id, index, block):
        self.trace_id = trace_id
        self.index = index
        self.block = block
        self.successors = {}

    @property
    def start(self):
        return self.block.start

    @property
    def name(self):
        """Paper-style unique name, e.g. ``$$T1.0x8048010``."""
        return "$$T%d.%#x" % (self.trace_id, self.block.start)

    def exit_labels(self):
        """Statically known successor addresses *not* covered by in-trace
        edges — the side exits that become NTE (or trace-entry)
        transitions and, in a DBT, exit stubs."""
        terminator = self.block.terminator
        if terminator is None or not terminator.is_control:
            candidates = ()
            if terminator is not None:
                candidates = (terminator.fallthrough,)
        elif terminator.is_conditional:
            candidates = (terminator.target, terminator.fallthrough)
        elif terminator.is_ret or terminator.is_indirect:
            # Unknown statically; modelled as one exit stub.
            return (None,)
        elif terminator.opcode == "hlt":
            return ()
        else:
            candidates = (terminator.target,)
        return tuple(addr for addr in candidates if addr not in self.successors)

    def __repr__(self):
        return "<TBB %s %d succs>" % (self.name, len(self.successors))


class Trace:
    """A recorded trace (Definition 3): TBBs plus labelled edges."""

    __slots__ = ("trace_id", "kind", "tbbs", "anchor")

    def __init__(self, trace_id, kind, anchor=None):
        self.trace_id = trace_id
        self.kind = kind
        self.tbbs = []
        self.anchor = anchor

    @property
    def entry(self):
        if not self.tbbs:
            raise TraceError("empty trace T%d has no entry" % self.trace_id)
        return self.tbbs[0].block.start

    def add_block(self, block):
        """Append a new TBB for ``block``; returns it."""
        tbb = TBB(self.trace_id, len(self.tbbs), block)
        self.tbbs.append(tbb)
        return tbb

    def add_edge(self, from_index, to_index):
        """Record the in-trace edge ``from -> to``.

        The label is the successor TBB's start address (the PC that
        triggers the transition).  Determinism is enforced: one label maps
        to at most one successor per TBB.
        """
        source = self.tbbs[from_index]
        destination = self.tbbs[to_index]
        label = destination.block.start
        existing = source.successors.get(label)
        if existing is not None and existing != to_index:
            raise TraceError(
                "nondeterministic edge from %s on label %#x"
                % (source.name, label)
            )
        source.successors[label] = to_index

    def __len__(self):
        return len(self.tbbs)

    def __iter__(self):
        return iter(self.tbbs)

    @property
    def n_instructions(self):
        return sum(tbb.block.n_instrs for tbb in self.tbbs)

    @property
    def code_bytes(self):
        """Bytes of original code the trace replicates."""
        return sum(tbb.block.size_bytes for tbb in self.tbbs)

    @property
    def n_edges(self):
        return sum(len(tbb.successors) for tbb in self.tbbs)

    @property
    def n_side_exits(self):
        return sum(len(tbb.exit_labels()) for tbb in self.tbbs)

    def validate(self):
        """Check structural invariants; returns a list of diagnostics.

        Every problem is reported (not just the first), each as a
        :class:`~repro.verify.diagnostics.Diagnostic` carrying its rule
        id — ``TEA040`` (structure), ``TEA041`` (dangling edge),
        ``TEA042`` (label mismatch) — so trace files get the same
        reporting path as every other verifier subject.  Use
        :meth:`check` for the historical raise-on-first-error contract.
        """
        diagnostics = []
        if not self.tbbs:
            diagnostics.append(Diagnostic(
                "TEA040", ERROR, "trace T%d is empty" % self.trace_id,
                location="T%d" % self.trace_id,
            ))
            return diagnostics
        for position, tbb in enumerate(self.tbbs):
            if tbb.index != position:
                diagnostics.append(Diagnostic(
                    "TEA040", ERROR,
                    "TBB index mismatch in T%d (%s at position %d "
                    "claims index %d)"
                    % (self.trace_id, tbb.name, position, tbb.index),
                    location=tbb.name,
                ))
            for label, successor in tbb.successors.items():
                if not 0 <= successor < len(self.tbbs):
                    diagnostics.append(Diagnostic(
                        "TEA041", ERROR,
                        "dangling edge %s -> #%d" % (tbb.name, successor),
                        location=tbb.name,
                        data={"successor": successor},
                    ))
                elif self.tbbs[successor].block.start != label:
                    diagnostics.append(Diagnostic(
                        "TEA042", ERROR,
                        "edge label %#x does not match successor start %#x"
                        % (label, self.tbbs[successor].block.start),
                        location=tbb.name,
                        data={"label": label},
                    ))
        return diagnostics

    def check(self):
        """Raise :class:`TraceError` on the first structural problem."""
        diagnostics = self.validate()
        if diagnostics:
            raise TraceError(diagnostics[0].message)
        return self

    def __repr__(self):
        return "<Trace T%d kind=%s blocks=%d edges=%d>" % (
            self.trace_id,
            self.kind,
            len(self.tbbs),
            self.n_edges,
        )


class TraceSet:
    """All traces recorded for one program run."""

    def __init__(self, kind=None):
        self.kind = kind
        self.traces = []
        self.by_entry = {}

    def new_trace(self, kind=None, anchor=None):
        trace = Trace(len(self.traces) + 1, kind or self.kind or "?", anchor=anchor)
        return trace

    def add(self, trace):
        """Commit a finished trace; rejects duplicate entry addresses."""
        trace.check()
        entry = trace.entry
        if entry in self.by_entry:
            raise TraceError("duplicate trace entry %#x" % entry)
        self.traces.append(trace)
        self.by_entry[entry] = trace
        return trace

    def has_entry(self, addr):
        return addr in self.by_entry

    def trace_at(self, addr):
        return self.by_entry.get(addr)

    def __len__(self):
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    @property
    def n_tbbs(self):
        return sum(len(trace) for trace in self.traces)

    @property
    def n_edges(self):
        return sum(trace.n_edges for trace in self.traces)

    @property
    def n_side_exits(self):
        return sum(trace.n_side_exits for trace in self.traces)

    @property
    def code_bytes(self):
        return sum(trace.code_bytes for trace in self.traces)

    def validate(self):
        """Diagnostics for every trace plus set-level invariants.

        Adds ``TEA043`` findings when two traces share an entry address
        or the ``by_entry`` index disagrees with the trace list.
        """
        diagnostics = []
        seen = {}
        for trace in self.traces:
            diagnostics.extend(trace.validate())
            if not trace.tbbs:
                continue
            entry = trace.tbbs[0].block.start
            first = seen.get(entry)
            if first is not None:
                diagnostics.append(Diagnostic(
                    "TEA043", ERROR,
                    "duplicate trace entry %#x (T%d and T%d)"
                    % (entry, first.trace_id, trace.trace_id),
                    location="T%d" % trace.trace_id,
                    data={"entry": entry},
                ))
            else:
                seen[entry] = trace
            if self.by_entry.get(entry) is None:
                diagnostics.append(Diagnostic(
                    "TEA043", ERROR,
                    "trace T%d entry %#x is missing from the entry index"
                    % (trace.trace_id, entry),
                    location="T%d" % trace.trace_id,
                    data={"entry": entry},
                ))
        return diagnostics

    def check(self):
        """Raise :class:`TraceError` on the first structural problem."""
        diagnostics = self.validate()
        if diagnostics:
            raise TraceError(diagnostics[0].message)
        return self

    def __repr__(self):
        return "<TraceSet kind=%s traces=%d tbbs=%d>" % (
            self.kind,
            len(self.traces),
            self.n_tbbs,
        )
