"""CTT — Compact Trace Trees (Porto et al., AMAS-BT'09).

CTT addresses the code duplication TT suffers "by allowing branch targets
within a path to be any loop header in that path": when a recorded path
takes a backward branch to a loop header it has already recorded, the
path terminates successfully with a link-back edge to that TBB instead of
unrolling the inner loop into the path (TT) or aborting.

Consequences reproduced here, matching Table 1's shape:

- Nested FP loop nests: CTT captures the *outer* loop structure (inner
  loops appear once, closed by a link-back), so CTT trees are larger than
  MRET's single-loop superblocks, while TT (which cannot close inner
  cycles compactly) stays inner-loop-only and smallest.
- Branchy integer loops: CTT still duplicates diamond tails on side exits
  like TT, so it is well above MRET — but it never unrolls inner loops,
  avoiding TT's multiplicative explosion.
"""

from repro.traces.trace_tree import TraceTreeRecorder


class CompactTraceTreeRecorder(TraceTreeRecorder):
    """Trace trees with loop-header path termination (see module doc)."""

    kind = "ctt"
    header_termination = True
