"""Trace models and trace-selection strategies.

Implements the paper's Definitions 1-3 (:mod:`repro.traces.model`) and the
trace-recording strategies evaluated in Table 1 plus one related-work
extension:

- :mod:`repro.traces.mret` — Most Recently Executed Tail (Dynamo/NET),
  the strategy used for the Table 2/3 experiments.
- :mod:`repro.traces.trace_tree` — Trace Trees (Gal & Franz): anchored at
  loop headers, paths always end with a branch to the anchor, side exits
  duplicate tails (the Table 1 blowup on branchy integer codes).
- :mod:`repro.traces.compact_trace_tree` — Compact Trace Trees (Porto et
  al.): tree paths may also terminate at loop headers on the path and may
  link into already-recorded nodes, curbing TT's duplication.
- :mod:`repro.traces.mfet` — Most Frequently Executed Tail (extension;
  edge-profile triggered, mentioned in the paper's related work).

All recorders consume :class:`~repro.cfg.builder.BlockTransition` streams
and produce a :class:`~repro.traces.model.TraceSet`.
"""

from repro.traces.compact_trace_tree import CompactTraceTreeRecorder
from repro.traces.mfet import MFETRecorder
from repro.traces.model import TBB, Trace, TraceSet
from repro.traces.mret import MRETRecorder
from repro.traces.recorder import RecorderLimits, TraceRecorder
from repro.traces.serialization import (
    load_trace_set,
    save_trace_set,
    trace_set_from_json,
    trace_set_to_json,
)
from repro.traces.stats import TraceSetStats, compare_strategies, compute_stats
from repro.traces.trace_tree import TraceTreeRecorder

#: Strategy name -> recorder class, as used by Table 1.
STRATEGIES = {
    "mret": MRETRecorder,
    "ctt": CompactTraceTreeRecorder,
    "tt": TraceTreeRecorder,
    "mfet": MFETRecorder,
}


def make_recorder(strategy, **kwargs):
    """Instantiate a recorder by strategy name ('mret', 'ctt', 'tt', 'mfet')."""
    try:
        recorder_cls = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            "unknown strategy %r (expected one of %s)"
            % (strategy, ", ".join(sorted(STRATEGIES)))
        ) from None
    return recorder_cls(**kwargs)


__all__ = [
    "TBB",
    "Trace",
    "TraceSet",
    "TraceRecorder",
    "RecorderLimits",
    "MRETRecorder",
    "MFETRecorder",
    "TraceTreeRecorder",
    "CompactTraceTreeRecorder",
    "STRATEGIES",
    "make_recorder",
    "save_trace_set",
    "load_trace_set",
    "trace_set_to_json",
    "trace_set_from_json",
    "TraceSetStats",
    "compute_stats",
    "compare_strategies",
]
