"""Recorder base class: Algorithm 2's three-state machine.

The paper expresses trace recording as a state machine with "Initial",
"Executing" and "Creating" states, invoked at every block boundary
(Algorithm 2).  :class:`TraceRecorder` implements exactly that skeleton;
strategies plug in the two rule hooks the paper leaves open:
``TriggerTraceRecording`` (when to leave Executing) and
``DoneTraceRecording`` (when to finish a trace).

The base also maintains the hot-spot counters every strategy shares: a
counter per backward-taken-branch target (Dynamo's "start of trace"
heuristic — counting only back edges is what makes MRET cheap), and the
set of observed loop headers that CTT consults.
"""

from repro.traces.model import TraceSet

STATE_INITIAL = "initial"
STATE_EXECUTING = "executing"
STATE_CREATING = "creating"


class RecorderLimits:
    """Shared knobs for all strategies.

    ``hot_threshold`` mirrors Dynamo's default of ~50 executions before a
    backward-branch target is considered hot.  The budget caps emulate a
    bounded code cache: once ``max_total_tbbs`` is reached the recorder
    stops creating traces, the same way a DBT stops translating when its
    cache fills (this is what keeps the TT blowup finite, as the paper's
    1.8 GB bzip2 row plainly did not).
    """

    __slots__ = (
        "hot_threshold",
        "max_trace_blocks",
        "max_path_blocks",
        "max_tree_tbbs",
        "max_total_tbbs",
        "min_shared_tail_blocks",
    )

    def __init__(
        self,
        hot_threshold=50,
        max_trace_blocks=64,
        max_path_blocks=40,
        max_tree_tbbs=8192,
        max_total_tbbs=400_000,
        min_shared_tail_blocks=2,
    ):
        self.hot_threshold = hot_threshold
        self.max_trace_blocks = max_trace_blocks
        self.max_path_blocks = max_path_blocks
        self.max_tree_tbbs = max_tree_tbbs
        self.max_total_tbbs = max_total_tbbs
        self.min_shared_tail_blocks = min_shared_tail_blocks


class TraceRecorder:
    """Algorithm 2 skeleton; subclasses implement the strategy rules.

    Parameters
    ----------
    limits:
        A :class:`RecorderLimits`; defaults are Dynamo-flavoured.
    on_trace:
        Callback invoked with every finished
        :class:`~repro.traces.model.Trace` (the DBT installs it in its
        code cache; the online TEA recorder extends the automaton).
    """

    kind = "abstract"

    def __init__(self, limits=None, on_trace=None):
        self.limits = limits or RecorderLimits()
        self.on_trace = on_trace
        self.state = STATE_INITIAL
        self.traces = TraceSet(kind=self.kind)
        self.hot_counters = {}
        self.loop_headers = set()
        self.budget_exhausted = False
        self._exec_cursor = None

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------

    def observe(self, transition):
        """Feed one block transition; called between TBB executions."""
        if self.state == STATE_INITIAL:
            # "Initial": set up an empty TEA/trace set, move to Executing.
            self.state = STATE_EXECUTING

        event = transition.event
        if event is not None and event.is_backward:
            self.loop_headers.add(event.target)

        if self.state == STATE_EXECUTING:
            self._observe_executing(transition)
        elif self.state == STATE_CREATING:
            self._observe_creating(transition)

    def finish(self):
        """End of run: close any in-flight recording, return the traces."""
        self._finish_pending()
        self.state = STATE_EXECUTING
        return self.traces

    # ------------------------------------------------------------------
    # shared machinery for subclasses
    # ------------------------------------------------------------------

    def _bump_hot_counter(self, event):
        """Count a backward-taken-branch target; True when it just got hot."""
        return self._bump_hot_addr(event.target)

    def _bump_hot_addr(self, addr):
        """Count a start-of-trace candidate address (backward-branch target
        or trace side-exit target, Dynamo's two conditions)."""
        count = self.hot_counters.get(addr, 0) + 1
        self.hot_counters[addr] = count
        if count == self.limits.hot_threshold:
            self.hot_counters[addr] = 0
            return True
        return False

    def _cursor_step(self, transition):
        """Track which recorded trace execution is currently inside.

        Returns True when this transition is a *side exit to cold code* —
        leaving a trace towards an address that is no trace's entry.
        Exits landing on another trace's entry are trace-to-trace
        transitions, not trigger candidates.
        """
        next_start = transition.next_start
        cursor = self._exec_cursor
        if next_start is None:
            self._exec_cursor = None
            return False
        if cursor is not None:
            trace, index = cursor
            successor = trace.tbbs[index].successors.get(next_start)
            if successor is not None:
                self._exec_cursor = (trace, successor)
                return False
            if next_start == trace.entry:
                self._exec_cursor = (trace, 0)
                return False
            entered = self.traces.trace_at(next_start)
            self._exec_cursor = (entered, 0) if entered is not None else None
            return entered is None
        entered = self.traces.trace_at(next_start)
        if entered is not None:
            self._exec_cursor = (entered, 0)
        return False

    def _total_budget_left(self):
        left = self.limits.max_total_tbbs - self.traces.n_tbbs
        if left <= 0:
            self.budget_exhausted = True
        return left

    def _commit(self, trace):
        self.traces.add(trace)
        if self.on_trace is not None:
            self.on_trace(trace)

    # ------------------------------------------------------------------
    # strategy hooks
    # ------------------------------------------------------------------

    def _observe_executing(self, transition):
        raise NotImplementedError

    def _observe_creating(self, transition):
        raise NotImplementedError

    def _finish_pending(self):
        """Close an in-flight trace at end of run (default: nothing)."""
