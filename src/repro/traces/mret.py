"""MRET — Most Recently Executed Tail (Dynamo / NET).

The strategy the paper uses for its Table 2/3 experiments.  Counters sit
on targets of *backward taken branches only* ("less is more"); when a
target's counter crosses the hot threshold, the very next execution path
from that target is recorded as a superblock.  Recording ends when the
path:

- branches back to the trace head (the loop closes — a cycle edge is
  added, the common case for hot loops);
- takes any other backward branch (a different cycle: end without edge);
- reaches the head of an existing trace (traces link, not grow);
- revisits a block already in this trace (irreducible flow guard); or
- hits the block-count limit.
"""

from repro.traces.recorder import (
    STATE_CREATING,
    STATE_EXECUTING,
    TraceRecorder,
)


class MRETRecorder(TraceRecorder):
    """Records superblock traces from hot backward-branch targets."""

    kind = "mret"

    def __init__(self, limits=None, on_trace=None):
        super().__init__(limits=limits, on_trace=on_trace)
        self._current = None
        self._seen_starts = None

    # -- Executing ------------------------------------------------------

    def _observe_executing(self, transition):
        # Dynamo's two start-of-trace conditions: the target of a backward
        # taken branch, or the target of a side exit from an existing
        # trace (this second rule is what records T2 in Figure 2: T2
        # begins at $$inc, T1's side-exit target).
        exit_to_cold = self._cursor_step(transition)
        event = transition.event
        if event is None:
            return
        candidate = None
        if event.is_backward:
            candidate = event.target
        elif exit_to_cold:
            candidate = transition.next_start
        if candidate is None:
            return
        if self.budget_exhausted or self._total_budget_left() <= 0:
            return
        if self.traces.has_entry(candidate):
            return
        if self._bump_hot_addr(candidate):
            # StartCreatingTrace: the next completed block begins at the
            # hot target and becomes the trace head.
            self._current = self.traces.new_trace(kind=self.kind,
                                                  anchor=candidate)
            self._seen_starts = set()
            self._exec_cursor = None
            self.state = STATE_CREATING

    # -- Creating -------------------------------------------------------

    def _observe_creating(self, transition):
        trace = self._current
        block = transition.block

        # AddTBBToTrace
        trace.add_block(block)
        self._seen_starts.add(block.start)
        if len(trace) > 1:
            trace.add_edge(len(trace.tbbs) - 2, len(trace.tbbs) - 1)

        if self._done_recording(transition):
            self._finish_trace(transition)

    def _done_recording(self, transition):
        event = transition.event
        trace = self._current
        if event is None:
            return True  # program ended mid-recording
        next_start = transition.next_start
        if next_start == trace.entry:
            return True  # loop closed
        if event.is_backward:
            return True  # someone else's cycle
        if self.traces.has_entry(next_start):
            return True  # reached an existing trace
        if next_start in self._seen_starts:
            return True  # internal revisit (irreducible flow)
        if len(trace) >= self.limits.max_trace_blocks:
            return True
        if self._total_budget_left() <= len(trace):
            return True
        return False

    def _finish_trace(self, transition):
        trace = self._current
        if transition.next_start is not None and transition.next_start == trace.entry:
            # The superblock cycles back to its own head: $$Tn.last ->
            # $$Tn.head, exactly the Figure 3 cycle edge.
            trace.add_edge(len(trace.tbbs) - 1, 0)
        self._commit(trace)
        self._current = None
        self._seen_starts = None
        self.state = STATE_EXECUTING

    def _finish_pending(self):
        trace = self._current
        if trace is not None and len(trace) > 0:
            self._commit(trace)
        self._current = None
        self._seen_starts = None
