"""TT — Trace Trees (Gal & Franz).

A trace tree is anchored at a hot loop header.  Every recorded path starts
at the anchor and *must* end with a branch back to the anchor; side exits
taken later extend the tree with a fresh path from the exit point back to
the anchor, duplicating the shared tail.  Crucially, trace-tree paths
cannot contain cycles, so nested loops are **unrolled** into the path —
iteration-count variations of inner loops multiply with branch-path
variations, which is exactly why Table 1 shows TT exploding on branchy
integer codes (bzip2's 1.8 GB) while staying tiny on FP codes whose inner
loops iterate too many times to fit in a path (recording aborts at the
path limit, leaving only small inner-loop trees).

The recorder walks its trees alongside execution (a cursor over TBBs) to
detect side exits; extension recording is throttled by a per-exit counter
(``extension_threshold``) and the tree/total budgets in
:class:`~repro.traces.recorder.RecorderLimits` play the role of a bounded
code cache.
"""

from repro.traces.recorder import (
    STATE_CREATING,
    STATE_EXECUTING,
    TraceRecorder,
)

#: Give up on an anchor after this many aborted trunk recordings.
_MAX_TRUNK_ABORTS = 8

#: Default side-exit hotness before an extension is recorded.
DEFAULT_EXTENSION_THRESHOLD = 2


class _PathRecording:
    """An in-flight trunk or extension path."""

    __slots__ = ("trace", "parent_index", "blocks", "first_position")

    def __init__(self, trace, parent_index):
        self.trace = trace
        self.parent_index = parent_index  # None while recording a trunk
        self.blocks = []
        self.first_position = {}  # block start -> earliest path position

    @property
    def is_trunk(self):
        return self.parent_index is None

    def append(self, block):
        self.first_position.setdefault(block.start, len(self.blocks))
        self.blocks.append(block)

    def __len__(self):
        return len(self.blocks)


class TraceTreeRecorder(TraceRecorder):
    """Records anchored trace trees with tail duplication."""

    kind = "tt"

    #: CTT overrides: allow a path to terminate at a loop header already
    #: recorded on the path (link back instead of unrolling/aborting).
    header_termination = False

    def __init__(self, limits=None, on_trace=None,
                 extension_threshold=DEFAULT_EXTENSION_THRESHOLD):
        super().__init__(limits=limits, on_trace=on_trace)
        self.extension_threshold = extension_threshold
        self._cursor = None          # (trace, tbb_index) we are inside
        self._recording = None       # _PathRecording during CREATING
        self._exit_counters = {}     # (trace_id, node_index, target) -> count
        self._trunk_aborts = {}      # anchor -> aborted attempts
        self._saturated = set()      # trace_ids whose tree hit its cap
        self._tree_starts = {}       # trace_id -> {block start -> tbb index}

    # -- Executing ------------------------------------------------------

    def _observe_executing(self, transition):
        event = transition.event
        next_start = transition.next_start

        if next_start is None:  # program ended
            self._cursor = None
            return

        if self._cursor is not None:
            trace, index = self._cursor
            node = trace.tbbs[index]
            successor = node.successors.get(next_start)
            if successor is not None:
                self._cursor = (trace, successor)
                return
            if next_start == trace.entry:
                self._cursor = (trace, 0)
                return
            # Side exit from `node`.
            self._cursor = None
            if self._maybe_extend(trace, index, next_start):
                return

        entered = self.traces.trace_at(next_start)
        if entered is not None:
            self._cursor = (entered, 0)
            return

        if event is not None and event.is_backward:
            self._maybe_start_trunk(event)

    def _maybe_start_trunk(self, event):
        anchor = event.target
        if self.budget_exhausted or self._total_budget_left() <= 0:
            return
        if self.traces.has_entry(anchor):
            return
        if self._trunk_aborts.get(anchor, 0) >= _MAX_TRUNK_ABORTS:
            return
        if self._bump_hot_counter(event):
            pending = self.traces.new_trace(kind=self.kind, anchor=anchor)
            self._recording = _PathRecording(pending, None)
            self.state = STATE_CREATING

    def _maybe_extend(self, trace, node_index, target):
        """Side exit observed; start an extension when it is hot enough."""
        if self.budget_exhausted:
            return False
        if trace.trace_id in self._saturated:
            return False
        if len(trace) >= self.limits.max_tree_tbbs:
            self._saturated.add(trace.trace_id)
            return False
        if self._total_budget_left() <= 0:
            return False
        key = (trace.trace_id, node_index, target)
        count = self._exit_counters.get(key, 0) + 1
        if count < self.extension_threshold:
            self._exit_counters[key] = count
            return False
        self._exit_counters[key] = 0
        self._recording = _PathRecording(trace, node_index)
        self.state = STATE_CREATING
        return True

    # -- Creating -------------------------------------------------------

    def _observe_creating(self, transition):
        recording = self._recording
        recording.append(transition.block)

        event = transition.event
        if event is None:
            self._abort()
            return
        next_start = transition.next_start
        anchor = recording.trace.anchor

        if next_start == anchor:
            self._commit_path(link=None)
            return

        if self.header_termination and event.is_backward:
            if next_start in self.loop_headers:
                # CTT: terminate at a loop header already on this path, or
                # (for extensions) anywhere in the tree — "branch targets
                # within a path [may] be any loop header in that path".
                position = recording.first_position.get(next_start)
                if position is not None:
                    self._commit_path(link=("path", position))
                    return
                tree_index = self._tree_starts.get(
                    recording.trace.trace_id, {}
                ).get(next_start)
                if tree_index is not None:
                    self._commit_path(link=("tree", tree_index))
                    return
            if event.kind in ("cond", "jmp"):
                # A *branch* cycle we cannot close compactly: abort rather
                # than unroll.  Backward-landing calls/returns/indirects
                # are not loop structure; recording continues through them
                # (how else would a dispatch loop's callees be covered).
                self._abort()
                return

        # Plain TT keeps recording through inner back edges: the inner
        # loop unrolls into the path until a limit trips.
        if len(recording) >= self.limits.max_path_blocks:
            self._abort()
            return
        tree_size = len(recording.trace) + len(recording)
        if tree_size >= self.limits.max_tree_tbbs:
            self._saturated.add(recording.trace.trace_id)
            self._abort()
            return
        if self._total_budget_left() <= len(recording):
            self._abort()

    def _commit_path(self, link):
        """Commit the path; ``link`` is None (anchor), ("path", pos) for a
        link-back within the recorded path, or ("tree", index) for a CTT
        link into an existing tree node."""
        recording = self._recording
        trace = recording.trace
        base = len(trace.tbbs)
        starts = self._tree_starts.setdefault(trace.trace_id, {})
        for offset, block in enumerate(recording.blocks):
            trace.add_block(block)
            starts.setdefault(block.start, base + offset)
        chain_start = base
        if not recording.is_trunk:
            trace.add_edge(recording.parent_index, base)
        for offset in range(len(recording.blocks) - 1):
            trace.add_edge(chain_start + offset, chain_start + offset + 1)
        last = chain_start + len(recording.blocks) - 1
        if link is None:
            target_index = 0  # back to the anchor/root
        elif link[0] == "path":
            target_index = chain_start + link[1]
        else:
            target_index = link[1]
        trace.add_edge(last, target_index)
        if recording.is_trunk:
            self._commit(trace)
        self._recording = None
        self.state = STATE_EXECUTING
        # Execution is now at the link target; resume the cursor there.
        self._cursor = (trace, target_index)

    def _abort(self):
        recording = self._recording
        if recording.is_trunk:
            anchor = recording.trace.anchor
            self._trunk_aborts[anchor] = self._trunk_aborts.get(anchor, 0) + 1
        self._recording = None
        self._cursor = None
        self.state = STATE_EXECUTING

    def _finish_pending(self):
        if self._recording is not None:
            self._abort()
