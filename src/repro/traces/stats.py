"""Trace-set statistics.

Quantifies the structural properties the paper discusses qualitatively:

- the **duplication factor** — mean number of TBB instances per distinct
  basic block (Definition 2 measured).  Tail-duplicating strategies (TT)
  have high factors; "Compact" trace trees exist precisely to lower it;
  MRET sits near 1 plus its exit-triggered tail copies.
- block-size and trace-length distributions, edges/exits per TBB — the
  drivers of the Table 1 byte accounting.
"""


class TraceSetStats:
    """Computed statistics for one trace set."""

    __slots__ = (
        "n_traces",
        "n_tbbs",
        "n_distinct_blocks",
        "duplication_factor",
        "max_block_duplication",
        "mean_trace_length",
        "max_trace_length",
        "mean_block_instrs",
        "mean_block_bytes",
        "edges_per_tbb",
        "exits_per_tbb",
        "cyclic_traces",
    )

    def __init__(self, **values):
        for name in self.__slots__:
            setattr(self, name, values[name])

    def to_text(self):
        lines = [
            "traces:                %d" % self.n_traces,
            "TBBs:                  %d" % self.n_tbbs,
            "distinct blocks:       %d" % self.n_distinct_blocks,
            "duplication factor:    %.2f (max %d)"
            % (self.duplication_factor, self.max_block_duplication),
            "trace length:          mean %.1f, max %d TBBs"
            % (self.mean_trace_length, self.max_trace_length),
            "block size:            mean %.1f instrs / %.1f bytes"
            % (self.mean_block_instrs, self.mean_block_bytes),
            "edges per TBB:         %.2f" % self.edges_per_tbb,
            "side exits per TBB:    %.2f" % self.exits_per_tbb,
            "cyclic traces:         %d" % self.cyclic_traces,
        ]
        return "\n".join(lines)

    def __repr__(self):
        return "<TraceSetStats traces=%d tbbs=%d dup=%.2f>" % (
            self.n_traces,
            self.n_tbbs,
            self.duplication_factor,
        )


def compute_stats(trace_set):
    """Compute :class:`TraceSetStats` for ``trace_set``."""
    block_instances = {}
    total_instrs = 0
    total_bytes = 0
    total_edges = 0
    total_exits = 0
    lengths = []
    cyclic = 0
    for trace in trace_set:
        lengths.append(len(trace))
        has_cycle = False
        for tbb in trace:
            key = tbb.block.key
            block_instances[key] = block_instances.get(key, 0) + 1
            total_instrs += tbb.block.n_instrs
            total_bytes += tbb.block.size_bytes
            total_edges += len(tbb.successors)
            total_exits += len(tbb.exit_labels())
            if any(successor <= tbb.index for successor in
                   tbb.successors.values()):
                has_cycle = True
        if has_cycle:
            cyclic += 1

    n_tbbs = sum(lengths)
    n_blocks = len(block_instances)
    return TraceSetStats(
        n_traces=len(trace_set),
        n_tbbs=n_tbbs,
        n_distinct_blocks=n_blocks,
        duplication_factor=(n_tbbs / n_blocks) if n_blocks else 0.0,
        max_block_duplication=max(block_instances.values(), default=0),
        mean_trace_length=(n_tbbs / len(lengths)) if lengths else 0.0,
        max_trace_length=max(lengths, default=0),
        mean_block_instrs=(total_instrs / n_tbbs) if n_tbbs else 0.0,
        mean_block_bytes=(total_bytes / n_tbbs) if n_tbbs else 0.0,
        edges_per_tbb=(total_edges / n_tbbs) if n_tbbs else 0.0,
        exits_per_tbb=(total_exits / n_tbbs) if n_tbbs else 0.0,
        cyclic_traces=cyclic,
    )


def compare_strategies(trace_sets):
    """Side-by-side stats for ``{strategy_name: trace_set}``.

    Returns ``{strategy_name: TraceSetStats}``; render with ``to_text``.
    The interesting read: TT's duplication factor dwarfs CTT's, which
    exceeds MRET's — the quantified version of the paper's Section 5
    narrative about CTT "address[ing] the code duplication experienced
    by TTs".
    """
    return {name: compute_stats(ts) for name, ts in trace_sets.items()}
