"""MFET — Most Frequently Executed Tail (related-work extension).

MFET instruments *every* edge of the dynamic execution rather than only
back edges, trading profiling overhead for earlier/finer trigger points
(the paper cites UQBT; Duesterwald & Bala's "less is more" argued MRET's
cheaper counters predict paths just as well).  It is included as the
extension strategy: the recording rules are MRET's, but the trigger is a
counter on every taken edge, so hot non-loop paths (e.g. frequently taken
call targets) also become trace heads.
"""

from repro.traces.mret import MRETRecorder
from repro.traces.recorder import STATE_CREATING


class MFETRecorder(MRETRecorder):
    """Edge-profile-triggered variant of the tail recorder."""

    kind = "mfet"

    def __init__(self, limits=None, on_trace=None):
        super().__init__(limits=limits, on_trace=on_trace)
        self._edge_counters = {}

    def _observe_executing(self, transition):
        self._cursor_step(transition)
        event = transition.event
        if event is None or not event.taken:
            return
        if self.budget_exhausted or self._total_budget_left() <= 0:
            return
        if self.traces.has_entry(event.target):
            return
        key = (event.pc, event.target)
        count = self._edge_counters.get(key, 0) + 1
        self._edge_counters[key] = count
        if count == self.limits.hot_threshold:
            self._edge_counters[key] = 0
            self._current = self.traces.new_trace(kind=self.kind,
                                                  anchor=event.target)
            self._seen_starts = set()
            self._exec_cursor = None
            self.state = STATE_CREATING
