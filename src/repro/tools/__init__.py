"""Command-line tools mirroring the paper's experimental binaries.

``python -m repro.tools <command>``:

- ``record`` — run a program (a named benchmark or an SX86 source file)
  under the StarDBT baseline and serialize the recorded traces, exactly
  what the paper's StarDBT side produced;
- ``replay`` — load a trace file and replay it via TEA under MiniPin,
  reporting coverage, slowdown and optionally a profile — the paper's
  pintool;
- ``info`` — summarize a trace file (traces, TBBs, sizes, savings);
- ``tea info`` — summarize a TEA file in either format (the versioned
  JSON document or the binary ``TEAB`` store snapshot): format,
  state/transition/head counts, profile presence, on-disk size.

The two sides communicate only through the trace file, so they can run
in different processes — the cross-environment workflow of Section 3.1.
"""
