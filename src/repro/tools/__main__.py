"""CLI entry point for the record/replay/info tools.

Examples::

    python -m repro.tools record --benchmark 176.gcc --out traces.json
    python -m repro.tools record --source program.s --strategy tt --out t.json
    python -m repro.tools replay --benchmark 176.gcc --traces traces.json
    python -m repro.tools replay --source program.s --traces t.json \\
        --config no_global_local --profile
    python -m repro.tools info --traces traces.json
    python -m repro.tools tea info tea.json
    python -m repro.tools tea info --format json snapshot.teab
    python -m repro.tools minimize snapshot.teab --out minimized.teab
    python -m repro.tools minimize snapshot.teab --budget 64 --format json
    python -m repro.tools diff before.teab after.teab
    python -m repro.tools diff --format json a.teab b.teab
    python -m repro.tools store gc --dir .tea_store
    python -m repro.tools metrics --benchmark 176.gcc --traces traces.json
    python -m repro.tools metrics --source program.s --format text \\
        --events 64 --out metrics.json
    python -m repro.tools cache
    python -m repro.tools cache --dir .repro_cache --clear
    python -m repro.tools verify snapshot.teab
    python -m repro.tools verify --benchmark 176.gcc tea.json
    python -m repro.tools verify --format sarif --out report.sarif *.teab
    python -m repro.tools cluster up --store .tea_store --workers 3
    python -m repro.tools cluster plan --store .tea_store --worker w1 \\
        --worker w2
"""

import argparse
import json
import sys

from repro.cfg.basic_block import BlockIndex
from repro.core import MemoryModel, ReplayConfig, TeaProfile
from repro.dbt import StarDBT
from repro.errors import ReproError
from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.harness.reporting import render_metrics
from repro.isa import assemble
from repro.obs import Observability, snapshot_to_json
from repro.pin import Pin, TeaReplayTool, run_native
from repro.traces import STRATEGIES, load_trace_set, save_trace_set
from repro.traces.recorder import RecorderLimits
from repro.workloads import BENCHMARKS, load_benchmark

CONFIGS = {
    "global_local": ReplayConfig.global_local,
    "global_no_local": ReplayConfig.global_no_local,
    "no_global_local": ReplayConfig.no_global_local,
    "no_global_no_local": ReplayConfig.no_global_no_local,
}


def _add_program_arguments(parser):
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--benchmark", choices=sorted(BENCHMARKS),
        help="one of the 26 built-in SPEC-shaped workloads",
    )
    group.add_argument("--source", help="an SX86 assembly source file")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale (benchmarks only; default 1.0)",
    )


def _load_program(args):
    if args.benchmark:
        return load_benchmark(args.benchmark, scale=args.scale).program
    with open(args.source) as handle:
        return assemble(handle.read())


def _cmd_record(args):
    program = _load_program(args)
    limits = RecorderLimits(hot_threshold=args.threshold)
    runtime = StarDBT(program, strategy=args.strategy, limits=limits)
    result = runtime.run()
    save_trace_set(result.trace_set, args.out)
    model = MemoryModel()
    dbt_kb, tea_kb, savings = model.table1_row(result.trace_set)
    print("executed %d instructions under the DBT (%.2f Mcycles)"
          % (result.instrs_dbt, result.megacycles))
    print("recorded %d %s traces (%d TBBs), coverage %.1f%%"
          % (len(result.trace_set), args.strategy.upper(),
             result.trace_set.n_tbbs, 100 * result.coverage))
    print("representation: DBT %.1f KB / TEA %.1f KB (%.0f%% savings)"
          % (dbt_kb, tea_kb, 100 * savings))
    print("traces written to %s" % args.out)
    return 0


def _cmd_replay(args):
    program = _load_program(args)
    trace_set = load_trace_set(args.traces, BlockIndex(program))
    if args.profile and args.engine in ("compiled", "jit"):
        print("error: --profile needs the object engine (the %s "
              "engine replays packed int streams, which carry nothing "
              "to profile); drop --profile or use --engine object"
              % args.engine,
              file=sys.stderr)
        return 2
    profile = TeaProfile() if args.profile else None
    tool = TeaReplayTool(
        trace_set=trace_set,
        config=CONFIGS[args.config](),
        profile=profile,
        link_traces=args.link_traces,
        engine=args.engine,
    )
    result = Pin(program, tool=tool).run()
    native = run_native(program)
    stats = tool.stats
    print("loaded %d traces; TEA: %d states, %d transitions"
          % (len(trace_set), tool.tea.n_states, tool.tea.n_transitions))
    print("replay coverage %.1f%% (%d of %d Pin-counted instructions)"
          % (100 * tool.coverage, stats.covered_pin, stats.total_pin))
    print("time %.2f Mcycles (%.1fx native), config %s, engine %s"
          % (result.megacycles, result.cycles / native.cycles,
             tool.config.describe(), args.engine))
    print("transition function: %d in-trace hits, %d cache hits, "
          "%d directory probes, %d NTE blocks"
          % (stats.in_trace_hits, stats.cache_hits,
             stats.directory_hits + stats.directory_misses,
             stats.nte_probes))
    if profile is not None:
        by_sid = {state.sid: state for state in tool.tea.states}
        print("hottest trace blocks:")
        for sid, count in profile.hottest_states(args.top):
            print("  %-24s x%d" % (by_sid[sid].name, count))
    return 0


def _cmd_metrics(args):
    """Replay with full observability on; dump the metrics snapshot."""
    program = _load_program(args)
    if args.traces:
        trace_set = load_trace_set(args.traces, BlockIndex(program))
    else:
        # No trace file given: record MRET traces in-process first so
        # the command is self-contained.
        limits = RecorderLimits(hot_threshold=args.threshold)
        trace_set = StarDBT(program, strategy="mret", limits=limits).run().trace_set
    obs = Observability(trace_capacity=args.events)
    tool = TeaReplayTool(trace_set=trace_set, config=CONFIGS[args.config](),
                         batch_size=args.batch or None, engine=args.engine)
    Pin(program, tool=tool, obs=obs).run()
    snapshot = tool.snapshot()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(snapshot_to_json(snapshot))
            handle.write("\n")
        print("metrics written to %s" % args.out)
    if args.format == "text":
        print(render_metrics(snapshot))
    elif not args.out:
        print(snapshot_to_json(snapshot))
    return 0


def _cmd_cache(args):
    """Inspect (or clear) the harness's persistent result cache."""
    cache = ResultCache(args.dir)
    entries = len(cache)
    print("cache %s: %d entries, %d bytes"
          % (args.dir, entries, cache.total_bytes() if entries else 0))
    if args.clear:
        removed = cache.clear()
        print("cleared %d entries" % removed)
    return 0


def _cmd_tea_info(args):
    """Summarize a TEA file — JSON document or binary TEAB snapshot."""
    from repro.store import describe_snapshot

    info = describe_snapshot(args.file)
    if args.format == "json":
        print(json.dumps(dict(info, file=args.file), indent=2,
                         sort_keys=True))
        return 0
    print("TEA snapshot: %s (%s format v%s)"
          % (args.file, info["format"], info["version"]))
    print("%d traces (kind %s), %d TBBs, %d edges"
          % (info["traces"], info["kind"], info["tbbs"], info["edges"]))
    print("automaton: %d states, %d transitions, %d heads"
          % (info["states"], info["transitions"], info["heads"]))
    print("shape: %d of %d states share a transition signature "
          "(mergeable estimate; see repro tools minimize)"
          % (info["mergeable_estimate"], info["states"]))
    print("profile: %s" % ("present" if info["profile"] else "absent"))
    if info.get("meta"):
        print("meta: %s" % json.dumps(info["meta"], sort_keys=True))
    print("on disk: %d bytes" % info["bytes"])
    if info.get("sections"):
        # v2 snapshots: the mmap-able section table, straight from the
        # header — nothing was decoded to print this.
        print("sections:")
        for section in info["sections"]:
            count = section.get("count")
            print("  %-14s %8d bytes at %-8d%s"
                  % (section["name"], section["bytes"], section["offset"],
                     (" (%d items)" % count) if count else ""))
    return 0


def _load_tea_file(path, args):
    """Load ``(trace_set, tea, origin_key)`` from a TEAB or JSON file.

    TEAB snapshots rebuild their program from ``--benchmark`` /
    ``--source`` when given, falling back to their own benchmark meta
    (the service convention); JSON documents require an explicit
    program.  ``origin_key`` is the snapshot content key for TEAB input
    (provenance for minimized output), ``None`` for JSON documents.
    """
    from repro.core import build_tea
    from repro.errors import SerializationError
    from repro.store import load_tea_binary, snapshot_key
    from repro.verify import program_for_meta

    with open(path, "rb") as handle:
        data = handle.read()
    program = None
    if args.benchmark or args.source:
        program = _load_program(args)
    if data[:4] == b"TEAB":
        if program is None:
            from repro.store import peek_tea_binary

            program = program_for_meta(peek_tea_binary(data).get("meta"))
            if program is None:
                raise SerializationError(
                    "%s carries no benchmark meta; pass --benchmark or "
                    "--source" % path
                )
        trace_set, tea, _profile = load_tea_binary(data, BlockIndex(program))
        return trace_set, tea, snapshot_key(data)
    document = json.loads(data.decode("utf-8"))
    if program is None:
        raise SerializationError(
            "the JSON document %s requires a program image (pass "
            "--benchmark or --source)" % path
        )
    index = BlockIndex(program)
    if isinstance(document, dict) and isinstance(document.get("traces"), dict):
        from repro.core.serialization import tea_from_json

        trace_set, tea, _profile = tea_from_json(document, index)
    else:
        from repro.traces.serialization import trace_set_from_json

        trace_set = trace_set_from_json(document, index)
        tea = build_tea(trace_set)
    return trace_set, tea, None


def _cmd_minimize(args):
    """Minimize a TEA snapshot; optionally write the minimized TEAB."""
    from repro.minimize import minimize_tea
    from repro.store import dump_tea_binary, peek_tea_binary
    from repro.util import atomic_write_bytes
    from repro.verify import verify_minimization

    trace_set, tea, origin_key = _load_tea_file(args.file, args)
    result = minimize_tea(tea, mode=args.mode, budget=args.budget)
    report = verify_minimization(result, trace_set=trace_set,
                                 source=args.file)
    summary = result.describe()
    summary["verified"] = report.ok(strict=True)
    if args.out:
        with open(args.file, "rb") as handle:
            in_meta = (peek_tea_binary(handle.read()).get("meta")
                       if origin_key else None) or {}
        out_meta = dict(in_meta)
        if origin_key:
            out_meta["minimized_from"] = origin_key
        out_meta["minimize"] = result.describe()
        if out_meta.get("label"):
            out_meta["label"] = "%s-min" % out_meta["label"]
        atomic_write_bytes(
            args.out,
            dump_tea_binary(trace_set, tea=result.tea, meta=out_meta),
        )
        summary["out"] = args.out
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print("minimized %s (%s mode%s)"
              % (args.file, result.mode,
                 ", budget %d" % result.budget if result.budget else ""))
        print("states: %d -> %d (%d merged, %d spilled; %.1f%% smaller)"
              % (result.states_before, result.states_after, result.merged,
                 len(result.spilled), 100 * result.state_reduction))
        print("transitions: %d -> %d; %d heads kept"
              % (result.transitions_before, result.transitions_after,
                 result.tea.n_traces))
        if args.out:
            print("minimized snapshot written to %s" % args.out)
        if not summary["verified"]:
            print(report.render_text(strict=True))
    if not summary["verified"]:
        print("error: minimization failed verification", file=sys.stderr)
        return 1
    return 0


def _cmd_diff(args):
    """Diff two TEA files; exit 0 identical, 1 different, 2 error."""
    from repro.compare import diff_automata
    from repro.errors import SerializationError
    from repro.store import compile_tea_binary

    def load_side(path):
        # TEAB bytes diff via their compiled lowering — no program
        # image needed; JSON documents go through the full loader.
        with open(path, "rb") as handle:
            data = handle.read()
        if data[:4] == b"TEAB" and not (args.benchmark or args.source):
            return compile_tea_binary(data, verify=False)
        _trace_set, tea, _origin = _load_tea_file(path, args)
        return tea

    try:
        side_a = load_side(args.a)
        side_b = load_side(args.b)
    except (ReproError, OSError, json.JSONDecodeError,
            UnicodeDecodeError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    try:
        diff = diff_automata(side_a, side_b, label_a=args.a, label_b=args.b)
    except SerializationError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(diff.to_json(), indent=2, sort_keys=True))
    else:
        print(diff.render_text())
    return 0 if diff.identical else 1


def _cmd_store_gc(args):
    """Prune superseded snapshots and orphaned cached JIT sources."""
    from repro.store import AutomatonStore

    store = AutomatonStore(args.dir)
    removed = store.gc()
    print("store %s: %d snapshots, removed %d superseded/orphaned "
          "file(s)" % (args.dir, len(store), removed))
    return 0


def _cmd_store_migrate(args):
    """Re-encode every snapshot in a store into the target format."""
    from repro.store import AutomatonStore

    store = AutomatonStore(args.dir)
    migrated = store.migrate(to_version=args.to_version)
    for old_key, new_key in sorted(migrated.items()):
        print("%s -> %s" % (old_key, new_key))
    print("store %s: migrated %d snapshot(s) to v%d (%d total)"
          % (args.dir, len(migrated), args.to_version, len(store)))
    return 0


def _cmd_verify(args):
    """Statically verify TEA artifacts.

    Exit codes follow the shared convention: 0 clean, 1 blocking
    findings, 2 usage error (same as ``audit`` and ``diff``).
    """
    from repro.errors import SerializationError
    from repro.verify import (
        all_rules,
        default_engine,
        reports_to_sarif,
        rule_by_id,
        verify_path,
    )

    for rule_id in args.disable:
        try:
            rule_by_id(rule_id)
        except KeyError:
            print("error: unknown rule id %r (see docs/"
                  "static_verification.md)" % rule_id, file=sys.stderr)
            return 2
    program = None
    if args.benchmark or args.source:
        program = _load_program(args)
    engine = default_engine(disabled=args.disable, strict=args.strict)
    reports = []
    failed = False
    for path in args.files:
        try:
            report = verify_path(path, program=program, engine=engine)
        except SerializationError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        reports.append(report)
        if not report.ok(strict=args.strict):
            failed = True
        if args.format == "text":
            print(report.render_text(strict=args.strict))
    if args.format == "json":
        body = json.dumps([report.to_json() for report in reports],
                          indent=2, sort_keys=True)
    elif args.format == "sarif":
        body = json.dumps(reports_to_sarif(reports, all_rules()),
                          indent=2, sort_keys=True)
    else:
        body = None
    if body is not None:
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body)
                handle.write("\n")
            print("%s report written to %s" % (args.format, args.out))
        else:
            print(body)
    elif args.out:
        with open(args.out, "w") as handle:
            for report in reports:
                handle.write(report.render_text(strict=args.strict))
                handle.write("\n")
        print("text report written to %s" % args.out)
    return 1 if failed else 0


def _cmd_audit(args):
    """Fleet audit: walk a whole store (plus the service sources).

    Exit codes follow the shared convention: 0 clean, 1 blocking
    findings (with ``--baseline``: *new* blocking findings), 2 usage
    error (same as ``verify`` and ``diff``).
    """
    import os

    from repro.audit import (
        AuditCache,
        audit_store,
        diff_new_results,
        load_baseline,
    )
    from repro.verify import all_rules, reports_to_sarif, rule_by_id

    for rule_id in args.disable:
        try:
            rule_by_id(rule_id)
        except KeyError:
            print("error: unknown rule id %r (see docs/"
                  "static_verification.md)" % rule_id, file=sys.stderr)
            return 2
    if not os.path.isdir(args.store):
        print("error: %s is not a store directory" % args.store,
              file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print("error: cannot load baseline: %s" % error,
                  file=sys.stderr)
            return 2
    cache = None if args.no_cache else AuditCache(args.cache_dir)
    code_paths = None
    if args.no_code:
        code_paths = ()
    elif args.code:
        code_paths = args.code
    result = audit_store(
        args.store, code_paths=code_paths, jobs=args.jobs, cache=cache,
        disabled=args.disable, strict=args.strict,
    )
    reports = result.report_objects()
    sarif = reports_to_sarif(reports, all_rules())
    failed = not result.ok()
    new_count = suppressed = 0
    if baseline is not None:
        sarif, new_count, suppressed = diff_new_results(sarif, baseline)
        blocking = ("error", "warning") if args.strict else ("error",)
        failed = any(
            res.get("level") in blocking
            for run in sarif.get("runs") or []
            for res in run.get("results") or []
        )
    if args.format == "sarif":
        body = json.dumps(sarif, indent=2, sort_keys=True)
    elif args.format == "json":
        body = json.dumps(result.reports, indent=2, sort_keys=True)
    else:
        lines = []
        for report in reports:
            if report.diagnostics:
                lines.append(report.render_text(strict=args.strict))
        body = "\n".join(lines) if lines else None
    if body is not None:
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body)
                handle.write("\n")
            print("%s report written to %s" % (args.format, args.out))
        else:
            print(body)
    stats = result.stats
    print("audit: %d artifact(s), %d cached, %d cold, %d unreadable, "
          "%.2fs (catalog %s, jobs=%d)"
          % (stats["artifacts"], stats["cache_hits"], stats["cold_runs"],
             stats["unreadable"], stats["elapsed"],
             stats["catalog_version"], stats["jobs"]))
    if baseline is not None:
        print("baseline: %d new finding(s), %d suppressed"
              % (new_count, suppressed))
    return 1 if failed else 0


def _cmd_info(args):
    with open(args.traces) as handle:
        document = json.load(handle)
    traces = document.get("traces", [])
    n_tbbs = sum(len(t["tbbs"]) for t in traces)
    n_edges = sum(len(t["edges"]) for t in traces)
    print("trace file: %s (format v%s, kind %s)"
          % (args.traces, document.get("version"), document.get("kind")))
    print("%d traces, %d TBBs, %d edges" % (len(traces), n_tbbs, n_edges))
    for trace in traces[:args.top]:
        print("  T%-4s kind=%-5s entry=%#x  %d TBBs %d edges"
              % (trace["id"], trace["kind"], trace["tbbs"][0]["start"],
                 len(trace["tbbs"]), len(trace["edges"])))
    if len(traces) > args.top:
        print("  ... and %d more" % (len(traces) - args.top))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="record / replay / inspect TEA trace files",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser("record", help="record traces under the DBT")
    _add_program_arguments(record)
    record.add_argument("--strategy", choices=sorted(STRATEGIES),
                        default="mret")
    record.add_argument("--threshold", type=int, default=30,
                        help="hot threshold (default 30)")
    record.add_argument("--out", required=True, help="trace file to write")

    replay = commands.add_parser("replay", help="replay traces via TEA")
    _add_program_arguments(replay)
    replay.add_argument("--traces", required=True, help="trace file to load")
    replay.add_argument("--config", choices=sorted(CONFIGS),
                        default="global_local")
    replay.add_argument("--engine", choices=("object", "compiled", "jit"),
                        default="object",
                        help="replay engine: object-graph walk, the "
                             "compiled flat-table engine, or per-automaton "
                             "generated code (default object)")
    replay.add_argument("--profile", action="store_true",
                        help="collect and print a per-TBB profile "
                             "(object engine only)")
    replay.add_argument("--link-traces", action="store_true",
                        help="materialise static trace-to-trace transitions")
    replay.add_argument("--top", type=int, default=8,
                        help="profile entries to print")

    info = commands.add_parser("info", help="summarize a trace file")
    info.add_argument("--traces", required=True)
    info.add_argument("--top", type=int, default=10)

    tea = commands.add_parser(
        "tea",
        help="TEA snapshot utilities (see repro.store)",
    )
    tea_commands = tea.add_subparsers(dest="tea_command", required=True)
    tea_info = tea_commands.add_parser(
        "info",
        help="summarize a TEA file (JSON document or binary TEAB snapshot)",
    )
    tea_info.add_argument("file", help="path to the TEA file")
    tea_info.add_argument("--format", choices=("text", "json"),
                          default="text")

    def _add_optional_program_arguments(target):
        group = target.add_mutually_exclusive_group()
        group.add_argument("--benchmark", choices=sorted(BENCHMARKS),
                           help="program image (TEAB snapshots can carry "
                                "it in their meta; JSON documents require "
                                "one)")
        group.add_argument("--source", help="an SX86 assembly source file")
        target.add_argument("--scale", type=float, default=1.0,
                            help="workload scale (benchmarks only)")

    minimize = commands.add_parser(
        "minimize",
        help="merge bisimilar TEA states (see docs/minimize_and_diff.md)",
    )
    minimize.add_argument("file", help="TEAB snapshot or JSON TEA document")
    minimize.add_argument("--mode", choices=("exact", "aggressive"),
                          default="exact",
                          help="exact keeps replay accounting bit-exact "
                               "(default); aggressive merges maximally")
    minimize.add_argument("--budget", type=int, default=None,
                          help="cap the minimized state count, spilling "
                               "the coldest states")
    minimize.add_argument("--out", help="write the minimized TEAB snapshot "
                                        "here (with provenance meta)")
    minimize.add_argument("--format", choices=("text", "json"),
                          default="text")
    _add_optional_program_arguments(minimize)

    diff = commands.add_parser(
        "diff",
        help="structural diff of two TEA files "
             "(see docs/minimize_and_diff.md)",
    )
    diff.add_argument("a", help="left TEA file (TEAB or JSON)")
    diff.add_argument("b", help="right TEA file (TEAB or JSON)")
    diff.add_argument("--format", choices=("text", "json"), default="text")
    _add_optional_program_arguments(diff)

    store = commands.add_parser(
        "store",
        help="snapshot store maintenance (see repro.store)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_gc = store_commands.add_parser(
        "gc",
        help="remove snapshots superseded by a hot-reload swap and "
             "orphaned cached .jit.py sources",
    )
    store_gc.add_argument("--dir", default=".tea_store",
                          help="store directory (default %(default)s)")
    store_migrate = store_commands.add_parser(
        "migrate",
        help="re-encode every snapshot into the target TEAB format "
             "(v2 = mmap-able sections, v1 = legacy varint stream)",
    )
    store_migrate.add_argument("--dir", default=".tea_store",
                               help="store directory (default %(default)s)")
    store_migrate.add_argument("--to-version", type=int, choices=(1, 2),
                               default=2,
                               help="target format version (default 2)")

    metrics = commands.add_parser(
        "metrics",
        help="replay with observability on and dump the metrics snapshot "
             "(see docs/observability.md)",
    )
    _add_program_arguments(metrics)
    metrics.add_argument("--traces",
                         help="trace file to replay (default: record MRET "
                              "traces in-process first)")
    metrics.add_argument("--config", choices=sorted(CONFIGS),
                         default="global_local")
    metrics.add_argument("--threshold", type=int, default=30,
                         help="hot threshold for in-process recording")
    metrics.add_argument("--events", type=int, default=128,
                         help="event-tracer ring capacity (default 128)")
    metrics.add_argument("--batch", type=int, default=0,
                         help="feed the replayer in batches of N "
                              "transitions (0 = per-call step; the "
                              "compiled engine always batches)")
    metrics.add_argument("--engine", choices=("object", "compiled", "jit"),
                         default="object",
                         help="replay engine (default object)")
    metrics.add_argument("--format", choices=("json", "text"),
                         default="json")
    metrics.add_argument("--out", help="write the JSON snapshot here")

    verify = commands.add_parser(
        "verify",
        help="statically verify TEA artifacts "
             "(see docs/static_verification.md)",
    )
    verify.add_argument("files", nargs="+", metavar="FILE",
                        help="TEAB snapshots and/or JSON TEA documents")
    group = verify.add_mutually_exclusive_group()
    group.add_argument("--benchmark", choices=sorted(BENCHMARKS),
                       help="program image for the CFG rules (JSON "
                            "documents require one; TEAB snapshots can "
                            "carry it in their meta)")
    group.add_argument("--source", help="an SX86 assembly source file")
    verify.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (benchmarks only)")
    verify.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    verify.add_argument("--out", help="write the report here instead of "
                                      "stdout")
    verify.add_argument("--strict", action="store_true",
                        help="treat warnings as blocking")
    verify.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="disable one rule id (repeatable)")

    audit = commands.add_parser(
        "audit",
        help="fleet-scale incremental audit of a snapshot store "
             "(see docs/audit.md)",
    )
    audit.add_argument("store", metavar="STORE",
                       help="AutomatonStore directory to audit")
    audit.add_argument("--code", action="append", default=[],
                       metavar="PATH",
                       help="extra concurrency-lint source target "
                            "(repeatable; default: the shipped service/"
                            "cluster/mapping sources)")
    audit.add_argument("--no-code", action="store_true",
                       help="audit snapshots and JIT sources only")
    audit.add_argument("--jobs", type=int, default=1,
                       help="parallel audit workers (default 1)")
    audit.add_argument("--cache-dir", default=".repro_audit_cache",
                       help="result cache directory "
                            "(default %(default)s)")
    audit.add_argument("--no-cache", action="store_true",
                       help="disable the audit result cache")
    audit.add_argument("--baseline", metavar="SARIF",
                       help="previous SARIF log; report only new "
                            "findings")
    audit.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text")
    audit.add_argument("--out", help="write the report here instead of "
                                     "stdout")
    audit.add_argument("--strict", action="store_true",
                       help="treat warnings as blocking")
    audit.add_argument("--disable", action="append", default=[],
                       metavar="RULE",
                       help="disable one rule id (repeatable)")

    cache = commands.add_parser(
        "cache",
        help="inspect or clear the harness's persistent result cache",
    )
    cache.add_argument("--dir", default=DEFAULT_CACHE_DIR,
                       help="cache directory (default %(default)s)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached stage summary")

    cluster = commands.add_parser(
        "cluster",
        help="sharded replay cluster: router, workers, routing plans "
             "(forwards to python -m repro.cluster; see docs/cluster.md)",
        add_help=False,
    )
    cluster.add_argument("cluster_args", nargs=argparse.REMAINDER)

    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.command == "cluster":
        from repro.cluster.__main__ import main as cluster_main

        return cluster_main(args.cluster_args)
    try:
        if args.command == "record":
            return _cmd_record(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "tea":
            return _cmd_tea_info(args)
        if args.command == "minimize":
            return _cmd_minimize(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "store":
            if args.store_command == "migrate":
                return _cmd_store_migrate(args)
            return _cmd_store_gc(args)
        return _cmd_info(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
