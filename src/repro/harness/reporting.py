"""Table rendering with GeoMean footer rows, paper style.

Also renders observability snapshots (``repro.obs``) as plain text for
the ``repro tools metrics`` command and harness diagnostics.
"""

import math


def geomean(values):
    """Geometric mean of positive values (zeros/negatives are skipped)."""
    usable = [value for value in values if value > 0]
    if not usable:
        return 0.0
    return math.exp(sum(math.log(value) for value in usable) / len(usable))


def render_metrics(snapshot):
    """Plain-text rendering of an observability snapshot dict.

    Accepts the dicts produced by ``Observability.snapshot()`` /
    ``TeaReplayer.snapshot()``: a ``metrics`` section (counters, gauges,
    timers), optional ``trace`` ring content, and optional ``cost`` /
    ``recording`` extras.
    """
    lines = []
    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append("  %-32s %16d" % (name, value))
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append("  %-32s %16s" % (name, value))
    timers = metrics.get("timers", {})
    if timers:
        lines.append("timers:")
        for name, timing in timers.items():
            lines.append(
                "  %-32s %13.6fs x%d"
                % (name, timing["seconds"], timing["count"])
            )
    cost = snapshot.get("cost")
    if cost:
        lines.append("cost: %.0f cycles" % cost["cycles"])
        for category, cycles in sorted(
            cost["breakdown"].items(), key=lambda item: -item[1]
        ):
            lines.append("  %-32s %16.0f" % (category, cycles))
    trace = snapshot.get("trace")
    if trace:
        lines.append(
            "trace ring: %d/%d events (%d dropped)"
            % (len(trace["events"]), trace["capacity"], trace["dropped"])
        )
        for event in trace["events"]:
            lines.append(
                "  #%-6d %-24s %s"
                % (event["seq"], event["category"], event["payload"])
            )
    return "\n".join(lines) if lines else "(no metrics)"


class Column:
    """One table column: a header, a value kind, and a geomean policy."""

    __slots__ = ("header", "kind", "in_geomean")

    def __init__(self, header, kind="text", in_geomean=False):
        if kind not in ("text", "int", "float", "percent", "ratio", "kb"):
            raise ValueError("unknown column kind %r" % kind)
        self.header = header
        self.kind = kind
        self.in_geomean = in_geomean

    def render(self, value):
        if value is None:
            return ""
        if self.kind == "text":
            return str(value)
        if self.kind == "int":
            return "%d" % round(value)
        if self.kind == "float":
            return "%.1f" % value
        if self.kind == "ratio":
            return "%.2f" % value
        if self.kind == "kb":
            return "%.1f" % value if value < 100 else "%d" % round(value)
        # percent
        percent = 100.0 * value
        return "100%" if percent >= 99.95 else "%.1f%%" % percent


class Table:
    """A rendered experiment table."""

    def __init__(self, title, columns, note=None):
        self.title = title
        self.columns = columns
        self.rows = []
        self.note = note

    def add_row(self, values):
        if len(values) != len(self.columns):
            raise ValueError(
                "row has %d cells, table has %d columns"
                % (len(values), len(self.columns))
            )
        self.rows.append(list(values))

    def geomean_row(self, label="GeoMean"):
        cells = [label]
        for index, column in enumerate(self.columns[1:], start=1):
            if column.in_geomean:
                cells.append(geomean(
                    [row[index] for row in self.rows if row[index] is not None]
                ))
            else:
                cells.append(None)
        return cells

    def to_dict(self, include_geomean=True):
        """JSON-able dump of the raw (unrendered) table content.

        This is what the golden-table regression tests snapshot: raw
        floats rather than rendered strings, so a formatting tweak and
        a numeric regression fail as distinguishable diffs.
        """
        data = {
            "title": self.title,
            "columns": [
                {
                    "header": column.header,
                    "kind": column.kind,
                    "in_geomean": column.in_geomean,
                }
                for column in self.columns
            ],
            "rows": [list(row) for row in self.rows],
            "note": self.note,
        }
        if include_geomean and self.rows:
            data["geomean"] = self.geomean_row()
        return data

    def render(self, include_geomean=True):
        """Plain-text rendering with aligned columns."""
        body = [
            [column.render(value) for column, value in zip(self.columns, row)]
            for row in self.rows
        ]
        if include_geomean and self.rows:
            footer = self.geomean_row()
            body.append(
                [column.render(value) if index else str(value)
                 for index, (column, value) in enumerate(zip(self.columns, footer))]
            )
        headers = [column.header for column in self.columns]
        widths = [
            max(len(headers[i]), *(len(line[i]) for line in body)) if body
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for line_index, line in enumerate(body):
            if include_geomean and self.rows and line_index == len(body) - 1:
                lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
            lines.append(
                "  ".join(
                    line[i].ljust(widths[i]) if i == 0 else line[i].rjust(widths[i])
                    for i in range(len(line))
                )
            )
        if self.note:
            lines.append("")
            lines.append(self.note)
        return "\n".join(lines)

    def render_markdown(self, include_geomean=True):
        headers = [column.header for column in self.columns]
        lines = ["### %s" % self.title, ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(
                    column.render(value)
                    for column, value in zip(self.columns, row)
                )
                + " |"
            )
        if include_geomean and self.rows:
            footer = self.geomean_row("**GeoMean**")
            cells = [
                column.render(value) if index else str(value)
                for index, (column, value) in enumerate(zip(self.columns, footer))
            ]
            lines.append("| " + " | ".join(cells) + " |")
        if self.note:
            lines.append("")
            lines.append("*%s*" % self.note)
        return "\n".join(lines)
