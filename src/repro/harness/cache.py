"""Persistent on-disk cache for harness stage summaries.

Every harness stage (a native run, a DBT recording, a TEA replay, ...)
reduces to a small JSON-able *summary* — the handful of floats the
table builders consume (see ``Runner.summary``).  This module stores
those summaries on disk keyed by a content hash of everything that can
change them, so a rerun of ``python -m repro.harness all`` only
simulates stages whose inputs actually changed.

Cache key
---------
``stage_key(benchmark, stage, config)`` hashes, canonically serialised:

- the **benchmark definition** (name, suite, seed, and the full kernel
  descriptor list — not just the name, so editing a workload spec
  invalidates its entries);
- the **stage id** (``"native"``, ``"dbt:mret"``,
  ``"replay:global_local"``, ...);
- the **harness configuration** (scale, hot threshold, instruction
  budget);
- the **memory-model parameters** (Table 1 byte accounting);
- the **cost-model parameters** (every ``CostParameters`` constant —
  recalibrating the cycle model invalidates everything);
- the **repro version** and a cache **schema version**.

Anything not in the key cannot affect a summary; anything in the key
that changes produces a different hash, so invalidation is purely
content-addressed — there is no TTL and no manual invalidation beyond
``--no-cache`` / deleting the directory (``repro tools cache --clear``).

Entries are one JSON file per key, sharded by hash prefix, written via
the shared atomic temp-file + :func:`os.replace` helper
(:mod:`repro.util.fsio`) so concurrent writers (parallel harness
shards, or two harness processes) can never expose a torn entry.  A corrupt or unreadable entry is treated as a miss and
overwritten.  Traffic is counted in the shared metrics registry
(``harness.cache.disk_hits`` / ``disk_misses`` / ``writes``).
"""

import hashlib
import json
import os

from repro import __version__
from repro.dbt.cost import CostParameters
from repro.obs import Observability
from repro.util import atomic_write_json
from repro.workloads import get_benchmark

#: Bumped on incompatible changes to the summary schema or key layout.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the invoking CWD).
DEFAULT_CACHE_DIR = ".repro_cache"


def benchmark_fingerprint(name):
    """JSON-able identity of one benchmark's full definition."""
    spec = get_benchmark(name)
    return {
        "name": spec.name,
        "suite": spec.suite,
        "seed": spec.seed,
        "kernels": spec.kernels,
    }


def config_fingerprint(config):
    """JSON-able fingerprint of every knob that can change a summary."""
    memory = config.memory_model
    params = CostParameters()
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "repro_version": __version__,
        "scale": config.scale,
        "hot_threshold": config.hot_threshold,
        "max_instructions": config.max_instructions,
        # The replay engine cannot change a summary's *values* (the
        # engines account identically), but float charge interleaving
        # differs under Pin hosting, so cycles may drift in the last
        # ULPs — keep the engines' entries separate rather than let a
        # warm object-engine cache mask a compiled-engine regression.
        "engine": getattr(config, "engine", "object"),
        "memory_model": {
            name: value for name, value in sorted(vars(memory).items())
        },
        "cost_params": {
            name: getattr(params, name) for name in sorted(params.__slots__)
        },
    }


def stage_key(benchmark, stage, config):
    """Content hash addressing one (benchmark, stage, config) summary."""
    payload = {
        "benchmark": benchmark_fingerprint(benchmark),
        "stage": stage,
        "config": config_fingerprint(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed JSON store for stage summaries.

    Parameters
    ----------
    root:
        Directory to store entries in (created lazily on first write).
    obs:
        Optional :class:`~repro.obs.Observability` whose registry
        receives the ``harness.cache.*`` traffic counters; a private
        one is created otherwise (the counters still work, they are
        just not shared).
    """

    def __init__(self, root=DEFAULT_CACHE_DIR, obs=None):
        self.root = str(root)
        self.obs = obs if obs is not None else Observability()
        metrics = self.obs.metrics
        self._hits = metrics.counter("harness.cache.disk_hits")
        self._misses = metrics.counter("harness.cache.disk_misses")
        self._writes = metrics.counter("harness.cache.writes")

    # ------------------------------------------------------------------

    def path_for(self, key):
        """File backing ``key`` (two-level sharding by hash prefix)."""
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key):
        """The stored summary for ``key``, or ``None`` on a miss.

        Unreadable and corrupt entries count as misses; the next
        :meth:`put` simply overwrites them.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                document = json.load(handle)
            value = document["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self._misses.inc()
            return None
        self._hits.inc()
        return value

    def put(self, key, value):
        """Persist ``value`` (JSON-able) under ``key`` atomically."""
        document = {"key": key, "schema": CACHE_SCHEMA_VERSION,
                    "value": value}
        atomic_write_json(self.path_for(key), document, sort_keys=True)
        self._writes.inc()

    # ------------------------------------------------------------------

    def _entry_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for filename in sorted(os.listdir(shard_dir)):
                if filename.endswith(".json") and not filename.startswith("."):
                    yield os.path.join(shard_dir, filename)

    def __len__(self):
        return sum(1 for _ in self._entry_paths())

    def total_bytes(self):
        """Bytes used by all entries (for ``repro tools cache``)."""
        return sum(os.path.getsize(path) for path in self._entry_paths())

    def clear(self):
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self):
        return "<ResultCache %s: %d entries>" % (self.root, len(self))
