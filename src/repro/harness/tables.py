"""Builders for the paper's four tables.

Each function takes any summary provider (the serial
:class:`~repro.harness.runner.Runner`, the sharded
:class:`~repro.harness.parallel.ParallelRunner`, ...) and returns a
:class:`~repro.harness.reporting.Table` with the same rows/columns the
paper reports (sizes in KB, coverage percentages, times — here in
megacycles of the shared cost model — and slowdowns normalised to
native).  GeoMean footer rows match the paper's.

The builders consume only *stage summaries*
(:meth:`~repro.harness.runner.SummaryProvider.summary`) — plain dicts
of floats — never heavy result objects.  That is what makes serial,
parallel and warm-cache runs render byte-identical tables: every path
feeds the exact same numbers into the same renderer.
"""

from repro.harness.reporting import Column, Table


def table1(runner):
    """Table 1: size savings with TEA, per strategy (MRET / CTT / TT)."""
    columns = [Column("benchmark")]
    for strategy in ("MRET", "CTT", "TT"):
        columns.append(Column("%s DBT KB" % strategy, "kb"))
        columns.append(Column("%s TEA KB" % strategy, "kb"))
        columns.append(Column("%s Savings" % strategy, "percent",
                              in_geomean=True))
    table = Table(
        "Table 1: Size Savings with TEA (KB to represent traces)",
        columns,
        note=(
            "DBT = replicated trace code in a StarDBT-like code cache; "
            "TEA = implicit automaton representation (see "
            "repro.core.memory_model for the byte accounting)."
        ),
    )
    for name in runner.config.benchmarks:
        row = [name]
        for strategy in ("mret", "ctt", "tt"):
            row.extend(runner.dbt_summary(name, strategy)["table1"])
        table.add_row(row)
    return table


def table2(runner):
    """Table 2: replaying StarDBT-recorded traces via TEA under MiniPin."""
    columns = [
        Column("benchmark"),
        Column("TEA Coverage", "percent", in_geomean=True),
        Column("TEA Time (Mcyc)", "float", in_geomean=True),
        Column("DBT Coverage", "percent", in_geomean=True),
        Column("DBT Time (Mcyc)", "float", in_geomean=True),
    ]
    table = Table(
        "Table 2: TEA Runtime Aspects - Replaying "
        "(StarDBT MRET traces replayed under MiniPin)",
        columns,
        note=(
            "TEA coverage uses Pin instruction counting, DBT coverage "
            "StarDBT counting (Section 4.1); DBT time is its recording "
            "run.  Times are counted megacycles of the shared cost model."
        ),
    )
    for name in runner.config.benchmarks:
        dbt = runner.dbt_summary(name, "mret")
        tea = runner.replay_summary(name, "global_local")
        table.add_row([
            name,
            tea["coverage"],
            tea["megacycles"],
            dbt["coverage"],
            dbt["megacycles"],
        ])
    return table


def table3(runner):
    """Table 3: recording traces online via TEA (Algorithm 2)."""
    columns = [
        Column("benchmark"),
        Column("TEA Coverage", "percent", in_geomean=True),
        Column("TEA Time (Mcyc)", "float", in_geomean=True),
        Column("DBT Coverage", "percent", in_geomean=True),
        Column("DBT Time (Mcyc)", "float", in_geomean=True),
    ]
    table = Table(
        "Table 3: TEA Runtime Aspects - Recording "
        "(MRET recorded online by the TEA pintool)",
        columns,
        note="Time means recording time for both TEA and DBT.",
    )
    for name in runner.config.benchmarks:
        dbt = runner.dbt_summary(name, "mret")
        record = runner.record_summary(name)
        table.add_row([
            name,
            record["coverage"],
            record["megacycles"],
            dbt["coverage"],
            dbt["megacycles"],
        ])
    return table


def table4(runner):
    """Table 4: TEA overhead for the transition-function configurations."""
    columns = [
        Column("benchmark"),
        Column("Native", "ratio", in_geomean=True),
        Column("Without Pintool", "ratio", in_geomean=True),
        Column("Empty", "ratio", in_geomean=True),
        Column("No Global / Local", "ratio", in_geomean=True),
        Column("Global / No Local", "ratio", in_geomean=True),
        Column("Global / Local", "ratio", in_geomean=True),
    ]
    table = Table(
        "Table 4: TEA Overhead for Various Configurations "
        "(slowdown vs native)",
        columns,
        note=(
            "Global = B+ tree trace directory (vs linked list); Local = "
            "per-state transition cache.  'Empty' replays an empty trace "
            "set — slower than replaying real traces because every block "
            "takes the transition function's slow path (Section 4.2)."
        ),
    )
    for name in runner.config.benchmarks:
        row = [
            name,
            1.0,
            runner.slowdown_cycles(name, runner.pin_summary(name)["cycles"]),
            runner.slowdown_cycles(name, runner.empty_summary(name)["cycles"]),
        ]
        for key in ("no_global_local", "global_no_local", "global_local"):
            row.append(runner.slowdown_cycles(
                name, runner.replay_summary(name, key)["cycles"]
            ))
        table.add_row(row)
    return table


#: Table id -> builder, for the CLI.
TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
}
