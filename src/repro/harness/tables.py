"""Builders for the paper's four tables.

Each function takes a :class:`~repro.harness.runner.Runner` and returns a
:class:`~repro.harness.reporting.Table` with the same rows/columns the
paper reports (sizes in KB, coverage percentages, times — here in
megacycles of the shared cost model — and slowdowns normalised to
native).  GeoMean footer rows match the paper's.
"""

from repro.harness.reporting import Column, Table


def table1(runner):
    """Table 1: size savings with TEA, per strategy (MRET / CTT / TT)."""
    columns = [Column("benchmark")]
    for strategy in ("MRET", "CTT", "TT"):
        columns.append(Column("%s DBT KB" % strategy, "kb"))
        columns.append(Column("%s TEA KB" % strategy, "kb"))
        columns.append(Column("%s Savings" % strategy, "percent",
                              in_geomean=True))
    table = Table(
        "Table 1: Size Savings with TEA (KB to represent traces)",
        columns,
        note=(
            "DBT = replicated trace code in a StarDBT-like code cache; "
            "TEA = implicit automaton representation (see "
            "repro.core.memory_model for the byte accounting)."
        ),
    )
    model = runner.config.memory_model
    for name in runner.config.benchmarks:
        row = [name]
        for strategy in ("mret", "ctt", "tt"):
            result = runner.dbt(name, strategy)
            dbt_kb, tea_kb, savings = model.table1_row(result.trace_set)
            row.extend([dbt_kb, tea_kb, savings])
        table.add_row(row)
    return table


def table2(runner):
    """Table 2: replaying StarDBT-recorded traces via TEA under MiniPin."""
    columns = [
        Column("benchmark"),
        Column("TEA Coverage", "percent", in_geomean=True),
        Column("TEA Time (Mcyc)", "float", in_geomean=True),
        Column("DBT Coverage", "percent", in_geomean=True),
        Column("DBT Time (Mcyc)", "float", in_geomean=True),
    ]
    table = Table(
        "Table 2: TEA Runtime Aspects - Replaying "
        "(StarDBT MRET traces replayed under MiniPin)",
        columns,
        note=(
            "TEA coverage uses Pin instruction counting, DBT coverage "
            "StarDBT counting (Section 4.1); DBT time is its recording "
            "run.  Times are counted megacycles of the shared cost model."
        ),
    )
    for name in runner.config.benchmarks:
        dbt_result = runner.dbt(name, "mret")
        replay_result, replay_tool = runner.replay(name, "global_local")
        table.add_row([
            name,
            replay_tool.coverage,
            replay_result.megacycles,
            dbt_result.coverage,
            dbt_result.megacycles,
        ])
    return table


def table3(runner):
    """Table 3: recording traces online via TEA (Algorithm 2)."""
    columns = [
        Column("benchmark"),
        Column("TEA Coverage", "percent", in_geomean=True),
        Column("TEA Time (Mcyc)", "float", in_geomean=True),
        Column("DBT Coverage", "percent", in_geomean=True),
        Column("DBT Time (Mcyc)", "float", in_geomean=True),
    ]
    table = Table(
        "Table 3: TEA Runtime Aspects - Recording "
        "(MRET recorded online by the TEA pintool)",
        columns,
        note="Time means recording time for both TEA and DBT.",
    )
    for name in runner.config.benchmarks:
        dbt_result = runner.dbt(name, "mret")
        record_result, record_tool = runner.record(name)
        table.add_row([
            name,
            record_tool.coverage,
            record_result.megacycles,
            dbt_result.coverage,
            dbt_result.megacycles,
        ])
    return table


def table4(runner):
    """Table 4: TEA overhead for the transition-function configurations."""
    columns = [
        Column("benchmark"),
        Column("Native", "ratio", in_geomean=True),
        Column("Without Pintool", "ratio", in_geomean=True),
        Column("Empty", "ratio", in_geomean=True),
        Column("No Global / Local", "ratio", in_geomean=True),
        Column("Global / No Local", "ratio", in_geomean=True),
        Column("Global / Local", "ratio", in_geomean=True),
    ]
    table = Table(
        "Table 4: TEA Overhead for Various Configurations "
        "(slowdown vs native)",
        columns,
        note=(
            "Global = B+ tree trace directory (vs linked list); Local = "
            "per-state transition cache.  'Empty' replays an empty trace "
            "set — slower than replaying real traces because every block "
            "takes the transition function's slow path (Section 4.2)."
        ),
    )
    for name in runner.config.benchmarks:
        empty_result, _ = runner.replay_empty(name)
        row = [
            name,
            1.0,
            runner.slowdown(name, runner.pin_without_tool(name)),
            runner.slowdown(name, empty_result),
        ]
        for key in ("no_global_local", "global_no_local", "global_local"):
            result, _tool = runner.replay(name, key)
            row.append(runner.slowdown(name, result))
        table.add_row(row)
    return table


#: Table id -> builder, for the CLI.
TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
}
