"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`repro.harness.runner` — runs benchmarks through the engines,
  caching per-benchmark artifacts so the tables share work.
- :mod:`repro.harness.tables` — Table 1 (size savings), Table 2 (replay),
  Table 3 (recording), Table 4 (overhead ablation).
- :mod:`repro.harness.figures` — Figures 1-3 as text/DOT renderings.
- :mod:`repro.harness.reporting` — table formatting with GeoMean rows.
- :mod:`repro.harness.parallel` — sharded multiprocessing fan-out that
  renders byte-identical tables (``--jobs N``).
- :mod:`repro.harness.cache` — persistent content-addressed stage
  cache so reruns skip unchanged work (``--cache-dir``/``--no-cache``).

CLI: ``python -m repro.harness table1|table2|table3|table4|figures|all``.
"""

from repro.harness.cache import ResultCache, stage_key
from repro.harness.parallel import ParallelRunner
from repro.harness.reporting import Table, render_metrics
from repro.harness.runner import HarnessConfig, Runner, STAGES
from repro.harness.tables import table1, table2, table3, table4

__all__ = [
    "HarnessConfig",
    "ParallelRunner",
    "ResultCache",
    "Runner",
    "STAGES",
    "stage_key",
    "Table",
    "render_metrics",
    "table1",
    "table2",
    "table3",
    "table4",
]
