"""CLI for the experiment harness.

Examples::

    python -m repro.harness table1
    python -m repro.harness table4 --benchmarks 176.gcc,255.vortex
    python -m repro.harness all --scale 2 --markdown --out results.md
    python -m repro.harness all --jobs 4            # sharded parallel run
    python -m repro.harness all --no-cache          # force fresh simulation
    python -m repro.harness figures

Results are cached in ``--cache-dir`` (default ``.repro_cache``) keyed
by a content hash of the benchmark definition and every harness knob,
so a rerun only simulates stages whose inputs changed — see
docs/parallel_harness.md.
"""

import argparse
import sys
import time

from repro.errors import VerificationError
from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.harness.figures import render_all
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import HarnessConfig, Runner
from repro.harness.summary import build_summary
from repro.harness.tables import TABLES
from repro.obs import Observability, snapshot_to_json
from repro.workloads import BENCHMARKS


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "what",
        choices=sorted(TABLES) + ["figures", "summary", "all"],
        help="which table/figure set to regenerate",
    )
    parser.add_argument(
        "--benchmarks",
        help="comma-separated benchmark subset (default: all 26)",
    )
    parser.add_argument(
        "--scale", type=float, default=4.0,
        help="workload scale factor (default 4.0; tests use less)",
    )
    parser.add_argument(
        "--threshold", type=int, default=30,
        help="hot threshold for trace selection (default 30)",
    )
    parser.add_argument(
        "--engine", choices=("object", "compiled", "jit"), default="object",
        help="replay engine for the TEA replay stages: 'object' walks "
             "the TeaState graph, 'compiled' drives the flat-table "
             "engine over packed transition streams, 'jit' drives "
             "per-automaton generated code over the same streams "
             "(default object)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="statically verify each benchmark's recorded automaton "
             "(full TEA rule catalog) before its trace-consuming "
             "stages; findings abort the run",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; > 1 shards benchmarks across a "
             "multiprocessing pool (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="persistent stage-result cache directory "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the persistent result cache",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables"
    )
    parser.add_argument("--out", help="also write the output to this file")
    parser.add_argument(
        "--metrics-out",
        help="write the harness observability snapshot (JSON) here — "
             "stage timers, stage_runs, cache hit/miss counters",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    return parser.parse_args(argv)


def _cache_report(snapshot):
    """One-line cache/stage traffic summary from an obs snapshot."""
    counters = snapshot.get("metrics", {}).get("counters", {})
    return ("stages run %d | memo hits %d | disk hits %d, misses %d, "
            "writes %d" % (
                counters.get("harness.stage_runs", 0),
                counters.get("harness.cache_hits", 0),
                counters.get("harness.cache.disk_hits", 0),
                counters.get("harness.cache.disk_misses", 0),
                counters.get("harness.cache.writes", 0),
            ))


def make_runner(config, jobs=1, cache=None, progress=None, obs=None):
    """The right runner flavour for ``jobs``, sharing one registry."""
    if jobs > 1:
        return ParallelRunner(config, jobs=jobs, cache=cache,
                              progress=progress, obs=obs)
    return Runner(config, progress=progress, cache=cache, obs=obs)


def main(argv=None):
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    benchmarks = None
    if args.benchmarks:
        benchmarks = [name.strip() for name in args.benchmarks.split(",")]
        for name in benchmarks:
            if name not in BENCHMARKS:
                print("unknown benchmark %r; known: %s"
                      % (name, ", ".join(BENCHMARKS)), file=sys.stderr)
                return 2
    config = HarnessConfig(
        scale=args.scale,
        hot_threshold=args.threshold,
        benchmarks=benchmarks,
        engine=args.engine,
        verify=args.verify,
    )
    progress = None
    if not args.quiet:
        def progress(message):
            print("  [run] %s" % message, file=sys.stderr)
    obs = Observability()
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir, obs=obs)
    runner = make_runner(config, jobs=args.jobs, cache=cache,
                         progress=progress, obs=obs)

    sections = []
    # Monotonic: an NTP step mid-run must not corrupt the elapsed banner.
    started = time.perf_counter()
    if args.what in TABLES:
        selected = [args.what]
    elif args.what == "all":
        selected = sorted(TABLES)
    else:
        selected = []
    try:
        for table_name in selected:
            table = TABLES[table_name](runner)
            sections.append(
                table.render_markdown() if args.markdown else table.render()
            )
        if args.what in ("figures", "all"):
            sections.append(render_all())
        if args.what in ("summary", "all"):
            summary = build_summary(runner)
            sections.append(
                summary.render_markdown(include_geomean=False)
                if args.markdown else summary.render(include_geomean=False)
            )
    except VerificationError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1

    output = "\n\n\n".join(sections)
    print(output)
    snapshot = runner.metrics_snapshot()
    if not args.quiet:
        print("\n[%.1f s] %s" % (time.perf_counter() - started,
                                 _cache_report(snapshot)), file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output + "\n")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(snapshot_to_json(snapshot))
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
