"""CLI for the experiment harness.

Examples::

    python -m repro.harness table1
    python -m repro.harness table4 --benchmarks 176.gcc,255.vortex
    python -m repro.harness all --scale 2 --markdown --out results.md
    python -m repro.harness figures
"""

import argparse
import sys
import time

from repro.harness.figures import render_all
from repro.harness.runner import HarnessConfig, Runner
from repro.harness.summary import build_summary
from repro.harness.tables import TABLES
from repro.workloads import BENCHMARKS


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "what",
        choices=sorted(TABLES) + ["figures", "summary", "all"],
        help="which table/figure set to regenerate",
    )
    parser.add_argument(
        "--benchmarks",
        help="comma-separated benchmark subset (default: all 26)",
    )
    parser.add_argument(
        "--scale", type=float, default=4.0,
        help="workload scale factor (default 4.0; tests use less)",
    )
    parser.add_argument(
        "--threshold", type=int, default=30,
        help="hot threshold for trace selection (default 30)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables"
    )
    parser.add_argument("--out", help="also write the output to this file")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress messages"
    )
    return parser.parse_args(argv)


def main(argv=None):
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    benchmarks = None
    if args.benchmarks:
        benchmarks = [name.strip() for name in args.benchmarks.split(",")]
        for name in benchmarks:
            if name not in BENCHMARKS:
                print("unknown benchmark %r; known: %s"
                      % (name, ", ".join(BENCHMARKS)), file=sys.stderr)
                return 2
    config = HarnessConfig(
        scale=args.scale,
        hot_threshold=args.threshold,
        benchmarks=benchmarks,
    )
    progress = None
    if not args.quiet:
        progress = lambda message: print("  [run] %s" % message, file=sys.stderr)
    runner = Runner(config, progress=progress)

    sections = []
    started = time.time()
    if args.what in TABLES:
        selected = [args.what]
    elif args.what == "all":
        selected = sorted(TABLES)
    else:
        selected = []
    for table_name in selected:
        table = TABLES[table_name](runner)
        sections.append(
            table.render_markdown() if args.markdown else table.render()
        )
    if args.what in ("figures", "all"):
        sections.append(render_all())
    if args.what in ("summary", "all"):
        summary = build_summary(runner)
        sections.append(
            summary.render_markdown(include_geomean=False)
            if args.markdown else summary.render(include_geomean=False)
        )

    output = "\n\n\n".join(sections)
    print(output)
    if not args.quiet:
        print("\n[%.1f s]" % (time.time() - started), file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
