"""Headline-claims summary: paper geomeans vs this run's geomeans.

``python -m repro.harness summary`` regenerates all four tables (cached
through the shared runner) and prints one compact paper-vs-measured
comparison — the quickest way to confirm a checkout still reproduces the
paper's shapes after a change.
"""

from repro.harness.reporting import Column, Table, geomean
from repro.harness.tables import table1, table2, table3, table4

#: The paper's reported geomeans (Tables 1-4).
PAPER = {
    "table1_savings_mret": 0.77,
    "table1_savings_ctt": 0.79,
    "table1_savings_tt": 0.79,
    "table2_tea_coverage": 0.975,
    "table2_time_ratio": 12.1,   # 1559 / 129
    "table3_tea_coverage": 0.996,
    "table4_without_pintool": 1.50,
    "table4_empty": 25.27,
    "table4_no_global_local": 18.52,
    "table4_global_no_local": 20.33,
    "table4_global_local": 13.53,
}


def _column_geomean(table, index):
    return geomean([row[index] for row in table.rows if row[index]])


def build_summary(runner):
    """Return a Table of headline geomeans: paper vs measured."""
    t1 = table1(runner)
    t2 = table2(runner)
    t3 = table3(runner)
    t4 = table4(runner)

    measured = {
        "table1_savings_mret": _column_geomean(t1, 3),
        "table1_savings_ctt": _column_geomean(t1, 6),
        "table1_savings_tt": _column_geomean(t1, 9),
        "table2_tea_coverage": _column_geomean(t2, 1),
        "table2_time_ratio": geomean(
            [row[2] / row[4] for row in t2.rows if row[4]]
        ),
        "table3_tea_coverage": _column_geomean(t3, 1),
        "table4_without_pintool": _column_geomean(t4, 2),
        "table4_empty": _column_geomean(t4, 3),
        "table4_no_global_local": _column_geomean(t4, 4),
        "table4_global_no_local": _column_geomean(t4, 5),
        "table4_global_local": _column_geomean(t4, 6),
    }

    descriptions = {
        "table1_savings_mret": ("Table 1: savings geomean, MRET", "percent"),
        "table1_savings_ctt": ("Table 1: savings geomean, CTT", "percent"),
        "table1_savings_tt": ("Table 1: savings geomean, TT", "percent"),
        "table2_tea_coverage": ("Table 2: TEA replay coverage", "percent"),
        "table2_time_ratio": ("Table 2: replay/record time ratio", "ratio"),
        "table3_tea_coverage": ("Table 3: TEA recording coverage", "percent"),
        "table4_without_pintool": ("Table 4: Without Pintool", "ratio"),
        "table4_empty": ("Table 4: Empty", "ratio"),
        "table4_no_global_local": ("Table 4: No Global / Local", "ratio"),
        "table4_global_no_local": ("Table 4: Global / No Local", "ratio"),
        "table4_global_local": ("Table 4: Global / Local", "ratio"),
    }

    # Shape checks: the orderings that define the reproduction.
    shape_ok = {
        "table4_ordering": (
            measured["table4_global_local"]
            <= measured["table4_no_global_local"] * 1.02
            and measured["table4_global_local"]
            <= measured["table4_global_no_local"] * 1.02
            and measured["table4_global_no_local"]
            < measured["table4_empty"]
        ),
        "empty_slowest_tea": (
            measured["table4_empty"] > measured["table4_global_local"]
        ),
        "pin_cheap": measured["table4_without_pintool"] < 4.0,
    }

    table = Table(
        "Headline claims: paper geomeans vs this run",
        [
            Column("claim"),
            Column("paper", "text"),
            Column("measured", "text"),
        ],
        note="shape checks: %s" % ", ".join(
            "%s=%s" % (name, "OK" if passed else "FAIL")
            for name, passed in sorted(shape_ok.items())
        ),
    )

    def render(kind, value):
        if kind == "percent":
            return "%.1f%%" % (100 * value)
        return "%.2fx" % value

    for key, (label, kind) in descriptions.items():
        table.add_row([label, render(kind, PAPER[key]),
                       render(kind, measured[key])])
    return table
