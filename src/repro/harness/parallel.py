"""The sharded parallel harness: per-benchmark fan-out over processes.

``python -m repro.harness all`` simulates ten stages per benchmark
(native, three DBT recordings, a bare-Pin run, an empty replay, three
replay configurations, an online recording), each fully independent of
every other benchmark's stages.  The serial :class:`Runner` walks them
one benchmark at a time; this module fans them across
``multiprocessing`` workers, one **shard per benchmark** — the natural
grain, since stages of one benchmark share heavy artifacts (every
replay wants the ``dbt:mret`` trace set) while stages of different
benchmarks share nothing.

Each worker builds a private serial :class:`Runner` (workloads are
generated from the spec's own deterministic seed, so every worker
reproduces bit-identical programs no matter the host or schedule),
computes the requested stage *summaries*, and ships back
``(name, summaries, metrics snapshot)``.  The parent

- merges the per-worker registries into one via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` (order-independent:
  counters and timers add),
- stores the summaries for the table builders, and
- persists them to the shared :class:`~repro.harness.cache.ResultCache`
  (when one is attached), so the *next* run — serial or parallel —
  skips whatever did not change.

Because workers return plain floats computed by the very same code the
serial runner uses, and the table builders consume only those floats,
a parallel run renders tables **byte-identical** to the serial run's —
``tests/test_parallel_harness.py`` asserts exactly that, and the
golden-table tests pin the shapes.

Note the merged ``harness.<stage>`` phase timers sum *worker* seconds:
with N workers the total can approach N x wall-clock — that is CPU
time, which is the useful quantity when comparing against the serial
run's timers.
"""

import multiprocessing
import os

from repro.harness.cache import stage_key
from repro.harness.runner import (
    HarnessConfig,
    Runner,
    STAGES,
    SummaryProvider,
)
from repro.obs import Observability


def default_jobs():
    """A sensible worker count: the CPUs, capped at the shard count."""
    return max(1, min(os.cpu_count() or 1, len(STAGES)))


def _compute_shard(job):
    """Worker entry point: all requested stages of one benchmark.

    Module-level (not a closure) so it pickles under every
    multiprocessing start method.  Returns the benchmark name, its
    ``{stage: summary}`` dict, and the worker's metrics snapshot.
    """
    config, name, stages = job
    runner = Runner(config)
    summaries = {stage: runner.summary(name, stage) for stage in stages}
    return name, summaries, runner.metrics_snapshot()


class ParallelRunner(SummaryProvider):
    """Drop-in summary provider that shards benchmarks across processes.

    Parameters
    ----------
    config:
        The shared :class:`HarnessConfig` (also the cache-key input).
    jobs:
        Worker process count; ``1`` computes in-process (still through
        the same shard path, so behaviour is identical minus the pool).
    cache:
        Optional :class:`~repro.harness.cache.ResultCache`.  Stages
        found there are never dispatched; freshly computed summaries
        are persisted for future runs.
    progress:
        Optional ``fn(message)`` — shard dispatch/completion lines.
    obs:
        Optional :class:`~repro.obs.Observability`; worker registries
        are merged into it as shards complete.
    """

    def __init__(self, config=None, jobs=None, cache=None, progress=None,
                 obs=None):
        self.config = config or HarnessConfig()
        self.jobs = max(1, int(jobs)) if jobs else default_jobs()
        self.cache = cache
        self.progress = progress
        self.obs = obs if obs is not None else Observability()
        self._summaries = {}
        self._prefetched = False

    def _log(self, message):
        if self.progress is not None:
            self.progress(message)

    def metrics_snapshot(self):
        """JSON-able snapshot of the merged harness metrics."""
        return self.obs.snapshot()

    # ------------------------------------------------------------------

    def _serve_from_cache(self, name, stage):
        """Try memory then disk for one stage; returns the summary/None."""
        memo_key = (name, stage)
        found = self._summaries.get(memo_key)
        if found is not None:
            return found
        if self.cache is not None:
            found = self.cache.get(stage_key(name, stage, self.config))
            if found is not None:
                self.obs.metrics.counter("harness.cache_hits").inc()
                self._summaries[memo_key] = found
        return found

    def _absorb(self, name, summaries):
        """Store one shard's summaries and persist them to the cache."""
        for stage, value in summaries.items():
            self._summaries[(name, stage)] = value
            if self.cache is not None:
                self.cache.put(stage_key(name, stage, self.config), value)

    def prefetch(self, benchmarks=None, stages=None):
        """Materialise summaries for ``benchmarks`` x ``stages``.

        Consults the cache first; only benchmarks with at least one
        missing stage become shards, and each shard computes only its
        missing stages.  Returns ``self`` so calls chain.
        """
        names = list(benchmarks) if benchmarks else self.config.benchmarks
        wanted = list(stages) if stages else list(STAGES)
        pending = []
        for name in names:
            missing = [
                stage for stage in wanted
                if self._serve_from_cache(name, stage) is None
            ]
            if missing:
                pending.append((self.config, name, missing))
        if not pending:
            return self
        workers = min(self.jobs, len(pending))
        self._log("dispatching %d shard(s) across %d worker(s)"
                  % (len(pending), workers))
        if workers == 1:
            completions = map(_compute_shard, pending)
            for completion in completions:
                self._finish_shard(*completion)
        else:
            with multiprocessing.Pool(processes=workers) as pool:
                for completion in pool.imap_unordered(_compute_shard,
                                                      pending):
                    self._finish_shard(*completion)
        return self

    def _finish_shard(self, name, summaries, snapshot):
        self._absorb(name, summaries)
        self.obs.metrics.merge(snapshot)
        self._log("%s: shard complete (%d stage(s))" % (name, len(summaries)))

    # ------------------------------------------------------------------

    def summary(self, name, stage):
        """One stage summary; triggers a full prefetch on first miss.

        The full prefetch (rather than a single-stage one) keeps the
        pool busy: the first table build pulls every stage of every
        benchmark in one fan-out instead of faulting them in one at a
        time.
        """
        found = self._summaries.get((name, stage))
        if found is not None:
            return found
        if not self._prefetched:
            self._prefetched = True
            self.prefetch()
            found = self._summaries.get((name, stage))
            if found is not None:
                return found
        # A stage outside STAGES (or a benchmark outside the config):
        # compute just that shard.
        self.prefetch(benchmarks=[name], stages=[stage])
        return self._summaries[(name, stage)]
