"""Benchmark execution with per-benchmark artifact caching.

Tables 1-4 share most of their raw runs (Table 2 replays the traces the
Table 1 MRET recording produced; Table 4's Global/Local column is
Table 2's run).  The :class:`Runner` memoises every (benchmark, engine,
configuration) result so ``python -m repro.harness all`` does the minimum
amount of simulation.

Two layers of caching:

- **heavy artifacts** (full ``PinResult``/``DBTResult`` objects plus
  tools) are memoised in-process, exactly as before;
- **stage summaries** — the small JSON-able dicts the table builders
  actually consume (see :meth:`Runner.summary`) — can additionally be
  served from a persistent :class:`~repro.harness.cache.ResultCache`,
  in which case the heavy simulation is skipped entirely.

The summaries are also the unit of work the sharded parallel harness
(:mod:`repro.harness.parallel`) ships across process boundaries, which
is why the table builders consume summaries rather than result objects:
serial, parallel and cached runs all feed the very same floats into the
same renderer, so their tables are byte-identical.

Default knobs (documented in EXPERIMENTS.md): scale 4.0 and hot threshold
30 — full-length SPEC runs make trace-formation warm-up negligible; at
our workload sizes, scale x threshold is chosen so warm-up stays a small
fraction of the run, as in the paper.
"""

from repro.core import MemoryModel, ReplayConfig
from repro.core.replay import REPLAY_ENGINES
from repro.dbt import StarDBT
from repro.harness.cache import stage_key
from repro.obs import Observability
from repro.pin import Pin, TeaReplayTool, TeaRecordTool, run_native
from repro.traces.recorder import RecorderLimits
from repro.workloads import BENCHMARKS, load_benchmark

#: Table 4 transition-function configurations, paper order.
REPLAY_CONFIGS = {
    "no_global_local": ReplayConfig.no_global_local,
    "global_no_local": ReplayConfig.global_no_local,
    "global_local": ReplayConfig.global_local,
}

#: Every per-benchmark stage Tables 1-4 need, in dependency-friendly
#: order (the replays reuse the ``dbt:mret`` trace set when it is
#: already in memory).  A stage id is ``<kind>`` or ``<kind>:<arg>``.
STAGES = (
    "native",
    "dbt:mret",
    "dbt:ctt",
    "dbt:tt",
    "pin_without_tool",
    "replay_empty",
    "replay:no_global_local",
    "replay:global_no_local",
    "replay:global_local",
    "record",
)


class HarnessConfig:
    """Harness-wide knobs."""

    def __init__(self, scale=4.0, hot_threshold=30, benchmarks=None,
                 memory_model=None, max_instructions=50_000_000,
                 engine="object", verify=False):
        if engine not in REPLAY_ENGINES:
            raise ValueError(
                "engine must be one of %s" % ", ".join(
                    repr(name) for name in REPLAY_ENGINES
                )
            )
        self.scale = scale
        self.hot_threshold = hot_threshold
        self.benchmarks = list(benchmarks) if benchmarks else list(BENCHMARKS)
        self.memory_model = memory_model or MemoryModel()
        self.max_instructions = max_instructions
        #: Which replay engine the TEA replay stages drive
        #: (``"object"`` = TeaReplayer, ``"compiled"`` = the flat-table
        #: CompiledReplayer over packed transition streams).
        self.engine = engine
        #: Run the static verifier over each benchmark's recorded
        #: automaton before its trace-consuming stages (``--verify``).
        #: A pre-flight check, not a knob that changes any summary —
        #: deliberately left out of the cache fingerprint.
        self.verify = bool(verify)

    def limits(self):
        return RecorderLimits(hot_threshold=self.hot_threshold)


class SummaryProvider:
    """The summary-consumer API shared by every runner flavour.

    The table builders (:mod:`repro.harness.tables`) are written against
    this interface alone, so any object that implements
    :meth:`summary` (plus ``config``) can feed them — the serial
    :class:`Runner`, the sharded
    :class:`~repro.harness.parallel.ParallelRunner`, or a test double.
    """

    def summary(self, name, stage):
        raise NotImplementedError

    # -- convenience accessors used by the table builders --------------

    def native_summary(self, name):
        return self.summary(name, "native")

    def dbt_summary(self, name, strategy):
        return self.summary(name, "dbt:%s" % strategy)

    def pin_summary(self, name):
        return self.summary(name, "pin_without_tool")

    def empty_summary(self, name):
        return self.summary(name, "replay_empty")

    def replay_summary(self, name, config_key="global_local"):
        return self.summary(name, "replay:%s" % config_key)

    def record_summary(self, name):
        return self.summary(name, "record")

    def slowdown_cycles(self, name, cycles):
        """``cycles`` normalised to the benchmark's native run."""
        baseline = self.native_summary(name)["cycles"]
        return cycles / baseline if baseline else 0.0


class Runner(SummaryProvider):
    """Caches per-benchmark runs; the table builders pull from here.

    Every stage is timed into the shared observability registry
    (``harness.<stage>`` phase timers) and cache traffic is counted, so
    ``metrics_snapshot()`` shows where a table's wall-clock time
    actually went and how much the memoisation saved:

    - ``harness.stage_runs`` — fresh heavy executions; always equal to
      the sum of the ``harness.<stage>`` timer counts.  A stage served
      from any cache tier must never increment this (the regression
      test in ``tests/test_parallel_harness.py`` pins that down).
    - ``harness.cache_hits`` / ``harness.cache_misses`` — stage
      requests served from a cache tier vs needing a fresh run.
    - ``harness.cache.disk_hits`` / ``disk_misses`` / ``writes`` —
      persistent-cache traffic (counted by the
      :class:`~repro.harness.cache.ResultCache` itself).

    ``cache`` is an optional :class:`~repro.harness.cache.ResultCache`;
    when given, :meth:`summary` consults it before simulating and
    persists what it computes.
    """

    def __init__(self, config=None, progress=None, obs=None, cache=None):
        self.config = config or HarnessConfig()
        self.progress = progress
        self.obs = obs if obs is not None else Observability()
        self.cache = cache
        self._workloads = {}
        self._native = {}
        self._dbt = {}
        self._replay = {}
        self._empty = {}
        self._pin_only = {}
        self._record = {}
        self._summaries = {}
        self._verified = set()

    def _log(self, message):
        if self.progress is not None:
            self.progress(message)

    def _stage(self, name, cached):
        """Count a stage request and return the stage phase timer.

        A cache hit counts *only* as a hit: the fresh-execution counter
        (``harness.stage_runs``) and the stage timer are reserved for
        the miss path, which actually simulates.
        """
        metrics = self.obs.metrics
        if cached:
            metrics.counter("harness.cache_hits").inc()
        else:
            metrics.counter("harness.cache_misses").inc()
            metrics.counter("harness.stage_runs").inc()
        return metrics.timer("harness.%s" % name)

    def metrics_snapshot(self):
        """JSON-able snapshot of all harness metrics gathered so far."""
        return self.obs.snapshot()

    # ------------------------------------------------------------------
    # raw artifacts
    # ------------------------------------------------------------------

    def workload(self, name):
        found = self._workloads.get(name)
        if found is None:
            with self.obs.metrics.timer("harness.workload"):
                found = load_benchmark(name, scale=self.config.scale)
            self._workloads[name] = found
        return found

    def native(self, name):
        """Native run (the Table 4 baseline)."""
        found = self._native.get(name)
        timer = self._stage("native", cached=found is not None)
        if found is None:
            self._log("%s: native" % name)
            # Load the workload before entering the stage timer so
            # harness.native does not double-count harness.workload time.
            program = self.workload(name).program
            with timer:
                found = run_native(
                    program,
                    max_instructions=self.config.max_instructions,
                )
            self._native[name] = found
        return found

    def dbt(self, name, strategy):
        """StarDBT recording run for one strategy (Tables 1-3 baselines)."""
        key = (name, strategy)
        found = self._dbt.get(key)
        timer = self._stage("dbt", cached=found is not None)
        if found is None:
            self._log("%s: DBT %s" % (name, strategy))
            runtime = StarDBT(
                self.workload(name).program,
                strategy=strategy,
                limits=self.config.limits(),
                memory_model=self.config.memory_model,
                max_instructions=self.config.max_instructions,
            )
            with timer:
                found = runtime.run()
            self._dbt[key] = found
        return found

    def pin_without_tool(self, name):
        """Bare MiniPin run (Table 4 'Without Pintool')."""
        found = self._pin_only.get(name)
        timer = self._stage("pin_without_tool", cached=found is not None)
        if found is None:
            self._log("%s: pin (no tool)" % name)
            program = self.workload(name).program
            with timer:
                found = Pin(
                    program,
                    tool=None,
                    max_instructions=self.config.max_instructions,
                ).run()
            self._pin_only[name] = found
        return found

    def replay_empty(self, name):
        """TEA replay with no traces (Table 4 'Empty')."""
        found = self._empty.get(name)
        timer = self._stage("replay_empty", cached=found is not None)
        if found is None:
            self._log("%s: TEA empty" % name)
            program = self.workload(name).program
            tool = TeaReplayTool(trace_set=None, engine=self.config.engine)
            with timer:
                result = Pin(
                    program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._empty[name] = found
        return found

    def replay(self, name, config_key="global_local"):
        """TEA replay of the DBT's MRET traces under one configuration."""
        key = (name, config_key)
        found = self._replay.get(key)
        timer = self._stage("replay", cached=found is not None)
        if found is None:
            self._log("%s: TEA replay %s" % (name, config_key))
            trace_set = self.dbt(name, "mret").trace_set
            program = self.workload(name).program
            tool = TeaReplayTool(
                trace_set=trace_set, config=REPLAY_CONFIGS[config_key](),
                engine=self.config.engine,
            )
            with timer:
                result = Pin(
                    program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._replay[key] = found
        return found

    def record(self, name):
        """Online TEA recording under MiniPin (Table 3)."""
        found = self._record.get(name)
        timer = self._stage("record", cached=found is not None)
        if found is None:
            self._log("%s: TEA record" % name)
            program = self.workload(name).program
            tool = TeaRecordTool(strategy="mret", limits=self.config.limits())
            with timer:
                result = Pin(
                    program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._record[name] = found
        return found

    def preflight_verify(self, name):
        """Verify ``name``'s recorded automaton once (``--verify``).

        Builds the MRET trace set's automaton and runs the full static
        rule catalog — automaton, trace-structure and CFG families —
        before the trace-consuming stages execute.  Findings raise
        :class:`~repro.errors.VerificationError`, so a harness run on a
        damaged recording fails loudly up front instead of folding bad
        numbers into a table.  Memoised per benchmark; a no-op unless
        ``config.verify`` is set.
        """
        if not self.config.verify or name in self._verified:
            return
        from repro.core.builder import build_tea
        from repro.verify import verify_tea

        trace_set = self.dbt(name, "mret").trace_set
        program = self.workload(name).program
        self._log("%s: verify" % name)
        with self.obs.metrics.timer("harness.verify"):
            tea = build_tea(trace_set)
            verify_tea(
                tea, trace_set=trace_set, program=program,
                source="%s (mret recording)" % name, obs=self.obs,
            ).raise_on_error()
        self._verified.add(name)

    # ------------------------------------------------------------------
    # stage summaries (what the table builders consume)
    # ------------------------------------------------------------------

    def summary(self, name, stage):
        """The JSON-able summary for one ``(benchmark, stage)`` pair.

        Resolution order: in-memory summary, persistent cache (when one
        is attached), fresh simulation.  A persistent-cache hit skips
        the heavy stage *and all its dependencies* — e.g. a cached
        ``replay:global_local`` never triggers the ``dbt:mret`` run it
        would need to simulate from scratch.
        """
        memo_key = (name, stage)
        found = self._summaries.get(memo_key)
        if found is not None:
            self.obs.metrics.counter("harness.cache_hits").inc()
            return found
        if self.cache is not None:
            disk_key = stage_key(name, stage, self.config)
            found = self.cache.get(disk_key)
            if found is not None:
                self.obs.metrics.counter("harness.cache_hits").inc()
                self._summaries[memo_key] = found
                return found
        found = self._compute_summary(name, stage)
        self._summaries[memo_key] = found
        if self.cache is not None:
            self.cache.put(disk_key, found)
        return found

    def _compute_summary(self, name, stage):
        kind, _, arg = stage.partition(":")
        if kind in ("dbt", "replay", "record"):
            self.preflight_verify(name)
        if kind == "native":
            result = self.native(name)
            return {"cycles": result.cycles, "megacycles": result.megacycles}
        if kind == "dbt":
            result = self.dbt(name, arg)
            dbt_kb, tea_kb, savings = self.config.memory_model.table1_row(
                result.trace_set
            )
            return {
                "cycles": result.cycles,
                "megacycles": result.megacycles,
                "coverage": result.coverage,
                "table1": [dbt_kb, tea_kb, savings],
            }
        if kind == "pin_without_tool":
            result = self.pin_without_tool(name)
            return {"cycles": result.cycles, "megacycles": result.megacycles}
        if kind == "replay_empty":
            result, tool = self.replay_empty(name)
            return {
                "cycles": result.cycles,
                "megacycles": result.megacycles,
                "coverage": tool.coverage,
            }
        if kind == "replay":
            result, tool = self.replay(name, arg)
            return {
                "cycles": result.cycles,
                "megacycles": result.megacycles,
                "coverage": tool.coverage,
            }
        if kind == "record":
            result, tool = self.record(name)
            return {
                "cycles": result.cycles,
                "megacycles": result.megacycles,
                "coverage": tool.coverage,
            }
        raise ValueError("unknown stage %r" % (stage,))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    def slowdown(self, name, result):
        """Cycles of ``result`` normalised to the native run."""
        baseline = self.native(name).cycles
        return result.cycles / baseline if baseline else 0.0
