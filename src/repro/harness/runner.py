"""Benchmark execution with per-benchmark artifact caching.

Tables 1-4 share most of their raw runs (Table 2 replays the traces the
Table 1 MRET recording produced; Table 4's Global/Local column is
Table 2's run).  The :class:`Runner` memoises every (benchmark, engine,
configuration) result so ``python -m repro.harness all`` does the minimum
amount of simulation.

Default knobs (documented in EXPERIMENTS.md): scale 4.0 and hot threshold
30 — full-length SPEC runs make trace-formation warm-up negligible; at
our workload sizes, scale x threshold is chosen so warm-up stays a small
fraction of the run, as in the paper.
"""

from repro.core import MemoryModel, ReplayConfig
from repro.dbt import StarDBT
from repro.obs import Observability
from repro.pin import Pin, TeaReplayTool, TeaRecordTool, run_native
from repro.traces.recorder import RecorderLimits
from repro.workloads import BENCHMARKS, load_benchmark

#: Table 4 transition-function configurations, paper order.
REPLAY_CONFIGS = {
    "no_global_local": ReplayConfig.no_global_local,
    "global_no_local": ReplayConfig.global_no_local,
    "global_local": ReplayConfig.global_local,
}


class HarnessConfig:
    """Harness-wide knobs."""

    def __init__(self, scale=4.0, hot_threshold=30, benchmarks=None,
                 memory_model=None, max_instructions=50_000_000):
        self.scale = scale
        self.hot_threshold = hot_threshold
        self.benchmarks = list(benchmarks) if benchmarks else list(BENCHMARKS)
        self.memory_model = memory_model or MemoryModel()
        self.max_instructions = max_instructions

    def limits(self):
        return RecorderLimits(hot_threshold=self.hot_threshold)


class Runner:
    """Caches per-benchmark runs; the table builders pull from here.

    Every stage is timed into the shared observability registry
    (``harness.<stage>`` phase timers) and artifact-cache traffic is
    counted, so ``metrics_snapshot()`` shows where a table's wall-clock
    time actually went and how much the memoisation saved.
    """

    def __init__(self, config=None, progress=None, obs=None):
        self.config = config or HarnessConfig()
        self.progress = progress
        self.obs = obs if obs is not None else Observability()
        self._workloads = {}
        self._native = {}
        self._dbt = {}
        self._replay = {}
        self._empty = {}
        self._pin_only = {}
        self._record = {}

    def _log(self, message):
        if self.progress is not None:
            self.progress(message)

    def _stage(self, name, cached):
        """Count a cache hit/miss and return the stage phase timer."""
        metrics = self.obs.metrics
        metrics.counter(
            "harness.cache_hits" if cached else "harness.cache_misses"
        ).inc()
        return metrics.timer("harness.%s" % name)

    def metrics_snapshot(self):
        """JSON-able snapshot of all harness metrics gathered so far."""
        return self.obs.snapshot()

    # ------------------------------------------------------------------
    # raw artifacts
    # ------------------------------------------------------------------

    def workload(self, name):
        found = self._workloads.get(name)
        if found is None:
            with self.obs.metrics.timer("harness.workload"):
                found = load_benchmark(name, scale=self.config.scale)
            self._workloads[name] = found
        return found

    def native(self, name):
        """Native run (the Table 4 baseline)."""
        found = self._native.get(name)
        timer = self._stage("native", cached=found is not None)
        if found is None:
            self._log("%s: native" % name)
            with timer:
                found = run_native(
                    self.workload(name).program,
                    max_instructions=self.config.max_instructions,
                )
            self._native[name] = found
        return found

    def dbt(self, name, strategy):
        """StarDBT recording run for one strategy (Tables 1-3 baselines)."""
        key = (name, strategy)
        found = self._dbt.get(key)
        timer = self._stage("dbt", cached=found is not None)
        if found is None:
            self._log("%s: DBT %s" % (name, strategy))
            runtime = StarDBT(
                self.workload(name).program,
                strategy=strategy,
                limits=self.config.limits(),
                memory_model=self.config.memory_model,
                max_instructions=self.config.max_instructions,
            )
            with timer:
                found = runtime.run()
            self._dbt[key] = found
        return found

    def pin_without_tool(self, name):
        """Bare MiniPin run (Table 4 'Without Pintool')."""
        found = self._pin_only.get(name)
        timer = self._stage("pin_without_tool", cached=found is not None)
        if found is None:
            self._log("%s: pin (no tool)" % name)
            with timer:
                found = Pin(
                    self.workload(name).program,
                    tool=None,
                    max_instructions=self.config.max_instructions,
                ).run()
            self._pin_only[name] = found
        return found

    def replay_empty(self, name):
        """TEA replay with no traces (Table 4 'Empty')."""
        found = self._empty.get(name)
        timer = self._stage("replay_empty", cached=found is not None)
        if found is None:
            self._log("%s: TEA empty" % name)
            tool = TeaReplayTool(trace_set=None)
            with timer:
                result = Pin(
                    self.workload(name).program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._empty[name] = found
        return found

    def replay(self, name, config_key="global_local"):
        """TEA replay of the DBT's MRET traces under one configuration."""
        key = (name, config_key)
        found = self._replay.get(key)
        timer = self._stage("replay", cached=found is not None)
        if found is None:
            self._log("%s: TEA replay %s" % (name, config_key))
            trace_set = self.dbt(name, "mret").trace_set
            tool = TeaReplayTool(
                trace_set=trace_set, config=REPLAY_CONFIGS[config_key]()
            )
            with timer:
                result = Pin(
                    self.workload(name).program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._replay[key] = found
        return found

    def record(self, name):
        """Online TEA recording under MiniPin (Table 3)."""
        found = self._record.get(name)
        timer = self._stage("record", cached=found is not None)
        if found is None:
            self._log("%s: TEA record" % name)
            tool = TeaRecordTool(strategy="mret", limits=self.config.limits())
            with timer:
                result = Pin(
                    self.workload(name).program,
                    tool=tool,
                    max_instructions=self.config.max_instructions,
                ).run()
            found = (result, tool)
            self._record[name] = found
        return found

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    def slowdown(self, name, result):
        """Cycles of ``result`` normalised to the native run."""
        baseline = self.native(name).cycles
        return result.cycles / baseline if baseline else 0.0
