"""Regenerators for the paper's Figures 1-3.

These are worked examples, not measurements: Figure 1 is the memcpy loop,
its trace, and the duplicated trace used for unroll profiling (Section
2); Figure 2 is the linked-list scan, its CFG and the MRET trace pair
T1/T2; Figure 3 lifts those traces into the trace DFA and the
whole-program TEA with the NTE state (Algorithm 1).  Each function
returns renderable text (listings + Graphviz DOT); the figure tests
assert the exact automaton structure.
"""

from repro.cfg import BlockIndex, build_cfg
from repro.cfg.builder import FLAVOR_STARDBT, DynamicBlockBuilder
from repro.core import build_tea, duplicate_trace
from repro.core.replay import ReplayConfig, TeaReplayer
from repro.cpu import Executor
from repro.traces.model import TraceSet
from repro.workloads import figure1_program, figure2_program


def _block_from_label(program, block_index, label, single=False):
    """Intern the block starting at ``label``.

    The block runs to the first control transfer, or is the single
    instruction at the label when ``single`` (the paper's ``$$inc``,
    which "does not end in a branch instruction").
    """
    start = program.label_addr(label)
    addr = start
    while True:
        instr = program.instruction_at(addr)
        if single or instr.is_control:
            return block_index.block(start, addr)
        addr = instr.fallthrough


def figure1_traces():
    """The Figure 1 memcpy loop: original and duplicated trace.

    Returns ``(program, trace_set, duplicated_set)`` where the trace is
    the loop-body superblock with its cycle edge (Figure 1(b)) and the
    duplicated set holds the two-copy version (Figure 1(d)).
    """
    program = figure1_program()
    block_index = BlockIndex(program)
    loop_block = _block_from_label(program, block_index, "fig1_loop")

    trace_set = TraceSet(kind="mret")
    trace = trace_set.new_trace(anchor=loop_block.start)
    trace.add_block(loop_block)
    trace.add_edge(0, 0)  # the loop's cycle edge
    trace_set.add(trace)

    duplicated_set = TraceSet(kind="mret")
    duplicated_set.add(duplicate_trace(trace, factor=2))
    return program, trace_set, duplicated_set


def figure2_traces():
    """The Figure 2 linked-list scan with the paper's T1/T2 MRET traces.

    T1 = $$begin, $$header, $$next (with the next->header cycle edge);
    T2 = $$inc, $$next.  Block $$inc is a single non-branch instruction,
    exactly as the paper discusses under Definition 1.
    """
    program = figure2_program()
    block_index = BlockIndex(program)
    begin = _block_from_label(program, block_index, "begin")
    header = _block_from_label(program, block_index, "header")
    inc = _block_from_label(program, block_index, "inc_", single=True)
    nxt = _block_from_label(program, block_index, "next")

    trace_set = TraceSet(kind="mret")
    t1 = trace_set.new_trace(anchor=begin.start)
    t1.add_block(begin)   # $$T1.begin
    t1.add_block(header)  # $$T1.header
    t1.add_block(nxt)     # $$T1.next
    t1.add_edge(0, 1)
    t1.add_edge(1, 2)
    t1.add_edge(2, 1)     # the next -> header cycle
    trace_set.add(t1)

    t2 = trace_set.new_trace(anchor=inc.start)
    t2.add_block(inc)     # $$T2.inc
    t2.add_block(nxt)     # $$T2.next
    t2.add_edge(0, 1)
    trace_set.add(t2)
    return program, trace_set


def figure3_tea():
    """Figure 3: the whole-program TEA for the Figure 2 traces."""
    program, trace_set = figure2_traces()
    tea = build_tea(trace_set)
    return program, trace_set, tea


def _trace_listing(trace, program):
    lines = ["Trace T%d (%s):" % (trace.trace_id, trace.kind)]
    for tbb in trace:
        successors = ", ".join(
            "%#x->%s#%d" % (label, trace.tbbs[index].name, index)
            for label, index in sorted(tbb.successors.items())
        )
        lines.append(
            "  %-22s#%d [%#x..%#x]  %s"
            % (tbb.name, tbb.index, tbb.block.start, tbb.block.end,
               successors or "(exit to NTE)")
        )
    return "\n".join(lines)


def render_figure1():
    program, trace_set, duplicated_set = figure1_traces()
    sections = [
        "Figure 1(a): code snippet",
        program.disassemble(),
        "",
        "Figure 1(b): the recorded trace",
        _trace_listing(trace_set.traces[0], program),
        "",
        "Figure 1(d): the trace duplicated for unroll profiling",
        _trace_listing(duplicated_set.traces[0], program),
    ]
    return "\n".join(sections)


def render_figure2():
    program, trace_set = figure2_traces()
    cfg = build_cfg(program)
    sections = [
        "Figure 2(a): sample code",
        program.disassemble(),
        "",
        "Figure 2(b): CFG (Graphviz)",
        cfg.to_dot(),
        "",
        "Figure 2(c): MRET traces",
    ]
    for trace in trace_set:
        sections.append(_trace_listing(trace, program))
    return "\n".join(sections)


def render_figure3(demo_steps=12):
    program, trace_set, tea = figure3_tea()
    sections = [
        "Figure 3(b): TEA for the whole program (Graphviz)",
        tea.to_dot(),
        "",
        "Replaying the first %d block transitions through the TEA:" % demo_steps,
    ]
    replayer = TeaReplayer(tea, config=ReplayConfig.global_local())
    block_index = BlockIndex(program)
    steps = []

    def on_transition(transition):
        if len(steps) >= demo_steps or transition.next_start is None:
            return
        state = replayer.step(transition)
        steps.append(
            "  pc=%#x executed, next=%#x -> state %s"
            % (transition.block.start, transition.next_start, state.name)
        )

    builder = DynamicBlockBuilder(
        block_index, program.entry, flavor=FLAVOR_STARDBT,
        on_transition=on_transition,
    )
    executor = Executor(program)
    executor.run(builder.feed)
    sections.extend(steps)
    return "\n".join(sections)


def render_all():
    """Every figure, concatenated (the CLI 'figures' command)."""
    return "\n\n".join(
        [
            "=" * 70,
            render_figure1(),
            "=" * 70,
            render_figure2(),
            "=" * 70,
            render_figure3(),
        ]
    )
