"""Structured counters, gauges and monotonic per-phase timers.

The registry is deliberately tiny: metric objects are plain
``__slots__`` holders that hot paths mutate directly (``counter.value
+= n`` is one attribute store), and the registry itself is only touched
at creation and snapshot time.  Engines that batch work (the batched
replay loop) accumulate into locals and flush into these objects at
batch boundaries.

Names are dotted strings (``replay.blocks``, ``harness.dbt``); the
snapshot groups metrics by kind, not by prefix, so consumers can apply
their own namespace conventions.
"""

import time


class Counter:
    """A monotonically growing event count.

    ``value`` is public on purpose: the replayer's batch loop adds to it
    directly, and :class:`~repro.core.replay.ReplayStats` exposes it
    through attribute properties.
    """

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "<Counter %s=%s>" % (self.name, self.value)


class Gauge:
    """A last-value-wins measurement (sizes, heights, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "<Gauge %s=%s>" % (self.name, self.value)


class PhaseTimer:
    """Accumulates monotonic wall-clock time spent in one named phase.

    Usable as a context manager (re-entrant starts are rejected so
    nested misuse fails loudly instead of double-counting)::

        with registry.timer("harness.dbt"):
            ...  # the phase
    """

    __slots__ = ("name", "elapsed", "count", "_started")

    def __init__(self, name):
        self.name = name
        self.elapsed = 0.0
        self.count = 0
        self._started = None

    def start(self):
        if self._started is not None:
            raise RuntimeError("timer %r already running" % self.name)
        self._started = time.perf_counter()

    def stop(self):
        if self._started is None:
            raise RuntimeError("timer %r is not running" % self.name)
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        self.count += 1

    @property
    def running(self):
        return self._started is not None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def __repr__(self):
        return "<PhaseTimer %s %.6fs x%d>" % (self.name, self.elapsed, self.count)


class MetricsRegistry:
    """One consistent store for counters, gauges and phase timers.

    ``counter`` / ``gauge`` / ``timer`` create on first use and return
    the same object thereafter, so independently wired components that
    agree on a name share a metric.
    """

    __slots__ = ("_counters", "_gauges", "_timers")

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._timers = {}

    # -- creation / access --------------------------------------------

    def counter(self, name):
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name):
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name):
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = PhaseTimer(name)
        return found

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    # -- introspection ------------------------------------------------

    def counters(self):
        """Name -> value mapping for all counters (sorted by name)."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def snapshot(self):
        """JSON-able dict of everything the registry holds."""
        return {
            "counters": self.counters(),
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "timers": {
                name: {
                    "seconds": self._timers[name].elapsed,
                    "count": self._timers[name].count,
                }
                for name in sorted(self._timers)
            },
        }

    def merge(self, other):
        """Fold another registry (or a snapshot of one) into this one.

        ``other`` may be a :class:`MetricsRegistry`, the dict produced by
        :meth:`snapshot`, or a full ``Observability`` snapshot (the
        wrapper dict with a ``"metrics"`` section).  Counter values and
        timer totals (elapsed seconds and completion counts) add;
        gauges adopt the other side's value when it is not ``None``
        (last writer wins, matching :meth:`Gauge.set` semantics).

        This is how the sharded harness folds per-worker registries
        into the parent's: each worker ships ``snapshot()`` across the
        process boundary and the parent merges them in completion
        order.  Merging is commutative for counters and timers, so the
        completion order does not change the totals.  Returns ``self``
        so merges chain.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        elif "metrics" in other and isinstance(other.get("metrics"), dict):
            other = other["metrics"]
        for name, value in other.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in other.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).value = value
        for name, timing in other.get("timers", {}).items():
            timer = self.timer(name)
            timer.elapsed += timing["seconds"]
            timer.count += timing["count"]
        return self

    def reset(self):
        """Zero every metric (timers must not be running)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = None
        for timer in self._timers.values():
            if timer.running:
                raise RuntimeError("cannot reset running timer %r" % timer.name)
            timer.elapsed = 0.0
            timer.count = 0

    def __len__(self):
        return len(self._counters) + len(self._gauges) + len(self._timers)

    def __repr__(self):
        return "<MetricsRegistry %d counters, %d gauges, %d timers>" % (
            len(self._counters), len(self._gauges), len(self._timers),
        )
