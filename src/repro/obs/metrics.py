"""Structured counters, gauges and monotonic per-phase timers.

The registry is deliberately tiny: metric objects are plain
``__slots__`` holders that hot paths mutate directly (``counter.value
+= n`` is one attribute store), and the registry itself is only touched
at creation and snapshot time.  Engines that batch work (the batched
replay loop) accumulate into locals and flush into these objects at
batch boundaries.

Names are dotted strings (``replay.blocks``, ``harness.dbt``); the
snapshot groups metrics by kind, not by prefix, so consumers can apply
their own namespace conventions.
"""

import time


class Counter:
    """A monotonically growing event count.

    ``value`` is public on purpose: the replayer's batch loop adds to it
    directly, and :class:`~repro.core.replay.ReplayStats` exposes it
    through attribute properties.
    """

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "<Counter %s=%s>" % (self.name, self.value)


class Gauge:
    """A last-value-wins measurement (sizes, heights, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "<Gauge %s=%s>" % (self.name, self.value)


class PhaseTimer:
    """Accumulates monotonic wall-clock time spent in one named phase.

    Usable as a context manager (re-entrant starts are rejected so
    nested misuse fails loudly instead of double-counting)::

        with registry.timer("harness.dbt"):
            ...  # the phase
    """

    __slots__ = ("name", "elapsed", "count", "_started")

    def __init__(self, name):
        self.name = name
        self.elapsed = 0.0
        self.count = 0
        self._started = None

    def start(self):
        if self._started is not None:
            raise RuntimeError("timer %r already running" % self.name)
        self._started = time.perf_counter()

    def stop(self):
        if self._started is None:
            raise RuntimeError("timer %r is not running" % self.name)
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        self.count += 1

    @property
    def running(self):
        return self._started is not None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def __repr__(self):
        return "<PhaseTimer %s %.6fs x%d>" % (self.name, self.elapsed, self.count)


class Histogram:
    """A bounded-reservoir view of a value distribution (latencies).

    Keeps the most recent ``capacity`` observations in a ring buffer
    plus an exact running count and total; percentiles are computed
    over the retained window at read time.  Overwriting the oldest
    sample (rather than random replacement) keeps the metric fully
    deterministic, which the cluster tests rely on.  The router uses
    these for its per-method forward latencies (p50/p95/p99).
    """

    __slots__ = ("name", "count", "total", "capacity", "_samples",
                 "_cursor")

    DEFAULT_CAPACITY = 4096

    def __init__(self, name, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.capacity = int(capacity)
        self._samples = []
        self._cursor = 0

    def observe(self, value):
        self.count += 1
        self.total += value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, p):
        """Nearest-rank percentile over the retained window.

        ``p`` is in [0, 100]; returns ``None`` when nothing has been
        observed yet.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if p <= 0:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[min(int(rank), len(ordered)) - 1]

    def extend(self, samples, count=None, total=None):
        """Fold raw samples (another histogram's window) into this one.

        ``count``/``total`` override the exact running totals when the
        sample window is itself a truncation (registry merge).
        """
        n_before = self.count
        t_before = self.total
        for value in samples:
            self.observe(value)
        if count is not None:
            self.count = n_before + count
        if total is not None:
            self.total = t_before + total

    def snapshot(self):
        return {
            "count": self.count,
            "total": self.total,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self._samples) if self._samples else None,
        }

    @property
    def samples(self):
        """The retained window (a copy, unsorted)."""
        return list(self._samples)

    def __repr__(self):
        return "<Histogram %s n=%d>" % (self.name, self.count)


class MetricsRegistry:
    """One consistent store for counters, gauges, timers and histograms.

    ``counter`` / ``gauge`` / ``timer`` / ``histogram`` create on first
    use and return the same object thereafter, so independently wired
    components that agree on a name share a metric.
    """

    __slots__ = ("_counters", "_gauges", "_timers", "_histograms")

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._timers = {}
        self._histograms = {}

    # -- creation / access --------------------------------------------

    def counter(self, name):
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name):
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name):
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = PhaseTimer(name)
        return found

    def histogram(self, name, capacity=Histogram.DEFAULT_CAPACITY):
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, capacity)
        return found

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    # -- introspection ------------------------------------------------

    def counters(self):
        """Name -> value mapping for all counters (sorted by name)."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def snapshot(self):
        """JSON-able dict of everything the registry holds."""
        snap = {
            "counters": self.counters(),
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "timers": {
                name: {
                    "seconds": self._timers[name].elapsed,
                    "count": self._timers[name].count,
                }
                for name in sorted(self._timers)
            },
        }
        if self._histograms:
            snap["histograms"] = {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            }
        return snap

    def merge(self, other):
        """Fold another registry (or a snapshot of one) into this one.

        ``other`` may be a :class:`MetricsRegistry`, the dict produced by
        :meth:`snapshot`, or a full ``Observability`` snapshot (the
        wrapper dict with a ``"metrics"`` section).  Counter values and
        timer totals (elapsed seconds and completion counts) add;
        gauges adopt the other side's value when it is not ``None``
        (last writer wins, matching :meth:`Gauge.set` semantics).

        This is how the sharded harness folds per-worker registries
        into the parent's: each worker ships ``snapshot()`` across the
        process boundary and the parent merges them in completion
        order.  Merging is commutative for counters and timers, so the
        completion order does not change the totals.  Returns ``self``
        so merges chain.
        """
        if isinstance(other, MetricsRegistry):
            # Registry-to-registry merges carry the raw histogram
            # windows across; dict snapshots only carry the summary
            # (count/total), folded below.
            for name, histogram in other._histograms.items():
                self.histogram(name, histogram.capacity).extend(
                    histogram._samples, count=histogram.count,
                    total=histogram.total,
                )
            other = other.snapshot()
            other.pop("histograms", None)
        elif "metrics" in other and isinstance(other.get("metrics"), dict):
            other = other["metrics"]
        for name, summary in other.get("histograms", {}).items():
            self.histogram(name).extend(
                (), count=summary.get("count", 0),
                total=summary.get("total", 0.0),
            )
        for name, value in other.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in other.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).value = value
        for name, timing in other.get("timers", {}).items():
            timer = self.timer(name)
            timer.elapsed += timing["seconds"]
            timer.count += timing["count"]
        return self

    def reset(self):
        """Zero every metric (timers must not be running)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = None
        for timer in self._timers.values():
            if timer.running:
                raise RuntimeError("cannot reset running timer %r" % timer.name)
            timer.elapsed = 0.0
            timer.count = 0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram._samples = []
            histogram._cursor = 0

    def __len__(self):
        return (len(self._counters) + len(self._gauges)
                + len(self._timers) + len(self._histograms))

    def __repr__(self):
        return "<MetricsRegistry %d counters, %d gauges, %d timers, %d histograms>" % (
            len(self._counters), len(self._gauges), len(self._timers),
            len(self._histograms),
        )
