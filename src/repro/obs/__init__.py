"""``repro.obs`` — the observability subsystem.

Every engine in this reproduction (the interpreter, MiniPin, the TEA
replayer, the online recorder, the harness) can be handed one
:class:`Observability` object and will report into it:

- **structured counters and gauges** (:class:`MetricsRegistry`) with
  dotted names (``replay.blocks``, ``pin.translated_blocks``, ...);
- **monotonic per-phase timers** (:class:`PhaseTimer`) measuring
  wall-clock time spent in named phases (``exec.run``, ``harness.dbt``);
- a **ring-buffer event tracer** (:class:`EventTracer`) with bounded
  memory for rare, structured events (trace commits, batch flushes);
- **JSON snapshot/export** (:func:`snapshot_to_json`,
  :meth:`Observability.dump`) so any run's internals can be diffed,
  archived, or fed to external tooling.

The replayer's :class:`~repro.core.replay.ReplayStats` is a thin
attribute facade over this registry, so all pre-existing code keeps
reading ``stats.blocks`` while ``repro tools metrics`` and the harness
read one consistent store.  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
)
from repro.obs.tracer import EventTracer, TraceEvent
from repro.obs.export import Observability, snapshot_to_json

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "EventTracer",
    "TraceEvent",
    "Observability",
    "snapshot_to_json",
]
