"""A bounded ring-buffer event tracer.

For rare, structured events — trace commits, replay batch flushes,
harness stage completions — where a counter is too coarse but an
unbounded log would defeat the "low overhead" point.  The buffer keeps
the most recent ``capacity`` events; older ones are overwritten and
counted in ``dropped``.
"""


class TraceEvent:
    """One traced event: a global sequence number, a category, a payload."""

    __slots__ = ("seq", "category", "payload")

    def __init__(self, seq, category, payload):
        self.seq = seq
        self.category = category
        self.payload = payload

    def to_dict(self):
        return {"seq": self.seq, "category": self.category,
                "payload": self.payload}

    def __repr__(self):
        return "<TraceEvent #%d %s %r>" % (self.seq, self.category, self.payload)


class EventTracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent` objects."""

    def __init__(self, capacity=256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring = [None] * capacity
        self._emitted = 0

    def emit(self, category, **payload):
        """Record one event; overwrites the oldest when full."""
        event = TraceEvent(self._emitted, category, payload)
        self._ring[self._emitted % self.capacity] = event
        self._emitted += 1
        return event

    @property
    def emitted(self):
        """Total events ever emitted (including overwritten ones)."""
        return self._emitted

    @property
    def dropped(self):
        """Events lost to ring overwrites."""
        return max(0, self._emitted - self.capacity)

    def events(self):
        """The retained events, oldest first."""
        if self._emitted <= self.capacity:
            return [event for event in self._ring[:self._emitted]]
        start = self._emitted % self.capacity
        return self._ring[start:] + self._ring[:start]

    def clear(self):
        self._ring = [None] * self.capacity
        self._emitted = 0

    def snapshot(self):
        """JSON-able dict: capacity, totals, and the retained events."""
        return {
            "capacity": self.capacity,
            "emitted": self._emitted,
            "dropped": self.dropped,
            "events": [event.to_dict() for event in self.events()],
        }

    def __len__(self):
        return min(self._emitted, self.capacity)

    def __repr__(self):
        return "<EventTracer %d/%d events (%d dropped)>" % (
            len(self), self.capacity, self.dropped,
        )
