"""The :class:`Observability` façade and JSON snapshot/export.

One ``Observability`` object bundles the metrics registry with an
optional tracer; engines accept it as an ``obs=`` keyword and report
into it.  Snapshots are plain dicts (JSON-able end to end) so they can
be printed, diffed across runs, or written next to benchmark artifacts.
"""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import EventTracer

#: Snapshot schema version, bumped on incompatible layout changes.
SNAPSHOT_VERSION = 1


def snapshot_to_json(snapshot, indent=2):
    """Serialise a snapshot dict to JSON text (sorted keys, stable)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)


class Observability:
    """Metrics registry + optional bounded event tracer.

    Parameters
    ----------
    metrics:
        An existing :class:`MetricsRegistry` to share; a fresh one is
        created otherwise.
    tracer:
        An existing :class:`EventTracer`, or ``None`` for no tracing.
    trace_capacity:
        Convenience: when > 0 and no ``tracer`` is given, create a
        tracer with that ring capacity.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics=None, tracer=None, trace_capacity=0):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None and trace_capacity > 0:
            tracer = EventTracer(trace_capacity)
        self.tracer = tracer

    # -- convenience passthroughs -------------------------------------

    def counter(self, name):
        return self.metrics.counter(name)

    def gauge(self, name):
        return self.metrics.gauge(name)

    def timer(self, name):
        return self.metrics.timer(name)

    def emit(self, category, **payload):
        """Trace one event; a no-op when no tracer is attached."""
        if self.tracer is not None:
            self.tracer.emit(category, **payload)

    # -- export -------------------------------------------------------

    def snapshot(self):
        """One JSON-able dict over everything this object observed."""
        snap = {"version": SNAPSHOT_VERSION, "metrics": self.metrics.snapshot()}
        if self.tracer is not None:
            snap["trace"] = self.tracer.snapshot()
        return snap

    def to_json(self, indent=2):
        return snapshot_to_json(self.snapshot(), indent=indent)

    def dump(self, path, indent=2):
        """Write the snapshot as JSON to ``path`` atomically."""
        from repro.util import atomic_write_text

        snap = self.snapshot()
        atomic_write_text(path, snapshot_to_json(snap, indent=indent) + "\n")
        return snap

    def __repr__(self):
        return "<Observability %r tracer=%r>" % (self.metrics, self.tracer)
