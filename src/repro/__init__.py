"""TEA: Trace Execution Automata in Dynamic Binary Translation.

A full, from-scratch reproduction of Porto, Araujo, Borin & Wu's TEA
paper: trace recording strategies (MRET / MFET / TT / CTT), the TEA
automaton with Algorithm 1 (offline construction) and Algorithm 2
(online recording), the optimised transition function of Section 4.2
(global B+ tree directory + per-state local caches), and the two host
environments the paper uses — a StarDBT-like translator baseline and a
Pin-like instrumentation engine — all running on a small x86-flavoured
ISA with its own assembler and interpreter.

Quickstart::

    from repro import assemble, StarDBT, Pin, TeaReplayTool, build_tea

    program = assemble(SOURCE)
    recorded = StarDBT(program, strategy="mret").run()
    tool = TeaReplayTool(trace_set=recorded.trace_set)
    result = Pin(program, tool=tool).run()
    print(tool.coverage, result.megacycles)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and ``python -m repro.harness all`` for the paper's tables.
"""

from repro.core import (
    TEA,
    MemoryModel,
    OnlineTeaRecorder,
    ReplayConfig,
    TeaProfile,
    TeaReplayer,
    build_tea,
    duplicate_trace,
    load_tea,
    save_tea,
)
from repro.cpu import Executor, Machine, run_program
from repro.dbt import CodeCache, CostModel, CostParameters, StarDBT
from repro.errors import ReproError
from repro.isa import Program, assemble
from repro.obs import EventTracer, MetricsRegistry, Observability
from repro.pin import Pin, Pintool, TeaRecordTool, TeaReplayTool, run_native
from repro.store import (
    AutomatonStore,
    dump_tea_binary,
    load_tea_binary,
    save_tea_binary,
)
from repro.traces import (
    STRATEGIES,
    TraceSet,
    load_trace_set,
    make_recorder,
    save_trace_set,
)
from repro.traces.recorder import RecorderLimits
from repro.workloads import BENCHMARKS, load_benchmark

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # ISA + CPU
    "assemble",
    "Program",
    "Machine",
    "Executor",
    "run_program",
    # traces
    "TraceSet",
    "STRATEGIES",
    "make_recorder",
    "RecorderLimits",
    "save_trace_set",
    "load_trace_set",
    # TEA core
    "TEA",
    "build_tea",
    "TeaReplayer",
    "ReplayConfig",
    "OnlineTeaRecorder",
    "TeaProfile",
    "MemoryModel",
    "duplicate_trace",
    "save_tea",
    "load_tea",
    # snapshot store
    "AutomatonStore",
    "dump_tea_binary",
    "load_tea_binary",
    "save_tea_binary",
    # engines
    "StarDBT",
    "CodeCache",
    "CostModel",
    "CostParameters",
    "Pin",
    "Pintool",
    "TeaReplayTool",
    "TeaRecordTool",
    "run_native",
    # observability
    "Observability",
    "MetricsRegistry",
    "EventTracer",
    # workloads
    "BENCHMARKS",
    "load_benchmark",
    # errors
    "ReproError",
]
