"""Trace optimization support built on TEA profiles.

The paper motivates TEA with the trace-optimization workflow of Section
2: an optimizer wants to unroll a hot trace, but accurate per-copy
profile data for the unrolled code cannot be collected by replaying the
original trace — it *can* be collected by replaying the **duplicated**
trace, whose per-copy TEA states map one-to-one onto the unrolled
instructions.  :mod:`repro.optimize.unroll` implements that mapping.
"""

from repro.optimize.unroll import (
    UnrolledInstruction,
    UnrollReport,
    annotate_unrolled,
)

__all__ = ["UnrolledInstruction", "UnrollReport", "annotate_unrolled"]
