"""Per-copy profile annotation for unrolled traces (Section 2).

Given a *duplicated* trace (:func:`repro.core.duplication.duplicate_trace`)
and the profile a TEA replay collected over it, this module produces the
instruction-level annotations for the corresponding *unrolled* trace:
copy ``k`` of the duplicated trace executed the same original addresses
the ``k``-th unrolled body will contain, so its per-state counts carry
over directly — "instructions (C) and (D) in Figure 1(d) are the same as
instructions (5) and (6) in Figure 1(c), thus the collected profile
information can be used to optimize the unrolled loop."
"""

from repro.errors import TraceError


class UnrolledInstruction:
    """One instruction of the conceptual unrolled trace."""

    __slots__ = ("copy", "position", "instruction", "executions")

    def __init__(self, copy, position, instruction, executions):
        self.copy = copy
        self.position = position
        self.instruction = instruction
        self.executions = executions

    @property
    def addr(self):
        return self.instruction.addr

    def __repr__(self):
        return "<UnrolledInstruction copy=%d %#x x%d>" % (
            self.copy,
            self.instruction.addr,
            self.executions,
        )


class UnrollReport:
    """Annotation table for one unrolled trace."""

    def __init__(self, original_length, factor, instructions):
        self.original_length = original_length
        self.factor = factor
        self.instructions = instructions

    def copy_executions(self, copy):
        """Executions of copy ``copy``'s body (head-instruction count)."""
        for entry in self.instructions:
            if entry.copy == copy:
                return entry.executions
        return 0

    @property
    def total_iterations(self):
        return sum(self.copy_executions(copy) for copy in range(self.factor))

    def imbalance(self):
        """max/min execution ratio across copies (1.0 = perfectly even).

        A strong imbalance tells the optimizer the loop's trip counts do
        not divide evenly by the unroll factor — it needs a prologue or
        epilogue rather than a naive x-factor body.
        """
        counts = [self.copy_executions(copy) for copy in range(self.factor)]
        low = min(counts)
        high = max(counts)
        if low == 0:
            return float("inf") if high else 1.0
        return high / low

    def to_text(self, program=None):
        lines = [
            "unrolled trace annotation (factor %d, %d original instructions)"
            % (self.factor, self.original_length),
        ]
        current_copy = None
        for entry in self.instructions:
            if entry.copy != current_copy:
                current_copy = entry.copy
                lines.append("  -- copy %d --" % current_copy)
            lines.append(
                "  %#010x  %-28s x%d"
                % (entry.addr, entry.instruction.to_assembly(),
                   entry.executions)
            )
        return "\n".join(lines)


def annotate_unrolled(program, duplicated_trace, tea, profile):
    """Build the :class:`UnrollReport` for a duplicated trace's profile.

    ``duplicated_trace`` must have been produced by
    :func:`~repro.core.duplication.duplicate_trace`; ``profile`` must
    come from replaying it through ``tea``.  Each duplicated TBB's state
    count annotates every instruction of the matching unrolled body.
    """
    total = len(duplicated_trace.tbbs)
    factors = [
        factor for factor in range(2, total + 1)
        if total % factor == 0
    ]
    if not factors:
        raise TraceError("duplicated trace has indivisible length %d" % total)
    # The duplication layout is copy-major: original length = total/factor
    # with TBB i belonging to copy i // original_length.  Recover the
    # original length from the repeating block-start pattern.
    original_length = None
    starts = [tbb.block.start for tbb in duplicated_trace.tbbs]
    for factor in factors:
        size = total // factor
        pattern = starts[:size]
        if all(
            starts[copy * size:(copy + 1) * size] == pattern
            for copy in range(factor)
        ):
            original_length = size
            factor_found = factor
            break
    if original_length is None:
        raise TraceError("trace does not look like a duplication")

    instructions = []
    for tbb in duplicated_trace.tbbs:
        copy = tbb.index // original_length
        state = tea.state_for(tbb)
        executions = profile.state_counts.get(state.sid, 0)
        addr = tbb.block.start
        position = 0
        while True:
            instruction = program.instruction_at(addr)
            instructions.append(
                UnrolledInstruction(copy, position, instruction, executions)
            )
            position += 1
            if addr == tbb.block.end:
                break
            addr = instruction.fallthrough
    return UnrollReport(original_length, factor_found, instructions)
