"""A StarDBT-like dynamic binary translator runtime.

StarDBT translates IA-32 to IA-32, recording hot traces into a code cache
with replicated code.  This runtime reproduces its externally visible
behaviour on top of the SX86 interpreter:

- blocks are translated on first touch (one-time per-instruction cost);
- a trace recorder (MRET/CTT/TT/MFET) watches the block stream; recording
  adds per-block overhead while in the "Creating" state, and a committed
  trace pays a one-time build/link cost and lands in the code cache;
- execution inside traces runs at native speed (the whole point of code
  replication: no transition function), cold code pays a small tax;
- coverage is the fraction of dynamic instructions executed inside
  traces, under StarDBT counting (REP ops count once) — the "DBT"
  columns of Tables 2 and 3.

The trace-following cursor mirrors what linked trace code does: in-trace
edges and the cycle back to the trace head are direct jumps; leaving a
trace returns to translated cold code.
"""

from repro.cfg.basic_block import BlockIndex
from repro.cfg.builder import FLAVOR_STARDBT, DynamicBlockBuilder
from repro.cpu.executor import DEFAULT_MAX_INSTRUCTIONS, Executor
from repro.dbt.code_cache import CodeCache
from repro.dbt.cost import CostModel, CostParameters
from repro.traces import make_recorder
from repro.traces.recorder import STATE_CREATING


class DBTResult:
    """Outcome of one StarDBT run."""

    __slots__ = (
        "trace_set",
        "code_cache",
        "cost",
        "blocks",
        "instrs_dbt",
        "instrs_pin",
        "covered_dbt",
        "halted",
    )

    def __init__(self, trace_set, code_cache, cost, blocks, instrs_dbt,
                 instrs_pin, covered_dbt, halted):
        self.trace_set = trace_set
        self.code_cache = code_cache
        self.cost = cost
        self.blocks = blocks
        self.instrs_dbt = instrs_dbt
        self.instrs_pin = instrs_pin
        self.covered_dbt = covered_dbt
        self.halted = halted

    @property
    def coverage(self):
        """Covered fraction of dynamic instructions (StarDBT counting)."""
        return self.covered_dbt / self.instrs_dbt if self.instrs_dbt else 0.0

    @property
    def cycles(self):
        return self.cost.cycles

    @property
    def megacycles(self):
        return self.cost.megacycles

    def __repr__(self):
        return "<DBTResult traces=%d coverage=%.1f%% %.1f Mcycles>" % (
            len(self.trace_set),
            100.0 * self.coverage,
            self.megacycles,
        )


class StarDBT:
    """The runtime.  Build one per program run and call :meth:`run`."""

    def __init__(self, program, strategy="mret", limits=None,
                 cost_params=None, memory_model=None,
                 max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                 recorder_kwargs=None):
        self.program = program
        self.strategy = strategy
        self.block_index = BlockIndex(program)
        self.cost = CostModel(cost_params or CostParameters())
        self.code_cache = CodeCache(memory_model=memory_model)
        kwargs = dict(recorder_kwargs or {})
        kwargs["limits"] = limits
        kwargs["on_trace"] = self._trace_committed
        self.recorder = make_recorder(strategy, **kwargs)
        self.max_instructions = max_instructions

        self._translated = set()
        self._cursor = None  # (trace, index) while executing trace code
        self._covered_dbt = 0
        self._blocks = 0

    # ------------------------------------------------------------------

    def _trace_committed(self, trace):
        params = self.cost.params
        self.cost.charge(
            "trace_build", params.DBT_TRACE_BUILD_PER_TBB * len(trace)
        )
        self.code_cache.install(trace)

    def _handle(self, transition):
        cost = self.cost
        params = cost.params
        block = transition.block
        self._blocks += 1

        if block.key not in self._translated:
            self._translated.add(block.key)
            cost.charge(
                "translation",
                params.DBT_TRANSLATION_PER_INSTR * block.n_instrs,
            )

        in_trace = self._cursor is not None
        if in_trace:
            self._covered_dbt += transition.instrs_dbt
            cost.charge_instructions(transition.instrs_dbt)
        else:
            cost.charge_instructions(
                transition.instrs_dbt, 1.0 + params.DBT_COLD_TAX
            )

        next_start = transition.next_start
        if next_start is None:
            self._cursor = None
        elif self._cursor is not None:
            trace, index = self._cursor
            successor = trace.tbbs[index].successors.get(next_start)
            if successor is not None:
                self._cursor = (trace, successor)
            elif next_start == trace.entry:
                self._cursor = (trace, 0)
            else:
                entered = self.recorder.traces.trace_at(next_start)
                self._cursor = (entered, 0) if entered is not None else None
        else:
            entered = self.recorder.traces.trace_at(next_start)
            if entered is not None:
                self._cursor = (entered, 0)

        self.recorder.observe(transition)
        if self.recorder.state == STATE_CREATING:
            cost.charge("recording", params.DBT_RECORD_PER_BLOCK)

    # ------------------------------------------------------------------

    def run(self):
        """Execute the program under the DBT; returns :class:`DBTResult`."""
        executor = Executor(
            self.program, max_instructions=self.max_instructions
        )
        builder = DynamicBlockBuilder(
            self.block_index, self.program.entry, flavor=FLAVOR_STARDBT
        )
        consumed = [0, 0]

        def on_event(event):
            consumed[0] += event.instrs_dbt
            consumed[1] += event.instrs_pin
            transition = builder.feed(event)
            if transition is not None:
                self._handle(transition)

        result = executor.run(on_event)
        final = builder.flush(
            result.final_pc,
            result.instrs_dbt - consumed[0],
            result.instrs_pin - consumed[1],
        )
        self._handle(final)
        trace_set = self.recorder.finish()
        return DBTResult(
            trace_set,
            self.code_cache,
            self.cost,
            self._blocks,
            result.instrs_dbt,
            result.instrs_pin,
            self._covered_dbt,
            result.halted,
        )
