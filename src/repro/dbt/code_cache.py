"""The DBT code cache: replicated trace code, byte-accounted.

This is the baseline representation Table 1 compares TEA against: every
trace is materialised as translated code (expansion over the original
bytes), exit stubs for its side exits, link records for its internal
edges, an entry stub and a descriptor — see
:class:`~repro.core.memory_model.MemoryModel` for the constants.

Tree-strategy recorders keep extending committed traces, so totals are
computed on demand from the live trace objects rather than snapshotted at
install time.
"""

from repro.core.memory_model import MemoryModel


class CodeCache:
    """Holds installed traces and accounts their replicated footprint."""

    def __init__(self, memory_model=None, capacity_bytes=None):
        self.memory_model = memory_model or MemoryModel()
        self.capacity_bytes = capacity_bytes
        self._traces = []

    def install(self, trace):
        """Install a committed trace (idempotent per trace object)."""
        if trace not in self._traces:
            self._traces.append(trace)

    @property
    def traces(self):
        return list(self._traces)

    @property
    def n_traces(self):
        return len(self._traces)

    @property
    def n_tbbs(self):
        return sum(len(trace) for trace in self._traces)

    @property
    def total_bytes(self):
        """Replicated-code footprint of everything installed."""
        return sum(
            self.memory_model.dbt_trace_bytes(trace) for trace in self._traces
        )

    @property
    def is_full(self):
        if self.capacity_bytes is None:
            return False
        return self.total_bytes >= self.capacity_bytes

    def trace_bytes(self, trace):
        return self.memory_model.dbt_trace_bytes(trace)

    def __len__(self):
        return len(self._traces)

    def __repr__(self):
        return "<CodeCache %d traces, %.1f KB>" % (
            len(self._traces),
            self.total_bytes / 1024.0,
        )
