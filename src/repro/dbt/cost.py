"""Cycle-accounting cost model.

The paper reports wall-clock seconds on a 2010 Core i7; this reproduction
reports *counted cycles* instead, with one shared set of constants used by
every engine, so every ratio in Tables 2-4 is a ratio of counted work.
The constants below are calibrated so the geomean ratios land in the
paper's bands; the per-benchmark *spread* is emergent (it comes from each
workload's block sizes, trace exit rates, indirect-branch mix and trace
counts, not from per-benchmark constants).

Native execution
    ``NATIVE_INSTRUCTION`` — 1 cycle per instruction; everything is
    normalised against this.

Pin-hosted execution (MiniPin)
    ``PIN_BLOCK_STUB`` — per-block dispatch tax of Pin's JIT (drives the
    "Without Pintool" column's ~1.5x geomean; small-block integer codes
    pay more per instruction than large-block FP loops, as in the paper).
    ``PIN_TRANSLATION_PER_INSTR`` — one-time JIT cost per newly seen
    instruction (code-footprint-heavy benchmarks such as gcc show higher
    bare-Pin overhead, as in Table 4).
    ``PIN_INDIRECT_EXTRA`` — per indirect-branch edge (Pin resolves
    indirect targets through its code cache hash; call-heavy eon/perlbmk
    feel it).

TEA transition function (Section 4.2)
    ``CALLBACK_FAST`` — the inlined analysis when the current state has
    an explicit transition for the next PC (the optimised common case).
    ``CALLBACK_SLOW`` — the out-of-line instrumentation call taken on any
    other path (context spill + call; dominates the "Empty" column).
    ``IN_TRACE_TRANSITION`` — successor-map hit work.
    ``CACHE_HIT`` / ``CACHE_MISS`` / ``CACHE_INSERT`` — the per-state
    local cache (a failed probe costs ``CACHE_MISS``, equal to
    ``CACHE_HIT`` by default since probing costs the same whether or not
    the entry is present).
    ``LIST_ELEMENT`` — per linked-list entry scanned on a global probe
    (the "No Global" configurations; linear in trace count — gcc and
    vortex blow up exactly as in Table 4).
    ``BPTREE_NODE`` — per B+ tree node visited on a global probe.
    ``HASH_SLOT`` / ``ARRAY_COMPARISON`` — per slot touched in the hash
    directory / per binary-search comparison in the sorted-array
    directory (the future-work lookup structures; see
    ``bench_ablation_directories``).
    ``ENTER_TRACE`` — bookkeeping when a probe enters a trace.

DBT (StarDBT-like) execution
    ``DBT_TRANSLATION_PER_INSTR`` — one-time translation per instruction.
    ``DBT_COLD_TAX`` — extra per-instruction cost of translated cold code.
    ``DBT_RECORD_PER_BLOCK`` — per-block overhead while a trace is being
    recorded (the "Creating" state).
    ``DBT_TRACE_BUILD_PER_TBB`` — one-time trace construction/patching.

Recorder-side (MiniPin TEA recording, Table 3)
    ``RECORD_COUNTER`` — bumping a backward-branch counter.
    ``RECORD_APPEND`` — appending a TBB while creating a trace.
"""


class CostParameters:
    """The documented constants; instantiate to tweak in ablations."""

    __slots__ = (
        "NATIVE_INSTRUCTION",
        "PIN_BLOCK_STUB",
        "PIN_TRANSLATION_PER_INSTR",
        "PIN_INDIRECT_EXTRA",
        "CALLBACK_FAST",
        "CALLBACK_SLOW",
        "IN_TRACE_TRANSITION",
        "CACHE_HIT",
        "CACHE_MISS",
        "CACHE_INSERT",
        "LIST_ELEMENT",
        "BPTREE_NODE",
        "HASH_SLOT",
        "ARRAY_COMPARISON",
        "ENTER_TRACE",
        "DBT_TRANSLATION_PER_INSTR",
        "DBT_COLD_TAX",
        "DBT_RECORD_PER_BLOCK",
        "DBT_TRACE_BUILD_PER_TBB",
        "RECORD_COUNTER",
        "RECORD_APPEND",
    )

    def __init__(self, **overrides):
        self.NATIVE_INSTRUCTION = 1.0
        self.PIN_BLOCK_STUB = 1.6
        self.PIN_TRANSLATION_PER_INSTR = 60.0
        self.PIN_INDIRECT_EXTRA = 9.0
        self.CALLBACK_FAST = 30.0
        self.CALLBACK_SLOW = 110.0
        self.IN_TRACE_TRANSITION = 12.0
        self.CACHE_HIT = 6.0
        self.CACHE_MISS = 6.0
        self.CACHE_INSERT = 4.0
        self.LIST_ELEMENT = 3.0
        self.BPTREE_NODE = 18.0
        self.HASH_SLOT = 8.0
        self.ARRAY_COMPARISON = 5.0
        self.ENTER_TRACE = 10.0
        self.DBT_TRANSLATION_PER_INSTR = 40.0
        self.DBT_COLD_TAX = 0.15
        self.DBT_RECORD_PER_BLOCK = 30.0
        self.DBT_TRACE_BUILD_PER_TBB = 200.0
        self.RECORD_COUNTER = 8.0
        self.RECORD_APPEND = 25.0
        for name, value in overrides.items():
            if name not in self.__slots__:
                raise ValueError("unknown cost parameter %r" % name)
            setattr(self, name, value)


class CostModel:
    """Accumulates cycles, with a per-category breakdown for diagnosis."""

    __slots__ = ("params", "cycles", "breakdown")

    def __init__(self, params=None):
        self.params = params or CostParameters()
        self.cycles = 0.0
        self.breakdown = {}

    def charge(self, category, cycles):
        """Add ``cycles`` under ``category``."""
        self.cycles += cycles
        self.breakdown[category] = self.breakdown.get(category, 0.0) + cycles

    def charge_instructions(self, count, per_instruction=None):
        rate = (
            self.params.NATIVE_INSTRUCTION
            if per_instruction is None
            else per_instruction
        )
        self.charge("instructions", count * rate)

    @property
    def megacycles(self):
        return self.cycles / 1e6

    def report(self):
        """Human-readable breakdown, largest first."""
        lines = ["total: %.0f cycles" % self.cycles]
        for category, cycles in sorted(
            self.breakdown.items(), key=lambda item: -item[1]
        ):
            lines.append("  %-24s %14.0f" % (category, cycles))
        return "\n".join(lines)

    def __repr__(self):
        return "<CostModel %.0f cycles>" % self.cycles
