"""StarDBT-like dynamic binary translator baseline.

The paper's baseline represents traces by *replicating* their code in a
code cache; this package provides that runtime:

- :mod:`repro.dbt.cost` — the cycle-accounting cost model shared by every
  engine (native, DBT, MiniPin, TEA replay).  All constants are
  documented there; Table 2/3 times and Table 4 slowdowns are ratios of
  these counted cycles.
- :mod:`repro.dbt.code_cache` — the replicated-trace code cache and its
  byte accounting (Table 1's "DBT" columns).
- :mod:`repro.dbt.stardbt` — the runtime: translates blocks on first
  touch, drives a trace recorder, installs traces, executes them from the
  cache, and reports coverage/time.
"""

from repro.dbt.code_cache import CodeCache
from repro.dbt.cost import CostModel, CostParameters
from repro.dbt.stardbt import DBTResult, StarDBT

__all__ = ["CostModel", "CostParameters", "CodeCache", "StarDBT", "DBTResult"]
