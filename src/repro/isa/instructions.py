"""The SX86 instruction set.

The set is deliberately shaped like user-mode IA-32: ALU ops, loads and
stores through ``mov``, stack ops, direct and indirect branches, calls,
conditional jumps over the usual condition codes, REP-prefixed string
moves, and ``cpuid`` (which matters only because Pin splits dynamic basic
blocks at it — the Section 4.1 implementation challenge).

Each instruction knows its byte length (from :mod:`repro.isa.encoding`),
its address once laid out, and its control-flow role.  The interpreter in
:mod:`repro.cpu.executor` dispatches on ``opcode``.
"""

from repro.errors import AssemblerError
from repro.isa.operands import Imm, LabelRef, Mem, Reg

#: Condition codes accepted after ``j`` (e.g. ``jnz``), matching IA-32.
CONDITION_CODES = ("z", "nz", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns")


class OpcodeSpec:
    """Static metadata for one opcode.

    ``kind`` groups opcodes for the interpreter and the block builders:

    - ``"alu"``: two-operand ALU ops writing the destination and flags.
    - ``"unary"``: one-operand ALU ops (``inc``/``dec``/``neg``/``not``).
    - ``"mov"``/``"lea"``: data movement (no flags).
    - ``"cmp"``/``"test"``: flag-setting comparisons.
    - ``"push"``/``"pop"``: stack traffic through ``esp``.
    - ``"jmp"``/``"jcc"``/``"call"``/``"ret"``: control transfers.
    - ``"rep"``: REP-prefixed string operation (iterates on ``ecx``).
    - ``"misc"``: ``nop``, ``hlt``, ``cpuid``.
    """

    __slots__ = ("name", "kind", "arity", "splits_block")

    def __init__(self, name, kind, arity, splits_block=False):
        self.name = name
        self.kind = kind
        self.arity = arity
        self.splits_block = splits_block

    def __repr__(self):
        return "OpcodeSpec(%s/%s)" % (self.name, self.kind)


def _specs():
    table = {}

    def add(name, kind, arity, **kwargs):
        table[name] = OpcodeSpec(name, kind, arity, **kwargs)

    for name in ("add", "sub", "and", "or", "xor", "imul", "shl", "shr", "sar"):
        add(name, "alu", 2)
    for name in ("inc", "dec", "neg", "not"):
        add(name, "unary", 1)
    add("mov", "mov", 2)
    add("lea", "lea", 2)
    add("cmp", "cmp", 2)
    add("test", "test", 2)
    add("push", "push", 1)
    add("pop", "pop", 1)
    add("jmp", "jmp", 1)
    for cc in CONDITION_CODES:
        add("j" + cc, "jcc", 1)
    add("call", "call", 1)
    add("ret", "ret", 0)
    # REP string ops iterate ecx times; Pin splits blocks at them and counts
    # each iteration as one instruction, StarDBT counts the whole op as one.
    add("rep_movsd", "rep", 0, splits_block=True)
    add("rep_stosd", "rep", 0, splits_block=True)
    add("cpuid", "misc", 0, splits_block=True)
    add("nop", "misc", 0)
    add("hlt", "misc", 0)
    return table


#: Opcode name -> :class:`OpcodeSpec` for every SX86 opcode.
OPCODES = _specs()

_CONTROL_KINDS = frozenset(("jmp", "jcc", "call", "ret"))


class Instruction:
    """One decoded SX86 instruction.

    Instances are created by the assembler; ``addr`` and ``length`` are
    filled in during layout and ``target`` holds the resolved address for
    direct control transfers (``None`` for indirect ones and non-branches).
    """

    __slots__ = ("opcode", "operands", "addr", "length", "target")

    def __init__(self, opcode, operands=(), addr=None, length=None, target=None):
        if opcode not in OPCODES:
            raise AssemblerError("unknown opcode %r" % (opcode,))
        spec = OPCODES[opcode]
        if len(operands) != spec.arity:
            raise AssemblerError(
                "%s takes %d operand(s), got %d"
                % (opcode, spec.arity, len(operands))
            )
        self.opcode = opcode
        self.operands = tuple(operands)
        self.addr = addr
        self.length = length
        self.target = target

    @property
    def spec(self):
        return OPCODES[self.opcode]

    @property
    def kind(self):
        return OPCODES[self.opcode].kind

    @property
    def is_control(self):
        """True for instructions that terminate a basic block."""
        return OPCODES[self.opcode].kind in _CONTROL_KINDS or self.opcode == "hlt"

    @property
    def is_conditional(self):
        return OPCODES[self.opcode].kind == "jcc"

    @property
    def is_call(self):
        return OPCODES[self.opcode].kind == "call"

    @property
    def is_ret(self):
        return OPCODES[self.opcode].kind == "ret"

    @property
    def is_rep(self):
        return OPCODES[self.opcode].kind == "rep"

    @property
    def splits_block(self):
        """True when Pin (but not StarDBT) ends a dynamic block here."""
        return OPCODES[self.opcode].splits_block

    @property
    def is_indirect(self):
        """True for ``jmp``/``call`` through a register or memory operand."""
        if OPCODES[self.opcode].kind not in ("jmp", "call"):
            return False
        operand = self.operands[0]
        return isinstance(operand, (Reg, Mem))

    @property
    def condition(self):
        """The condition-code suffix for ``jcc`` instructions, else None."""
        if OPCODES[self.opcode].kind != "jcc":
            return None
        return self.opcode[1:]

    @property
    def fallthrough(self):
        """Address of the next sequential instruction."""
        return self.addr + self.length

    def __repr__(self):
        ops = ", ".join(str(op) for op in self.operands)
        where = "" if self.addr is None else "%#x: " % self.addr
        return "<%s%s %s>" % (where, self.opcode, ops) if ops else (
            "<%s%s>" % (where, self.opcode)
        )

    def to_assembly(self):
        """Render back to assembler syntax (labels already resolved)."""
        name = self.opcode.replace("rep_", "rep ")
        if not self.operands:
            return name
        rendered = []
        for operand in self.operands:
            if isinstance(operand, Imm) and self.is_control:
                rendered.append("%#x" % (operand.value & 0xFFFFFFFF,))
            elif isinstance(operand, LabelRef):
                rendered.append(operand.name)
            else:
                rendered.append(str(operand))
        return "%s %s" % (name, ", ".join(rendered))
