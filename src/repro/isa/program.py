"""Assembled SX86 program image.

A :class:`Program` is the unit every other subsystem consumes: the CPU
fetches instructions from it, the CFG builder walks it statically, the
workload generator emits one per benchmark, and trace records refer to its
addresses.

Code is laid out contiguously from ``base`` (default 0x08048000, the
classic Linux IA-32 text base).  An optional data section follows the
code, 16-byte aligned; its initial word values are applied to the machine
memory before execution.
"""

from repro.errors import ExecutionError

#: Default text-segment base, matching Linux IA-32 executables.
DEFAULT_BASE = 0x08048000

#: Default stack pointer on entry (grows down).
DEFAULT_STACK_TOP = 0x0BFFF000


class Program:
    """An immutable, laid-out SX86 program.

    Attributes
    ----------
    base:
        Address of the first instruction.
    instructions:
        Instructions in layout order, each with ``addr``/``length`` set.
    labels:
        Mapping from label name to address (code and data labels).
    entry:
        Address execution starts at (the ``main`` label when present,
        otherwise ``base``).
    data:
        Mapping from address to initial 32-bit word value.
    """

    def __init__(self, instructions, labels, entry, base=DEFAULT_BASE, data=None,
                 source=None):
        self.base = base
        self.instructions = list(instructions)
        self.labels = dict(labels)
        self.entry = entry
        self.data = dict(data or {})
        self.source = source
        self._by_addr = {instr.addr: instr for instr in self.instructions}
        if self.instructions:
            last = self.instructions[-1]
            self.code_end = last.addr + last.length
        else:
            self.code_end = base

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def instruction_at(self, addr):
        """Return the instruction at ``addr``.

        Raises :class:`~repro.errors.ExecutionError` when ``addr`` does not
        fall on an instruction boundary — the same condition a real DBT
        would treat as a control-flow error.
        """
        try:
            return self._by_addr[addr]
        except KeyError:
            raise ExecutionError("no instruction at %#x" % (addr,)) from None

    def has_instruction(self, addr):
        return addr in self._by_addr

    def label_addr(self, name):
        try:
            return self.labels[name]
        except KeyError:
            raise ExecutionError("unknown label %r" % (name,)) from None

    @property
    def code_size_bytes(self):
        return self.code_end - self.base

    def static_successors(self, instr):
        """Statically known successor addresses of ``instr``.

        Conditional branches yield (target, fallthrough); direct jumps the
        target; calls the target plus the return continuation; returns and
        indirect transfers yield nothing (unknown statically).  Used by the
        static CFG builder and by Algorithm 1 when computing TBB successors.
        """
        if not instr.is_control:
            return (instr.fallthrough,)
        if instr.opcode == "hlt" or instr.is_ret or instr.is_indirect:
            return ()
        if instr.is_conditional:
            return (instr.target, instr.fallthrough)
        if instr.is_call:
            return (instr.target, instr.fallthrough)
        return (instr.target,)

    def disassemble(self):
        """Render the whole program as address-annotated assembly text."""
        addr_to_labels = {}
        for name, addr in sorted(self.labels.items()):
            addr_to_labels.setdefault(addr, []).append(name)
        lines = []
        for instr in self.instructions:
            for name in addr_to_labels.get(instr.addr, ()):
                lines.append("%s:" % name)
            lines.append("    %#010x  %s" % (instr.addr, instr.to_assembly()))
        return "\n".join(lines)

    def __repr__(self):
        return "<Program %d instructions, %d bytes at %#x>" % (
            len(self.instructions),
            self.code_size_bytes,
            self.base,
        )
