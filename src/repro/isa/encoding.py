"""Byte-length model for SX86 instructions.

Table 1 of the paper accounts memory in bytes of trace code, so programs
need realistic code sizes.  SX86 does not define a bit-level encoding;
instead each instruction is assigned a deterministic byte length chosen to
match typical IA-32 encodings (ModRM + disp + imm sizes).  The resulting
average instruction length over the generated workloads is ~3.5 bytes,
in line with measured IA-32 instruction mixes.

The rules here are the single source of truth for instruction lengths:
both the assembler layout and the DBT code-cache accounting use them.
"""

from repro.isa.operands import Imm, LabelRef, Mem, Reg


def _mem_bytes(mem):
    """ModRM/SIB/displacement bytes for a memory operand."""
    size = 1  # ModRM
    if mem.index is not None:
        size += 1  # SIB
    if mem.disp:
        size += 1 if -128 <= mem.disp <= 127 else 4
    elif mem.base is None:
        size += 4  # absolute disp32
    return size


def _imm_bytes(imm):
    return 1 if -128 <= imm.value <= 127 else 4


def instruction_length(opcode, operands):
    """Return the encoded byte length of ``opcode`` with ``operands``.

    ``LabelRef`` operands are treated as 32-bit quantities (they resolve
    to addresses), so lengths are stable across both assembler passes.
    """
    kind_lengths = {
        "nop": 1,
        "hlt": 1,
        "cpuid": 2,
        "ret": 1,
        "rep_movsd": 2,
        "rep_stosd": 2,
    }
    if opcode in kind_lengths:
        return kind_lengths[opcode]

    if opcode == "jmp" or opcode == "call":
        operand = operands[0]
        if isinstance(operand, Reg):
            return 2  # FF /4 or /2 with register ModRM
        if isinstance(operand, Mem):
            return 1 + _mem_bytes(operand)
        return 5  # E9/E8 rel32
    if opcode.startswith("j"):
        return 6  # 0F 8x rel32 (near form; we do not model rel8 relaxation)

    if opcode == "push":
        operand = operands[0]
        if isinstance(operand, Reg):
            return 1
        if isinstance(operand, Mem):
            return 1 + _mem_bytes(operand)
        return _imm_bytes(operand) + 1
    if opcode == "pop":
        return 1

    if opcode in ("inc", "dec", "neg", "not"):
        operand = operands[0]
        if isinstance(operand, Reg):
            return 1 if opcode in ("inc", "dec") else 2
        return 1 + _mem_bytes(operand)

    # Two-operand forms: opcode byte(s) + ModRM-ish + imm/disp.
    dst, src = operands
    size = 2 if opcode == "imul" else 1  # imul uses the 0F AF form
    if isinstance(dst, Mem):
        size += _mem_bytes(dst)
    elif isinstance(src, Mem):
        size += _mem_bytes(src)
    else:
        size += 1  # register-register ModRM
    if isinstance(src, (Imm, LabelRef)):
        if isinstance(src, LabelRef):
            size += 4
        elif opcode in ("shl", "shr", "sar"):
            size += 1  # shift count is imm8
        else:
            size += _imm_bytes(src)
    return size
