"""SX86: a small x86-flavoured 32-bit ISA.

This package is the ground-truth substrate replacing the IA-32 binaries the
paper executed.  It provides:

- :mod:`repro.isa.registers` — the eight general-purpose registers.
- :mod:`repro.isa.operands` — register / immediate / memory operand model.
- :mod:`repro.isa.instructions` — the instruction set and its metadata
  (which opcodes are branches, calls, REP-prefixed, block splitters...).
- :mod:`repro.isa.encoding` — a documented byte-length model so programs
  have realistic x86-like code addresses and code-size accounting.
- :mod:`repro.isa.program` — an assembled program image.
- :mod:`repro.isa.assembler` — a two-pass textual assembler.

TEA itself only ever sees program counters and branch edges, so any ISA with
conditional/indirect control flow, calls and REP string ops exercises the
same code paths as IA-32 (see DESIGN.md, substitution table).
"""

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, OPCODES, OpcodeSpec
from repro.isa.operands import Imm, LabelRef, Mem, Reg
from repro.isa.program import Program
from repro.isa.registers import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    NUM_REGISTERS,
    REGISTER_NAMES,
    register_index,
)

__all__ = [
    "assemble",
    "Instruction",
    "OPCODES",
    "OpcodeSpec",
    "Imm",
    "LabelRef",
    "Mem",
    "Reg",
    "Program",
    "EAX",
    "EBX",
    "ECX",
    "EDX",
    "ESI",
    "EDI",
    "EBP",
    "ESP",
    "NUM_REGISTERS",
    "REGISTER_NAMES",
    "register_index",
]
