"""Two-pass assembler for SX86 text.

Syntax (a pragmatic subset of Intel syntax)::

    ; comment            # comment
    .base 0x08048000     ; optional, before any code
    .entry main          ; optional, defaults to the 'main' label
    main:
        mov ecx, 100
        mov eax, [esi+8]
        mov [edi+ebx*4+4], eax
        cmp eax, 0
        jnz main
        jmp [table+eax*4]
        hlt
    .data
    table:  .word case_a, case_b
    buffer: .zero 16     ; sixteen zero words
    answer: .word 42

Pass one parses instructions, lays out code from the base address and
records label addresses (data follows code, 16-byte aligned).  Pass two
resolves every :class:`~repro.isa.operands.LabelRef` into an address —
branch targets land in ``Instruction.target``, data references become
immediates or memory displacements.
"""

import re

from repro.errors import AssemblerError
from repro.isa.encoding import instruction_length
from repro.isa.instructions import Instruction, OPCODES
from repro.isa.operands import Imm, LabelRef, Mem, Reg
from repro.isa.program import DEFAULT_BASE, Program
from repro.isa.registers import is_register_name, register_index

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

#: Sentinel displacement used for not-yet-resolved label displacements so
#: pass-one layout reserves a full disp32.
_PENDING_DISP = 0x7FFFFFFF


def _parse_number(text):
    return int(text, 0)


def _strip_comment(line):
    for marker in (";", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


class _MemFixup:
    """Deferred resolution of a label appearing in a memory displacement."""

    def __init__(self, mem, label, extra_disp, line):
        self.mem = mem
        self.label = label
        self.extra_disp = extra_disp
        self.line = line

    def resolve(self, labels):
        if self.label not in labels:
            raise AssemblerError("undefined label %r" % self.label, self.line)
        self.mem.disp = labels[self.label] + self.extra_disp


class Assembler:
    """Stateful assembler; most callers use :func:`assemble` instead."""

    def __init__(self):
        self.base = None
        self.entry_label = None
        self.instructions = []
        self.labels = {}
        self.pending_labels = []
        self.mem_fixups = []
        self.data_items = []  # (kind, payload, line) in layout order
        self.in_data = False

    # ------------------------------------------------------------------
    # pass one: parsing
    # ------------------------------------------------------------------

    def feed(self, source):
        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            self._feed_line(line, line_number)

    def _feed_line(self, line, line_number):
        match = _LABEL_RE.match(line)
        if match and not self._looks_like_mem_tail(line):
            name, rest = match.group(1), match.group(2).strip()
            self._define_label(name, line_number)
            if rest:
                self._feed_line(rest, line_number)
            return
        if line.startswith("."):
            self._directive(line, line_number)
            return
        if self.in_data:
            raise AssemblerError(
                "instruction %r inside .data section" % line, line_number
            )
        self._instruction(line, line_number)

    @staticmethod
    def _looks_like_mem_tail(line):
        # "mov eax, [esi+4]" must not be mistaken for a label because of
        # the ':' ... there is no ':' in operands, so any line whose head
        # matches the label regex is genuinely a label.  Kept as a hook
        # should operand syntax ever grow a ':'.
        return False

    def _define_label(self, name, line_number):
        if name in self.labels or name in (pending for pending, _ in self.pending_labels):
            raise AssemblerError("duplicate label %r" % name, line_number)
        if self.in_data:
            self.data_items.append(("label", name, line_number))
        else:
            self.pending_labels.append((name, line_number))

    def _directive(self, line, line_number):
        parts = line.split(None, 1)
        name = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name == ".base":
            if self.instructions:
                raise AssemblerError(".base must precede code", line_number)
            self.base = _parse_number(argument)
        elif name == ".entry":
            self.entry_label = argument
        elif name == ".data":
            self.in_data = True
        elif name == ".word":
            if not self.in_data:
                raise AssemblerError(".word outside .data section", line_number)
            values = [value.strip() for value in argument.split(",") if value.strip()]
            if not values:
                raise AssemblerError(".word needs at least one value", line_number)
            self.data_items.append(("word", values, line_number))
        elif name == ".zero":
            if not self.in_data:
                raise AssemblerError(".zero outside .data section", line_number)
            count = _parse_number(argument)
            if count <= 0:
                raise AssemblerError(".zero needs a positive count", line_number)
            self.data_items.append(("zero", count, line_number))
        else:
            raise AssemblerError("unknown directive %r" % name, line_number)

    def _instruction(self, line, line_number):
        mnemonic, _, operand_text = line.partition(" ")
        mnemonic = mnemonic.lower()
        if mnemonic == "rep":
            rest = operand_text.strip().lower()
            mnemonic = "rep_" + rest
            operand_text = ""
        if mnemonic not in OPCODES:
            raise AssemblerError("unknown opcode %r" % mnemonic, line_number)
        operands = self._parse_operands(operand_text, line_number)
        try:
            instruction = Instruction(mnemonic, operands)
        except AssemblerError as error:
            raise AssemblerError(str(error), line_number) from None
        for name, declared_line in self.pending_labels:
            self.labels[name] = len(self.instructions)  # index; addr later
        self.pending_labels = []
        self.instructions.append((instruction, line_number))

    def _parse_operands(self, text, line_number):
        text = text.strip()
        if not text:
            return ()
        operands = []
        for piece in self._split_operands(text, line_number):
            operands.append(self._parse_operand(piece, line_number))
        return tuple(operands)

    @staticmethod
    def _split_operands(text, line_number):
        pieces = []
        depth = 0
        current = []
        for char in text:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth < 0:
                    raise AssemblerError("unbalanced ']'", line_number)
            if char == "," and depth == 0:
                pieces.append("".join(current).strip())
                current = []
            else:
                current.append(char)
        if depth != 0:
            raise AssemblerError("unbalanced '['", line_number)
        pieces.append("".join(current).strip())
        return [piece for piece in pieces if piece]

    def _parse_operand(self, text, line_number):
        if text.startswith("["):
            if not text.endswith("]"):
                raise AssemblerError("malformed memory operand %r" % text, line_number)
            return self._parse_mem(text[1:-1].strip(), line_number)
        if is_register_name(text):
            return Reg(register_index(text))
        if _NUMBER_RE.match(text):
            return Imm(_parse_number(text))
        if _IDENT_RE.match(text):
            return LabelRef(text)
        raise AssemblerError("cannot parse operand %r" % text, line_number)

    def _parse_mem(self, inner, line_number):
        base = None
        index = None
        scale = 1
        disp = 0
        label = None
        for sign, term in self._terms(inner, line_number):
            if "*" in term:
                reg_text, _, scale_text = term.partition("*")
                reg_text = reg_text.strip()
                scale_text = scale_text.strip()
                if not is_register_name(reg_text):
                    raise AssemblerError(
                        "scaled index must be a register: %r" % term, line_number
                    )
                if sign < 0:
                    raise AssemblerError("cannot subtract an index register", line_number)
                if index is not None:
                    raise AssemblerError("two index registers in %r" % inner, line_number)
                index = register_index(reg_text)
                scale = _parse_number(scale_text)
                if scale not in (1, 2, 4, 8):
                    raise AssemblerError("scale must be 1/2/4/8", line_number)
            elif is_register_name(term):
                if sign < 0:
                    raise AssemblerError("cannot subtract a register", line_number)
                if base is None:
                    base = register_index(term)
                elif index is None:
                    index = register_index(term)
                else:
                    raise AssemblerError("too many registers in %r" % inner, line_number)
            elif _NUMBER_RE.match(term):
                disp += sign * _parse_number(term)
            elif _IDENT_RE.match(term):
                if label is not None:
                    raise AssemblerError("two labels in %r" % inner, line_number)
                if sign < 0:
                    raise AssemblerError("cannot subtract a label", line_number)
                label = term
            else:
                raise AssemblerError("cannot parse %r in memory operand" % term, line_number)
        mem = Mem(base=base, index=index, scale=scale, disp=disp)
        if label is not None:
            mem.disp = _PENDING_DISP
            self.mem_fixups.append(_MemFixup(mem, label, disp, line_number))
        return mem

    @staticmethod
    def _terms(inner, line_number):
        if not inner:
            raise AssemblerError("empty memory operand", line_number)
        terms = []
        sign = 1
        current = []
        for char in inner:
            if char in "+-":
                if current:
                    terms.append((sign, "".join(current).strip()))
                    current = []
                    sign = 1 if char == "+" else -1
                elif char == "-":
                    sign = -sign
            else:
                current.append(char)
        if current:
            terms.append((sign, "".join(current).strip()))
        if not terms:
            raise AssemblerError("empty memory operand", line_number)
        return terms

    # ------------------------------------------------------------------
    # pass two: layout and resolution
    # ------------------------------------------------------------------

    def finish(self, source=None):
        if self.pending_labels and not self.in_data:
            # Trailing code labels (e.g. an 'end:' after the last hlt) pin
            # to the end-of-code address.
            pass
        base = self.base if self.base is not None else DEFAULT_BASE

        addr = base
        label_addrs = {}
        instruction_index_to_addr = {}
        for position, (instruction, line_number) in enumerate(self.instructions):
            length = instruction_length(instruction.opcode, instruction.operands)
            instruction.addr = addr
            instruction.length = length
            instruction_index_to_addr[position] = addr
            addr += length
        code_end = addr
        for name, position in self.labels.items():
            label_addrs[name] = instruction_index_to_addr.get(position, code_end)
        for name, _line in self.pending_labels:
            label_addrs[name] = code_end
        self.pending_labels = []

        data_addr = (code_end + 15) & ~15
        data = {}
        deferred_words = []  # (addr, label, line)
        for kind, payload, line_number in self.data_items:
            if kind == "label":
                if payload in label_addrs:
                    raise AssemblerError("duplicate label %r" % payload, line_number)
                label_addrs[payload] = data_addr
            elif kind == "word":
                for value_text in payload:
                    if _NUMBER_RE.match(value_text):
                        data[data_addr] = _parse_number(value_text) & 0xFFFFFFFF
                    elif _IDENT_RE.match(value_text):
                        deferred_words.append((data_addr, value_text, line_number))
                    else:
                        raise AssemblerError(
                            "bad .word value %r" % value_text, line_number
                        )
                    data_addr += 4
            elif kind == "zero":
                for _ in range(payload):
                    data[data_addr] = 0
                    data_addr += 4

        for word_addr, label, line_number in deferred_words:
            if label not in label_addrs:
                raise AssemblerError("undefined label %r" % label, line_number)
            data[word_addr] = label_addrs[label] & 0xFFFFFFFF

        for fixup in self.mem_fixups:
            fixup.resolve(label_addrs)

        instructions = []
        for instruction, line_number in self.instructions:
            instructions.append(
                self._resolve_instruction(instruction, label_addrs, line_number)
            )

        if self.entry_label is not None:
            if self.entry_label not in label_addrs:
                raise AssemblerError("entry label %r undefined" % self.entry_label)
            entry = label_addrs[self.entry_label]
        elif "main" in label_addrs:
            entry = label_addrs["main"]
        else:
            entry = base
        return Program(
            instructions,
            label_addrs,
            entry,
            base=base,
            data=data,
            source=source,
        )

    @staticmethod
    def _resolve_instruction(instruction, label_addrs, line_number):
        operands = []
        for operand in instruction.operands:
            if isinstance(operand, LabelRef):
                if operand.name not in label_addrs:
                    raise AssemblerError(
                        "undefined label %r" % operand.name, line_number
                    )
                operands.append(Imm(label_addrs[operand.name]))
            else:
                operands.append(operand)
        instruction.operands = tuple(operands)
        if instruction.is_control and not instruction.is_indirect:
            if instruction.opcode != "ret" and instruction.opcode != "hlt":
                target = instruction.operands[0]
                instruction.target = target.value & 0xFFFFFFFF
        return instruction


def assemble(source, base=None, entry=None):
    """Assemble SX86 ``source`` text into a :class:`~repro.isa.program.Program`.

    ``base`` overrides any ``.base`` directive; ``entry`` overrides any
    ``.entry`` directive.  Raises :class:`~repro.errors.AssemblerError`
    with a line number on the first problem found.
    """
    assembler = Assembler()
    assembler.feed(source)
    if base is not None:
        assembler.base = base
    if entry is not None:
        assembler.entry_label = entry
    return assembler.finish(source=source)
