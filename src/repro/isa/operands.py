"""Operand model for SX86 instructions.

Four operand kinds exist:

- :class:`Reg` — a general-purpose register.
- :class:`Imm` — a 32-bit immediate (stored as a signed Python int; the
  interpreter wraps values to 32 bits).
- :class:`Mem` — a memory reference ``[base + index*scale + disp]`` where
  every component is optional, mirroring IA-32 addressing modes.
- :class:`LabelRef` — a symbolic reference produced by the assembler's
  first pass; pass two resolves every ``LabelRef`` into an :class:`Imm`,
  so no ``LabelRef`` survives in an assembled :class:`~repro.isa.program.Program`.

Operands are immutable value objects: they compare by content and are
hashable, which lets instruction and block interning use them as keys.
"""

from repro.isa.registers import REGISTER_NAMES


class Reg:
    """A register operand, identified by its index into the register file."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    @property
    def name(self):
        return REGISTER_NAMES[self.index]

    def __repr__(self):
        return "Reg(%s)" % self.name

    def __str__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self):
        return hash((Reg, self.index))


class Imm:
    """An immediate operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Imm(%#x)" % (self.value & 0xFFFFFFFF,)

    def __str__(self):
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self):
        return hash((Imm, self.value))


class Mem:
    """A memory operand: effective address = base + index*scale + disp.

    ``base`` and ``index`` are register indices or ``None``; ``scale`` is
    1, 2, 4 or 8; ``disp`` is a signed displacement.
    """

    __slots__ = ("base", "index", "scale", "disp")

    def __init__(self, base=None, index=None, scale=1, disp=0):
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp

    def __repr__(self):
        return "Mem(%s)" % str(self)

    def __str__(self):
        parts = []
        if self.base is not None:
            parts.append(REGISTER_NAMES[self.base])
        if self.index is not None:
            parts.append("%s*%d" % (REGISTER_NAMES[self.index], self.scale))
        if self.disp or not parts:
            parts.append("%#x" % (self.disp & 0xFFFFFFFF,) if self.disp >= 0
                         else "-%#x" % (-self.disp,))
        return "[%s]" % "+".join(parts)

    def __eq__(self, other):
        return (
            isinstance(other, Mem)
            and other.base == self.base
            and other.index == self.index
            and other.scale == self.scale
            and other.disp == self.disp
        )

    def __hash__(self):
        return hash((Mem, self.base, self.index, self.scale, self.disp))


class LabelRef:
    """A symbolic label reference; only valid before pass two resolution."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "LabelRef(%r)" % self.name

    def __str__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, LabelRef) and other.name == self.name

    def __hash__(self):
        return hash((LabelRef, self.name))
