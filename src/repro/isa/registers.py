"""General-purpose registers of the SX86 ISA.

SX86 mirrors the eight IA-32 GPRs.  Registers are identified by small
integer indices so the interpreter can keep machine state in a flat list.
"""

from repro.errors import AssemblerError

REGISTER_NAMES = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")

EAX, EBX, ECX, EDX, ESI, EDI, EBP, ESP = range(8)

NUM_REGISTERS = len(REGISTER_NAMES)

_NAME_TO_INDEX = {name: index for index, name in enumerate(REGISTER_NAMES)}


def register_index(name):
    """Return the register index for ``name`` (case-insensitive).

    Raises :class:`~repro.errors.AssemblerError` for unknown names so the
    assembler can surface a clean diagnostic.
    """
    try:
        return _NAME_TO_INDEX[name.lower()]
    except KeyError:
        raise AssemblerError("unknown register %r" % (name,)) from None


def is_register_name(name):
    """Return True when ``name`` names one of the eight GPRs."""
    return name.lower() in _NAME_TO_INDEX
