"""Exception hierarchy for the TEA reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblerError(ReproError):
    """A source-level problem found while assembling SX86 text.

    Carries the offending line number (1-based) when known.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class ExecutionError(ReproError):
    """The interpreter reached an invalid machine state.

    Examples: fetching an address with no instruction, dividing by zero,
    an indirect branch to a non-code address.
    """


class InstructionLimitExceeded(ExecutionError):
    """The executor hit its instruction budget before the program halted."""


class TraceError(ReproError):
    """Invalid trace structure (empty trace, dangling edge, bad TBB index)."""


class TeaError(ReproError):
    """Invalid TEA operation (duplicate state, nondeterministic transition)."""


class SerializationError(ReproError):
    """A trace/TEA file could not be parsed or failed validation."""


class VerificationError(SerializationError, ValueError):
    """Static verification found blocking diagnostics.

    Raised by the :mod:`repro.verify` rule engine's gating entry points
    (store loads, service preloads, harness pre-flight, ``CompiledTea``
    construction).  Doubles as a :class:`ValueError` so constructor-time
    structural checks keep their historical contract.  ``diagnostics``
    carries the full :class:`repro.verify.Diagnostic` list.
    """

    def __init__(self, message, diagnostics=None):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message)

    @property
    def rule_ids(self):
        """The distinct rule ids that fired, in first-seen order."""
        seen = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule_id not in seen:
                seen.append(diagnostic.rule_id)
        return seen


class PackedStreamError(ReproError, ValueError):
    """A transition cannot be encoded into a packed int stream.

    Raised at pack time when a transition carries a genuinely negative
    ``next_start``: packed streams reserve negative values for the
    ``END_OF_RUN`` terminal sentinel, so silently passing one through
    would alias a corrupt PC onto "the program ended".  Carries the
    offending value and its transition index within the stream/batch.
    """

    def __init__(self, message, index=None, value=None):
        self.index = index
        self.value = value
        super().__init__(message)


class WorkloadError(ReproError):
    """Unknown benchmark name or unsatisfiable workload parameters."""
