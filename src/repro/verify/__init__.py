"""Static verification of TEA artifacts (the ``repro verify`` rules).

A rule engine (:mod:`repro.verify.engine`) runs a catalog of
``TEAxxx`` rules over any combination of facets — a built automaton, a
trace set plus program image, a compiled lowering, raw TEAB snapshot
bytes — and produces :class:`Report` objects that render as text, JSON
or SARIF 2.1.0 (:mod:`repro.verify.diagnostics`).  See
``docs/static_verification.md`` for the full rule catalog.

Import discipline: this package is imported *by* the trace model, the
compiled automaton and the store, so only :mod:`~repro.verify.engine`
and :mod:`~repro.verify.diagnostics` load eagerly (they depend on
nothing but :mod:`repro.errors`); the rule modules and the high-level
API import the rest of ``repro`` lazily inside functions.
"""

from repro.errors import VerificationError
from repro.verify.api import (
    default_engine,
    program_for_meta,
    verify_compiled,
    verify_diff_report,
    verify_jit_source,
    verify_minimization,
    verify_path,
    verify_python_source,
    verify_snapshot_bytes,
    verify_tea,
    verify_trace_set,
)
from repro.verify.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    Report,
    report_from_json,
    reports_to_sarif,
)
from repro.verify.engine import (
    Rule,
    RuleEngine,
    Subject,
    all_rules,
    catalog_version,
    rule_by_id,
)

__all__ = [
    "Diagnostic", "Report", "Rule", "RuleEngine", "Subject",
    "VerificationError", "ERROR", "WARNING", "INFO", "SEVERITIES",
    "all_rules", "catalog_version", "default_engine", "program_for_meta",
    "report_from_json", "reports_to_sarif", "rule_by_id",
    "verify_compiled", "verify_diff_report", "verify_jit_source",
    "verify_minimization", "verify_path", "verify_python_source",
    "verify_snapshot_bytes", "verify_tea", "verify_trace_set",
]
