"""Uniform read-only views over the two automaton representations.

The object-graph :class:`~repro.core.automaton.TEA` and the flat-table
:class:`~repro.core.compiled.CompiledTea` encode the same DFA, so the
automaton rule family (determinism, dangling targets, reachability,
NTE consistency, head registry shape) should check both with the same
code.  :class:`AutomatonView` is the adapter: integer state ids, a
transition list per state as ``(label, dest_sid)`` pairs in storage
order, the head registry as ``(entry, sid)`` pairs, and in-trace
flags.  Nothing here mutates the underlying automaton.
"""

from __future__ import annotations

from repro.core.automaton import NTE_SID


class AutomatonView:
    """One automaton representation flattened for rule checking."""

    __slots__ = ("kind", "n_states", "in_trace", "names", "edges",
                 "heads", "trace_keys")

    def __init__(self, kind, n_states, in_trace, names, edges, heads,
                 trace_keys=None):
        #: ``"tea"`` (object graph) or ``"compiled"`` (flat tables).
        self.kind = kind
        self.n_states = n_states
        #: ``in_trace[sid]`` — truthy when the state carries a TBB.
        self.in_trace = in_trace
        #: ``names[sid]`` — display name (``NTE``, ``$$T1.main`` ...).
        self.names = names
        #: ``edges[sid]`` — list of ``(label, dest_sid)`` in storage
        #: order (dict insertion order / CSR slice order).
        self.edges = edges
        #: Head registry as ``(entry_pc, head_sid)`` in storage order.
        self.heads = heads
        #: ``trace_keys[sid]`` — ``(trace_id, index)`` for TBB states,
        #: ``None`` otherwise (only the object view carries these).
        self.trace_keys = trace_keys

    @classmethod
    def from_tea(cls, tea):
        n_states = tea.n_states
        names = [state.name for state in tea.states]
        in_trace = [state.tbb is not None for state in tea.states]
        edges = [
            [(label, dest.sid) for label, dest in state.transitions.items()]
            for state in tea.states
        ]
        heads = [(entry, head.sid) for entry, head in tea.heads.items()]
        trace_keys = [
            None if state.tbb is None
            else (state.tbb.trace_id, state.tbb.index)
            for state in tea.states
        ]
        return cls("tea", n_states, in_trace, names, edges, heads,
                   trace_keys=trace_keys)

    @classmethod
    def from_compiled(cls, compiled):
        n_states = compiled.n_states
        offsets = compiled.trans_offset
        labels = compiled.trans_labels
        dests = compiled.trans_dest
        edges = []
        for sid in range(n_states):
            low = offsets[sid] if sid < len(offsets) else 0
            high = offsets[sid + 1] if sid + 1 < len(offsets) else low
            low = max(0, min(low, len(labels)))
            high = max(low, min(high, len(labels)))
            edges.append(list(zip(labels[low:high], dests[low:high])))
        names = [
            "NTE" if sid == NTE_SID else "s%d" % sid
            for sid in range(n_states)
        ]
        heads = list(zip(compiled.head_entries, compiled.head_sids))
        return cls("compiled", n_states, list(compiled.tbb_flag), names,
                   edges, heads)

    # ------------------------------------------------------------------

    def state_label(self, sid):
        """Stable display handle for diagnostics: ``name(sid)``."""
        if 0 <= sid < len(self.names):
            return "%s(sid=%d)" % (self.names[sid], sid)
        return "sid=%d" % sid

    def reachable(self):
        """State ids reachable from NTE via transitions and heads."""
        seen = {NTE_SID}
        frontier = [NTE_SID]
        head_sids = [
            sid for _, sid in self.heads if 0 <= sid < self.n_states
        ]
        seen.update(head_sids)
        frontier.extend(head_sids)
        while frontier:
            sid = frontier.pop()
            for _, dest in self.edges[sid]:
                if 0 <= dest < self.n_states and dest not in seen:
                    seen.add(dest)
                    frontier.append(dest)
        return seen

    def __repr__(self):
        return "<AutomatonView %s states=%d heads=%d>" % (
            self.kind, self.n_states, len(self.heads),
        )
