"""Dataflow certification rules (TEA060-TEA062).

These rules upgrade the shape checks of the automaton family to real
abstract interpretation, built on :mod:`repro.audit.fixpoint`:

- TEA060 runs the forward reachability fixpoint and flags *dead
  transitions* — edges whose source state no replay can ever enter —
  plus head-dead states (unreachable from every head);
- TEA061 derives per-state min/max replay cost intervals statically
  from the cost parameters and cross-checks them against the recorded
  profile section: profiled states must be reachable, profiled
  non-head trace states must have a live in-edge, and the profile's
  certified total-cost interval is attached as machine-readable data;
- TEA062 certifies the head/directory contract: building each
  directory kind over the head registry must resolve every entry back
  to its registered head within the static probe-unit bounds.

All analysis code lives in ``repro.audit`` (imported at function
level); this module only turns analysis results into diagnostics.
"""

from repro.verify.diagnostics import WARNING
from repro.verify.engine import Rule, register


class DataflowReachability(Rule):
    rule_id = "TEA060"
    name = "dataflow-dead-transitions"
    family = "dataflow"
    severity = WARNING
    description = (
        "The reachability fixpoint found dead transitions (their "
        "source state is unreachable from NTE and every head) or "
        "head-dead states no in-trace walk can visit."
    )
    paper = "Section 3 (the automaton mirrors live trace structure)"
    requires = ("views",)

    def check(self, subject):
        from repro.audit.fixpoint import (
            dead_states,
            dead_transitions,
            head_live_states,
        )

        for view in subject.views:
            dead = set(dead_states(view))
            transitions = dead_transitions(view)
            for sid, label, dest in transitions:
                yield self.diag(
                    "%s view: transition %s --%#x--> %s can never "
                    "fire (source state is unreachable)"
                    % (view.kind, view.state_label(sid), label,
                       view.state_label(dest)),
                    location=view.state_label(sid),
                    view=view.kind, label=label,
                )
            live = head_live_states(view)
            for sid in range(view.n_states):
                if sid in dead or sid in live:
                    continue
                if not view.in_trace[sid]:
                    continue
                yield self.diag(
                    "%s view: trace state %s is reachable but "
                    "head-dead — no head's in-trace walk can enter it"
                    % (view.kind, view.state_label(sid)),
                    location=view.state_label(sid),
                    view=view.kind,
                )


class DataflowCostProfile(Rule):
    rule_id = "TEA061"
    name = "dataflow-cost-profile"
    family = "dataflow"
    description = (
        "Static cost-interval analysis contradicts the recorded "
        "profile: a profiled state is unreachable, a profiled trace "
        "state has no live in-edge, or the per-state intervals are "
        "incoherent."
    )
    paper = "Section 5 (cost model), Section 2 (accurate profiles)"
    requires = ("views",)

    def check(self, subject):
        from repro.audit.fixpoint import (
            incoming_counts,
            profile_cost_bounds,
            reachable_states,
            state_cost_intervals,
        )
        from repro.core.automaton import NTE_SID
        from repro.dbt.cost import CostParameters

        params = CostParameters()
        view = subject.views[0]
        intervals = state_cost_intervals(view, params)
        for sid, interval in intervals.items():
            if not (0 < interval.lo <= interval.hi):
                yield self.diag(
                    "state %s has an incoherent static cost interval "
                    "[%r, %r]" % (view.state_label(sid), interval.lo,
                                  interval.hi),
                    location=view.state_label(sid),
                )

        profile = getattr(subject, "profile", None)
        if profile is None:
            return
        reach = reachable_states(view)
        incoming = incoming_counts(view)
        head_sids = {sid for _, sid in view.heads}
        counts = getattr(profile, "state_counts", None) or {}
        for sid, count in sorted(counts.items()):
            if not isinstance(sid, int) or not (0 <= sid < view.n_states):
                yield self.diag(
                    "profile counts %d block(s) for unknown state id %r"
                    % (count, sid),
                )
                continue
            if count <= 0:
                continue
            if sid not in reach:
                yield self.diag(
                    "profile counts %d block(s) in %s, but the "
                    "reachability fixpoint proves no replay can enter "
                    "it" % (count, view.state_label(sid)),
                    location=view.state_label(sid),
                )
            elif (view.in_trace[sid] and sid != NTE_SID
                    and sid not in head_sids and incoming[sid] == 0):
                yield self.diag(
                    "profile counts %d block(s) in non-head trace "
                    "state %s, which has no live incoming transition "
                    "and is not directory-dispatched"
                    % (count, view.state_label(sid)),
                    location=view.state_label(sid),
                )
        edges = getattr(profile, "edge_counts", None) or {}
        for (src, dst), count in sorted(edges.items()):
            for sid in (src, dst):
                if not (isinstance(sid, int)
                        and 0 <= sid < view.n_states):
                    yield self.diag(
                        "profile edge (%r, %r) x%d names an unknown "
                        "state id" % (src, dst, count),
                    )
                    break
        total = profile_cost_bounds(view, params, counts)
        yield self.diag(
            "profile certified: %d profiled state(s); any replay of "
            "this profile costs between %.0f and %.0f cycles under "
            "the default cost parameters"
            % (len(counts), total.lo, total.hi),
            severity="info",
            bounds=total.as_dict(),
        )


class DirectoryInvariants(Rule):
    rule_id = "TEA062"
    name = "dataflow-directory-invariants"
    family = "dataflow"
    description = (
        "The head registry breaks the directory contract: an entry "
        "fails to resolve to its registered head (e.g. duplicate "
        "entry PCs) or a lookup exceeds the static probe-unit bound "
        "for some directory kind."
    )
    paper = "Section 4 (trace directory), Table 3 (probe costs)"
    requires = ("views",)

    def check(self, subject):
        from repro.audit.fixpoint import (
            DIRECTORY_KINDS,
            directory_probe_bounds,
        )
        from repro.core.directory import make_directory

        for view in subject.views:
            heads = [
                (entry, sid) for entry, sid in view.heads
                if 0 <= sid < view.n_states
            ]
            if not heads:
                continue
            n_heads = len({entry for entry, _ in heads})
            for kind in DIRECTORY_KINDS:
                low, high = directory_probe_bounds(kind, n_heads)
                directory = make_directory(kind)
                for entry, sid in heads:
                    directory.insert(entry, sid)
                bad_kind = False
                for entry, sid in heads:
                    found, units = directory.lookup(entry)
                    if found != sid:
                        yield self.diag(
                            "%s view: %s directory resolves head entry "
                            "%#x to %r, not its registered state %s "
                            "(duplicate entry PC?)"
                            % (view.kind, kind, entry, found,
                               view.state_label(sid)),
                            location="%#x" % entry,
                            kind=kind,
                        )
                        bad_kind = True
                        break
                    if not (low <= units <= high):
                        yield self.diag(
                            "%s view: %s directory lookup of %#x took "
                            "%d unit(s), outside the static bound "
                            "[%d, %d] for %d head(s)"
                            % (view.kind, kind, entry, units, low,
                               high, n_heads),
                            location="%#x" % entry,
                            kind=kind,
                        )
                        bad_kind = True
                        break
                if bad_kind:
                    continue


register(DataflowReachability())
register(DataflowCostProfile())
register(DirectoryInvariants())
