"""Concurrency lint rules for the service stack (TEA080-TEA082).

Thin adapters over :class:`repro.audit.concurrency.ConcurrencyAnalysis`
— the analysis computes the findings, these rules attribute them to
stable ids so the audit CLI, SARIF output and baselines treat
concurrency defects like any other verification finding:

- TEA080 — a blocking call (file I/O, ``time.sleep``, store access)
  is reachable from an asyncio coroutine without ``run_in_executor``;
- TEA081 — lock discipline: awaiting under a ``threading.Lock``,
  acquiring an ``asyncio.Lock`` with a plain ``with``, or nesting
  locks against the documented order;
- TEA082 — a module-level ``*_CACHE`` dict is mutated outside a lock.

The rules run over the ``python_source`` subject facet (populated by
:func:`repro.verify.api.verify_python_source` and the audit
scheduler's source-tree walk).  A module that does not parse is
reported once, by TEA080.
"""

from repro.verify.engine import Rule, register

#: ConcurrencyAnalysis check id -> the rule that owns it.
_CHECK_OWNERS = {
    "blocking-call": "TEA080",
    "lock-discipline": "TEA081",
    "unguarded-cache": "TEA082",
}


def _analysis(subject):
    """Build the analysis, or ``(None, error)`` on a parse failure."""
    from repro.audit.concurrency import ConcurrencyAnalysis

    try:
        return ConcurrencyAnalysis(subject.python_source,
                                   filename=subject.source), None
    except SyntaxError as error:
        return None, error


class _ConcurrencyRule(Rule):
    family = "concurrency"
    requires = ("python_source",)

    def check(self, subject):
        analysis, error = _analysis(subject)
        if analysis is None:
            if self.rule_id == "TEA080":
                yield self.diag("module does not parse: %s" % error,
                                line=getattr(error, "lineno", None))
            return
        for finding in analysis.all_findings():
            if _CHECK_OWNERS.get(finding.check) != self.rule_id:
                continue
            yield self.diag(
                finding.message,
                location="L%s" % finding.lineno,
                line=finding.lineno,
            )


class AsyncBlockingCall(_ConcurrencyRule):
    rule_id = "TEA080"
    name = "async-blocking-call"
    description = (
        "A blocking call (file I/O, time.sleep, synchronous socket or "
        "store access) is reachable from an asyncio coroutine without "
        "run_in_executor — it stalls the event loop for every client."
    )
    paper = "ROADMAP (replay service: zero dropped answers under load)"


class LockDiscipline(_ConcurrencyRule):
    rule_id = "TEA081"
    name = "lock-discipline"
    description = (
        "Lock discipline violation: awaiting while holding a "
        "threading.Lock, acquiring an asyncio.Lock without 'async "
        "with', or nesting locks against the documented order "
        "(_PROCESS_LOCK < _jit_lock < _replay_memo_lock)."
    )
    paper = "docs/audit.md (lock discipline)"


class UnguardedSharedCache(_ConcurrencyRule):
    rule_id = "TEA082"
    name = "unguarded-shared-cache"
    description = (
        "A module-level *_CACHE dict is mutated outside a lock — "
        "racy when the module is used from threads (service worker "
        "pools, mapping cache)."
    )
    paper = "docs/store_v2.md (process-shared mapping cache)"


register(AsyncBlockingCall())
register(LockDiscipline())
register(UnguardedSharedCache())
