"""Trace-model rules (TEA040-TEA043).

The structural logic lives on the model itself —
:meth:`repro.traces.model.Trace.validate` and
:meth:`repro.traces.model.TraceSet.validate` return diagnostics with
these rule ids — so recorders, loaders and the verifier all share one
implementation.  These rule classes are the engine adapters: they give
the ids a place in the catalog (severity, description, paper anchor
for SARIF/docs) and route the model's findings into reports.

``TEA041``/``TEA042``/``TEA043`` findings are produced by the same
``validate`` walk that backs ``TEA040``; only the routing rule
(``TraceStructure``) invokes the model, and the other three exist so
the catalog documents every id.  Disabling ``TEA040`` therefore
disables the whole family — the ids are one walk, not four.
"""

from repro.verify.engine import Rule, register


class TraceStructure(Rule):
    rule_id = "TEA040"
    name = "trace-structure"
    family = "traces"
    description = (
        "A trace is structurally broken: empty, or its TBB indices "
        "disagree with their positions."
    )
    paper = "Section 2, Definition 3 (a trace is TBBs plus edges)"
    requires = ("trace_set",)

    def check(self, subject):
        return iter(subject.trace_set.validate())


class _DocumentedById(Rule):
    """Catalog-only rule: findings come from the TEA040 walk."""

    family = "traces"
    requires = ("trace_set",)

    def check(self, subject):
        return iter(())


class TraceDanglingEdge(_DocumentedById):
    rule_id = "TEA041"
    name = "trace-dangling-edge"
    description = (
        "An in-trace edge points at a TBB index outside the trace."
    )
    paper = "Section 2, Definition 3 (edges connect TBBs of the trace)"


class TraceLabelMismatch(_DocumentedById):
    rule_id = "TEA042"
    name = "trace-label-mismatch"
    description = (
        "An edge's PC label is not the start address of the successor "
        "TBB it targets."
    )
    paper = "Section 3 (labels are successor start PCs)"


class TraceDuplicateEntry(_DocumentedById):
    rule_id = "TEA043"
    name = "trace-duplicate-entry"
    description = (
        "Two traces share an entry address, or the entry index "
        "disagrees with the trace list."
    )
    paper = "Algorithm 1 lines 15-17 (one head per entry address)"


register(TraceStructure())
register(TraceDanglingEdge())
register(TraceLabelMismatch())
register(TraceDuplicateEntry())
