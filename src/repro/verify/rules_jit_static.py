"""Static JIT certification rules (TEA070-TEA072).

TEA034's dynamic differential probe proves a cached replay source
faithful by *running* it.  These rules prove the same properties by
analysis, so a clean artifact is certified with zero executions:

- TEA070 proves the baked jump tables: the header digest must name the
  companion automaton, and every literal table (``SHIFT`` .. ``
  DEOPT_SIDS``) must equal a fresh ``specialize_tables`` run over it;
- TEA071 proves the baked cost constants: an AST walk extracts every
  ``charge(category, counter * constant)`` multiplier from the cached
  source and from a faithful regeneration, and the two sets must agree
  exactly (only provable when the header's params token matches the
  live cost parameters);
- TEA072 is the capstone: the generator is deterministic, so the
  cached module's AST — with jump tables and cost constants blanked
  out, since TEA070/TEA071 own those — must equal a regeneration's
  AST node for node.  This proves the control flow wholesale: deopt
  guards, the multi-label fallback, cache stubs, the flush epilogue.

The three rules partition the defect space so one hand-tampered
artifact trips exactly one rule.  When the static proof is
*inapplicable* (the header's params token differs from the live
parameters, or the config token cannot be reconstructed), TEA034's
probe remains the fallback tier — see :mod:`repro.verify.rules_jit`.
Nothing in this module executes the subject.
"""

import ast

from repro.verify.engine import Rule, register
from repro.verify.rules_jit import _audit_source

#: The literal tables TEA070 proves (mirrors the codegen's output).
_TABLE_NAMES = ("SHIFT", "N_STATES", "TBB", "EXP", "NXT", "MULTI",
                "DEOPT_SIDS")


def _clean_header(source):
    """The parsed header when the TEA033 audit is clean, else ``None``.

    A source that failed the static audit proves nothing — TEA033
    already reports the defects, so the certifier family stays silent.
    """
    from repro.core.jit import parse_jit_header

    if any(True for _ in _audit_source(source)):
        return None
    return parse_jit_header(source)


def _reference_tables(compiled, header):
    """Fresh specialization tables, or ``(None, error_message)``."""
    from repro.core.jit import specialize_tables

    try:
        shift, exp, nxt, multi, deopt = specialize_tables(
            compiled, threshold=header["threshold"]
        )
    except ValueError as error:
        return None, str(error)
    return {
        "SHIFT": shift,
        "N_STATES": compiled.n_states,
        "TBB": bytes(compiled.tbb_flag),
        "EXP": exp,
        "NXT": nxt,
        "MULTI": multi,
        "DEOPT_SIDS": deopt,
    }, None


def _mismatched_tables(source, compiled, header):
    """Names of baked tables that disagree with a fresh specialization
    (``None`` when the automaton does not specialize at all)."""
    from repro.core.jit import extract_jit_tables, structural_digest

    if header["digest"] != structural_digest(compiled):
        return None
    reference, error = _reference_tables(compiled, header)
    if reference is None:
        return None
    tables = extract_jit_tables(source)
    return [name for name in _TABLE_NAMES
            if tables.get(name) != reference[name]]


def inapplicability_reason(source, compiled, header):
    """Why the full static proof cannot run, or ``None`` when it can.

    The proof regenerates the module, which needs the header's config
    token to round-trip and its params token to name the *live* cost
    parameters (tokens are one-way hashes — foreign parameters cannot
    be reconstructed).  When this returns a reason, TEA034's dynamic
    probe is the only remaining equivalence evidence.
    """
    from repro.core.jit import config_from_token, params_token
    from repro.dbt.cost import CostModel

    try:
        config_from_token(header["config"])
    except ValueError as error:
        return "unreplayable config token: %s" % error
    if header["params"] != params_token(CostModel().params):
        return ("params token %s does not name the live cost "
                "parameters" % header["params"])
    return None


def regenerated_source(compiled, header):
    """A faithful regeneration of the cached module, or ``None``.

    Only callable when :func:`inapplicability_reason` returned
    ``None``; a non-specializing automaton still returns ``None`` (and
    TEA070 reports why).
    """
    from repro.core.jit import config_from_token, generate_replay_source
    from repro.dbt.cost import CostModel

    config = config_from_token(header["config"])
    try:
        return generate_replay_source(
            compiled, config=config, params=CostModel().params,
            threshold=header["threshold"],
        )
    except ValueError:
        return None


def _charge_constants(source):
    """Extract ``(category, counter, constant)`` triples from every
    ``charge('<category>', <counter> * <constant> + ...)`` call.

    This is the abstract-interpretation core of TEA071: the flush
    epilogue charges each replay counter with a baked multiplier; the
    walk decomposes each charge argument into products over sum chains
    and records the multiplier per (category, counter) pair.  Terms
    that are not ``name * constant`` products are recorded with a
    ``None`` constant so structural surprises still surface as a
    mismatch rather than vanishing.
    """
    triples = []
    module = ast.parse(source)
    for node in ast.walk(module):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "charge"
                and len(node.args) == 2
                and isinstance(node.args[0], ast.Constant)):
            continue
        category = node.args[0].value
        for term in _sum_terms(node.args[1]):
            triples.append((category,) + _product(term))
    return sorted(triples, key=lambda item: (str(item[0]), str(item[1])))


def _sum_terms(node):
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _sum_terms(node.left) + _sum_terms(node.right)
    return [node]


def _product(node):
    """``(counter_name, float_constant)`` for a ``name * const`` term."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        name, const = None, None
        for side in (node.left, node.right):
            if isinstance(side, ast.Name):
                name = side.id
            elif isinstance(side, ast.Constant):
                const = side.value
        if name is not None and const is not None:
            return (name, float(const))
    if isinstance(node, ast.Name):
        return (node.id, 1.0)
    return (ast.dump(node), None)


def _normalized_dump(source):
    """The module AST with TEA070/TEA071 territory blanked out.

    Top-level literal assignment values (the jump tables) become
    ``None`` placeholders and every ``charge()`` cost argument is
    dropped, so TEA072 compares pure structure: function layout,
    guards, loops, returns.  ``ast.dump`` without attributes ignores
    line/column noise.
    """
    module = ast.parse(source)
    for statement in module.body:
        if isinstance(statement, ast.Assign):
            statement.value = ast.Constant(value=None)
    for node in ast.walk(module):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "charge"
                and len(node.args) == 2):
            node.args[1] = ast.Constant(value=None)
    return ast.dump(module)


class JitStaticTableProof(Rule):
    rule_id = "TEA070"
    name = "jit-static-table-proof"
    family = "jit-static"
    description = (
        "The cached source's baked jump tables are not provably "
        "equivalent to the companion automaton: the header digest "
        "names a different automaton, the automaton does not "
        "specialize, or a literal table diverges from a fresh "
        "specialization."
    )
    paper = "Section 4.2 (the lowering preserves the automaton)"
    requires = ("jit_source", "compiled")

    def check(self, subject):
        from repro.core.jit import structural_digest

        source = subject.jit_source
        compiled = subject.compiled
        header = _clean_header(source)
        if header is None:
            return
        expected_digest = structural_digest(compiled)
        if header["digest"] != expected_digest:
            yield self.diag(
                "source was generated for automaton %s... but the "
                "companion snapshot lowers to %s..."
                % (header["digest"][:12], expected_digest[:12]),
                location="digest",
            )
            return
        reference, error = _reference_tables(compiled, header)
        if reference is None:
            yield self.diag(
                "companion automaton does not specialize: %s" % error,
            )
            return
        from repro.core.jit import extract_jit_tables

        tables = extract_jit_tables(source)
        for name in _TABLE_NAMES:
            if tables.get(name) != reference[name]:
                yield self.diag(
                    "baked table %s is not equivalent to a fresh "
                    "specialization of the companion automaton" % name,
                    location=name,
                )


class JitStaticCostProof(Rule):
    rule_id = "TEA071"
    name = "jit-static-cost-proof"
    family = "jit-static"
    description = (
        "The cost constants baked into the cached source's charge() "
        "epilogue disagree with the generator's output for the live "
        "cost parameters (provable only when the header's params "
        "token names them)."
    )
    paper = "Section 5 (cost model constants)"
    requires = ("jit_source", "compiled")

    def check(self, subject):
        source = subject.jit_source
        compiled = subject.compiled
        header = _clean_header(source)
        if header is None:
            return
        if inapplicability_reason(source, compiled, header) is not None:
            return
        if _mismatched_tables(source, compiled, header) != []:
            return  # TEA070 territory (wrong automaton entirely)
        expected = regenerated_source(compiled, header)
        if expected is None:
            return
        baked = _charge_constants(source)
        reference = _charge_constants(expected)
        if baked == reference:
            return
        reference_map = {key[:2]: key[2] for key in reference}
        for category, counter, constant in baked:
            want = reference_map.get((category, counter))
            if constant != want:
                yield self.diag(
                    "charge('%s', %s * %r) does not match the live "
                    "cost parameters (expected multiplier %r)"
                    % (category, counter, constant, want),
                    location="%s/%s" % (category, counter),
                )
        baked_keys = {key[:2] for key in baked}
        for category, counter, constant in reference:
            if (category, counter) not in baked_keys:
                yield self.diag(
                    "flush epilogue is missing the charge('%s', "
                    "%s * %r) the generator emits for this config"
                    % (category, counter, constant),
                    location="%s/%s" % (category, counter),
                )


class JitStaticCertification(Rule):
    rule_id = "TEA072"
    name = "jit-static-certification"
    family = "jit-static"
    description = (
        "The cached source's structure (deopt guards, multi-label "
        "fallback, cache stubs, dispatch loop) diverges from a "
        "faithful regeneration for its header — the module is not the "
        "generator's output for this automaton and config."
    )
    paper = "Section 4.2 (specialized dispatch is derived, not hand-written)"
    requires = ("jit_source", "compiled")

    def check(self, subject):
        source = subject.jit_source
        compiled = subject.compiled
        header = _clean_header(source)
        if header is None:
            return
        if inapplicability_reason(source, compiled, header) is not None:
            return
        mismatched = _mismatched_tables(source, compiled, header)
        if mismatched is None or mismatched:
            return  # TEA070 already refutes the artifact
        expected = regenerated_source(compiled, header)
        if expected is None:
            return
        if _charge_constants(source) != _charge_constants(expected):
            return  # TEA071 territory
        if _normalized_dump(source) != _normalized_dump(expected):
            yield self.diag(
                "module structure diverges from a faithful "
                "regeneration for digest %s..., config %s: deopt "
                "guards / dispatch control flow are not generator "
                "output" % (header["digest"][:12], header["config"]),
                location="structure",
            )


def static_certification_applicable(source, compiled):
    """True when TEA070-TEA072 fully decide this artifact statically —
    the condition under which TEA034 must not probe."""
    header = _clean_header(source)
    if header is None:
        return False
    return inapplicability_reason(source, compiled, header) is None


register(JitStaticTableProof())
register(JitStaticCostProof())
register(JitStaticCertification())
