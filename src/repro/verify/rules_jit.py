"""Generated-JIT-source rules (TEA033-TEA034).

The JIT engine (:mod:`repro.core.jit`) caches generated replay sources
on disk next to their TEAB snapshots and ``exec``'s them on load.  A
cached source is therefore a load boundary exactly like a snapshot —
and gets the same treatment: TEA033 audits the source *statically*
(header shape, an AST sweep rejecting anything the generator never
emits — imports, dunder access, dangerous builtins — and table sanity),
and TEA034 is the *dynamic fallback tier* behind the TEA07x static
certifier (:mod:`repro.verify.rules_jit_static`): when the static
proof fully applies, TEA034 yields nothing and executes nothing; only
when the proof is inapplicable (foreign cost parameters, an
unreplayable config token) does it run a small differential probe
comparing the generated code against the compiled engine.

Both rules work on the *text*: nothing here executes the subject's
source until TEA034's probe, the probe is skipped the moment any
static finding exists, and :func:`dynamic_probe_count` counts every
probe that actually executed (the clean static path keeps it at 0).
"""

import ast

from repro.verify.engine import Rule, register

#: Process-wide count of dynamic probes that actually executed a
#: subject source.  The TEA07x acceptance criterion pins this at 0
#: across the clean static-certification path.
_PROBE_COUNT = 0


def dynamic_probe_count():
    """How many TEA034 probes have executed in this process."""
    return _PROBE_COUNT


def reset_probe_count():
    """Zero the probe counter (test isolation)."""
    global _PROBE_COUNT
    _PROBE_COUNT = 0

#: Builtin names a generated source must never call.  The generator
#: emits a closed set of calls (range/len/iter/sum/list/ValueError plus
#: locally bound methods); anything on this list is an injection
#: attempt, not a codegen artefact.
_FORBIDDEN_CALLS = frozenset({
    "eval", "exec", "compile", "open", "__import__", "globals", "locals",
    "vars", "getattr", "setattr", "delattr", "input", "breakpoint",
    "exit", "quit", "memoryview", "type",
})

#: The one dunder attribute the generated loop legitimately touches
#: (``iter(...).__length_hint__`` recovers the stream index on the
#: out-of-trace path without a per-block counter).
_ALLOWED_DUNDER_ATTRS = frozenset({"__length_hint__"})

#: Statement/expression node types the generator never emits.  The
#: audit rejects them wholesale rather than reasoning about safety.
_FORBIDDEN_NODES = (
    ast.Import, ast.ImportFrom, ast.ClassDef, ast.AsyncFunctionDef,
    ast.Await, ast.AsyncFor, ast.AsyncWith, ast.With, ast.Lambda,
    ast.Global, ast.Nonlocal, ast.Delete, ast.Try, ast.Yield,
    ast.YieldFrom, ast.Starred,
)

#: Literal tables every generated source must define at top level.
_REQUIRED_TABLES = ("SHIFT", "N_STATES", "TBB", "EXP", "NXT", "MULTI",
                    "DEOPT_SIDS")


def _audit_source(source):
    """Yield ``(message, data)`` findings for one generated source."""
    from repro.core.jit import JIT_VERSION, parse_jit_header

    header = parse_jit_header(source)
    if header is None:
        yield ("missing or malformed '# TEAJIT v1 ...' header line", {})
        return
    if header["version"] != JIT_VERSION:
        yield ("unsupported format version %r (this build understands "
               "v%d)" % (header["version"], JIT_VERSION),
               {"version": header["version"]})
    digest = header.get("digest", "")
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        yield ("header digest %r is not a SHA-256 hex digest"
               % (digest[:16],), {})
    if not header.get("config"):
        yield ("header carries no config token", {})
    params = header.get("params", "")
    if len(params) != 12:
        yield ("header params token %r is not 12 hex digits" % (params,), {})
    if header.get("threshold", -1) < 0:
        yield ("header carries no specialization threshold", {})

    try:
        module = ast.parse(source)
    except SyntaxError as error:
        yield ("source does not parse: %s" % error, {"line": error.lineno})
        return

    bind_defs = 0
    for statement in module.body:
        if isinstance(statement, ast.FunctionDef):
            bind_defs += statement.name == "bind"
        elif isinstance(statement, ast.Assign):
            try:
                ast.literal_eval(statement.value)
            except (ValueError, TypeError, SyntaxError):
                names = ", ".join(
                    getattr(t, "id", "?") for t in statement.targets
                )
                yield ("top-level assignment to %s is not a literal"
                       % names, {})
        elif not isinstance(statement, ast.Expr):
            # Anything else at module level (the docstring is the only
            # legitimate Expr) is not generator output.
            yield ("unexpected top-level %s statement"
                   % type(statement).__name__,
                   {"line": statement.lineno})
    if bind_defs != 1:
        yield ("source must define exactly one bind() function "
               "(found %d)" % bind_defs, {})

    for node in ast.walk(module):
        if isinstance(node, _FORBIDDEN_NODES):
            yield ("forbidden %s construct" % type(node).__name__,
                   {"line": getattr(node, "lineno", None)})
        elif isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Name)
                    and callee.id in _FORBIDDEN_CALLS):
                yield ("forbidden call to %s()" % callee.id,
                       {"line": node.lineno})
        elif isinstance(node, ast.Attribute):
            if (node.attr.startswith("__")
                    and node.attr not in _ALLOWED_DUNDER_ATTRS):
                yield ("forbidden dunder attribute access .%s" % node.attr,
                       {"line": node.lineno})
        elif isinstance(node, ast.Name):
            if node.id in _FORBIDDEN_CALLS and not isinstance(
                    getattr(node, "ctx", None), ast.Store):
                yield ("forbidden reference to %s" % node.id,
                       {"line": node.lineno})

    from repro.core.jit import extract_jit_tables

    try:
        tables = extract_jit_tables(source)
    except (SyntaxError, ValueError, TypeError) as error:
        yield ("cannot extract literal tables: %s" % error, {})
        return
    missing = [name for name in _REQUIRED_TABLES if name not in tables]
    if missing:
        yield ("missing literal tables: %s" % ", ".join(missing), {})
        return
    n_states = tables["N_STATES"]
    if not isinstance(n_states, int) or n_states < 1:
        yield ("N_STATES must be a positive integer", {})
        return
    if not isinstance(tables["SHIFT"], int) or tables["SHIFT"] < 1:
        yield ("SHIFT must be a positive integer", {})
    if len(tables["TBB"]) != n_states:
        yield ("TBB has %d flags for %d states"
               % (len(tables["TBB"]), n_states), {})
    for name in ("EXP", "NXT"):
        if len(tables[name]) != n_states:
            yield ("%s has %d entries for %d states"
                   % (name, len(tables[name]), n_states), {})
    for dest in tables["NXT"]:
        if not (isinstance(dest, int) and 0 <= dest < n_states):
            yield ("NXT routes to unknown state %r" % (dest,), {})
            break
    for dest in tables["MULTI"].values():
        if not (isinstance(dest, int) and 0 <= dest < n_states):
            yield ("MULTI routes to unknown state %r" % (dest,), {})
            break
    for sid in tables["DEOPT_SIDS"]:
        if not (isinstance(sid, int) and 0 <= sid < n_states):
            yield ("DEOPT_SIDS names unknown state %r" % (sid,), {})
            break


class JitSourceAudit(Rule):
    rule_id = "TEA033"
    name = "jit-source-audit"
    family = "jit"
    description = (
        "A cached generated replay source is malformed or carries "
        "constructs the codegen never emits (imports, dunder access, "
        "dangerous builtins, non-literal tables)."
    )
    paper = "Section 4.2 (specialized transition dispatch)"
    requires = ("jit_source",)

    def check(self, subject):
        for message, data in _audit_source(subject.jit_source):
            yield self.diag(message, **data)


class JitEquivalence(Rule):
    rule_id = "TEA034"
    name = "jit-equivalence"
    family = "jit"
    description = (
        "Dynamic fallback tier behind the TEA07x static certifier: "
        "when the static proof cannot apply (foreign cost parameters), "
        "a differential probe of the generated code against the "
        "compiled engine disagreed."
    )
    paper = "Section 4.2 (the lowering preserves the automaton)"
    requires = ("jit_source", "compiled")

    def check(self, subject):
        from repro.core.jit import parse_jit_header, structural_digest

        source = subject.jit_source
        compiled = subject.compiled
        if any(True for _ in _audit_source(source)):
            # TEA033 already reports the defects; comparing (or running)
            # a source that failed the static audit proves nothing.
            return
        from repro.verify.rules_jit_static import (
            _mismatched_tables,
            static_certification_applicable,
        )

        if static_certification_applicable(source, compiled):
            # TEA070-TEA072 fully decide this artifact by analysis;
            # the probe tier stays cold (dynamic_probe_count pins it).
            return
        header = parse_jit_header(source)
        if header["digest"] != structural_digest(compiled):
            return  # TEA070 reports the digest mismatch
        mismatched = _mismatched_tables(source, compiled, header)
        if mismatched is None or mismatched:
            return  # TEA070 reports the table divergence
        for finding in self._dynamic_probe(source, compiled, header):
            yield finding

    def _dynamic_probe(self, source, compiled, header):
        """Differential spot check: run the (statically clean) source
        and the compiled engine over one probe batch and compare every
        replay counter — and the cost breakdown, when the source was
        baked with the default cost parameters."""
        from repro.core.jit import (
            JitReplayer,
            JitCode,
            config_from_token,
            params_token,
        )
        from repro.core.compiled import CompiledReplayer, END_OF_RUN
        from repro.dbt.cost import CostModel
        from repro.obs import Observability

        try:
            config = config_from_token(header["config"])
        except ValueError as error:
            yield self.diag("unreplayable config token: %s" % error,
                            location="config")
            return
        global _PROBE_COUNT
        _PROBE_COUNT += 1
        # Probe stream: every head entry, a prefix of the label table
        # (drives fast paths and side exits), one unknown PC, one
        # END_OF_RUN — enough to touch each dispatch tier.
        pcs = list(compiled.head_entries)
        pcs += list(compiled.labels[:16])
        unknown = (max(compiled.labels) + 1) if len(compiled.labels) else 1
        pcs += [unknown, END_OF_RUN]
        packed = []
        for pc in pcs:
            packed += [pc, 1, 1]

        results = []
        for engine in ("jit", "compiled"):
            cost = CostModel()
            obs = Observability()
            if engine == "jit":
                try:
                    code = JitCode.from_source(source)
                    replayer = JitReplayer(compiled, config=config,
                                           cost=cost, obs=obs, code=code)
                except ValueError as error:
                    yield self.diag(
                        "source fails to bind: %s" % error,
                    )
                    return
            else:
                replayer = CompiledReplayer(compiled, config=config,
                                            cost=cost, obs=obs)
            sid = replayer.run(packed)
            results.append((sid, replayer.stats.as_dict(), cost.cycles,
                            dict(cost.breakdown)))
        (jit_sid, jit_stats, jit_cycles, jit_breakdown) = results[0]
        (ref_sid, ref_stats, ref_cycles, ref_breakdown) = results[1]
        if jit_sid != ref_sid:
            yield self.diag(
                "probe ends in state %d under the generated code but "
                "%d under the compiled engine" % (jit_sid, ref_sid),
            )
        for name, expected in ref_stats.items():
            if jit_stats.get(name) != expected:
                yield self.diag(
                    "probe counter %s: generated code reports %r, "
                    "compiled engine %r"
                    % (name, jit_stats.get(name), expected),
                    location=name,
                )
        if header["params"] == params_token(CostModel().params):
            if (jit_cycles, jit_breakdown) != (ref_cycles, ref_breakdown):
                yield self.diag(
                    "probe cost model diverges: %r cycles vs %r"
                    % (jit_cycles, ref_cycles),
                    location="cost",
                )


register(JitSourceAudit())
register(JitEquivalence())
