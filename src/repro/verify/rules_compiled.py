"""Compiled-lowering rules (TEA030-TEA032).

:class:`~repro.core.compiled.CompiledTea` is the CSR lowering of the
automaton; these rules certify the tables themselves (offsets sorted
and in-bounds, per-state label runs sorted), the PC intern table
(bijective), and — when the source automaton is also at hand — that
the lowering is structurally equivalent to a fresh ``from_tea`` pass.

:func:`structural_diagnostics` is the single source of truth for the
table-shape checks: ``CompiledTea._validate`` calls it at construction
time (raising :class:`~repro.errors.VerificationError` on the first
blocking finding), and the :class:`CompiledOffsets` rule runs the same
code plus the ordering checks the constructor deliberately skips (a
replayer tolerates unsorted runs — ``successor_maps`` builds dicts —
but the TEAB codec and the binary-search dispatch path do not).
"""

from repro.verify.diagnostics import Diagnostic, ERROR
from repro.verify.engine import Rule, register


def structural_diagnostics(compiled, check_order=False):
    """Yield diagnostics for malformed compiled tables.

    With ``check_order=False`` (the constructor contract) only the
    shape/bounds invariants are checked — exactly the historical
    ``_validate`` set.  ``check_order=True`` adds offset monotonicity
    and per-state label sortedness (rule TEA030's full set).
    """

    def diag(message, **data):
        return Diagnostic("TEA030", ERROR, message, data=data or None)

    from repro.core.automaton import NTE_SID

    n_states = compiled.n_states
    if n_states < 1:
        yield diag("compiled TEA needs at least the NTE state")
        return
    if len(compiled.tbb_flag) != n_states:
        yield diag("tbb_flag length != n_states")
        return
    if compiled.tbb_flag[NTE_SID]:
        yield diag("NTE must not be flagged in-trace")
    if len(compiled.trans_offset) != n_states + 1:
        yield diag("trans_offset must have n_states + 1 entries")
        return
    if compiled.trans_offset[0] != 0:
        yield diag("trans_offset must start at 0")
    if compiled.trans_offset[-1] != len(compiled.trans_labels):
        yield diag("trans_offset must end at len(trans_labels)")
    if len(compiled.trans_labels) != len(compiled.trans_dest):
        yield diag("trans_labels/trans_dest length mismatch")
    for sid in compiled.trans_dest:
        if not 0 <= sid < n_states:
            yield diag("transition to unknown state %d" % sid, dest=sid)
    if len(compiled.head_entries) != len(compiled.head_sids):
        yield diag("head_entries/head_sids length mismatch")
    for sid in compiled.head_sids:
        if not 0 < sid < n_states:
            yield diag("head refers to unknown state %d" % sid, dest=sid)
    if len(set(compiled.head_entries)) != len(compiled.head_entries):
        yield diag("duplicate head entry address")
    if (len(compiled.instrs_dbt) != n_states
            or len(compiled.instrs_pin) != n_states):
        yield diag("metadata arrays must have n_states entries")

    if not check_order:
        return
    offsets = compiled.trans_offset
    for sid in range(n_states):
        if offsets[sid] > offsets[sid + 1]:
            yield diag(
                "trans_offset decreases at sid=%d (%d -> %d)"
                % (sid, offsets[sid], offsets[sid + 1]),
                sid=sid,
            )
            continue
        low = max(0, min(offsets[sid], len(compiled.trans_labels)))
        high = max(low, min(offsets[sid + 1], len(compiled.trans_labels)))
        run = compiled.trans_labels[low:high]
        for position in range(1, len(run)):
            if run[position] <= run[position - 1]:
                yield diag(
                    "sid=%d transition labels are not strictly "
                    "increasing (%#x after %#x)"
                    % (sid, run[position], run[position - 1]),
                    sid=sid,
                )


class CompiledOffsets(Rule):
    rule_id = "TEA030"
    name = "compiled-offsets"
    family = "compiled"
    description = (
        "The CSR tables are malformed: offsets not monotone or out of "
        "bounds, per-state label runs unsorted, dangling state ids, or "
        "mismatched array lengths."
    )
    paper = "Section 4.2 (flat dispatch tables)"
    requires = ("compiled",)

    def check(self, subject):
        return structural_diagnostics(subject.compiled, check_order=True)


class CompiledInterning(Rule):
    rule_id = "TEA031"
    name = "compiled-interning"
    family = "compiled"
    description = (
        "The PC intern table is not a sorted bijection over the labels "
        "actually used by transitions and heads."
    )
    paper = "Section 4.2 (label interning for dispatch)"
    requires = ("compiled",)

    def check(self, subject):
        compiled = subject.compiled
        expected = sorted(set(compiled.trans_labels)
                          | set(compiled.head_entries))
        actual = list(compiled.labels)
        if actual != expected:
            yield self.diag(
                "labels table has %d entries but the transitions and "
                "heads use %d distinct PCs (table must be their sorted "
                "union)" % (len(actual), len(expected)),
                location="labels",
            )
        for pc, label_id in compiled.label_ids.items():
            if not (0 <= label_id < len(actual)
                    and actual[label_id] == pc):
                yield self.diag(
                    "label_ids[%#x] = %d does not invert the labels "
                    "table" % (pc, label_id),
                    location="label_ids",
                )
        if len(compiled.label_ids) != len(actual):
            yield self.diag(
                "label_ids has %d entries for %d interned labels "
                "(interning is not bijective)"
                % (len(compiled.label_ids), len(actual)),
                location="label_ids",
            )


class CompiledEquivalence(Rule):
    rule_id = "TEA032"
    name = "compiled-equivalence"
    family = "compiled"
    description = (
        "The compiled lowering is not structurally equivalent to the "
        "source automaton it claims to encode."
    )
    paper = "Section 4.2 (the lowering preserves the automaton)"
    requires = ("compiled", "tea")

    def check(self, subject):
        from repro.core.compiled import CompiledTea

        try:
            reference = CompiledTea.from_tea(subject.tea)
        except ValueError as error:
            yield self.diag(
                "source automaton does not lower cleanly: %s" % error,
            )
            return
        compiled = subject.compiled
        if not reference.structurally_equal(compiled):
            details = []
            if reference.n_states != compiled.n_states:
                details.append(
                    "states %d != %d"
                    % (compiled.n_states, reference.n_states))
            if reference.trans_labels != compiled.trans_labels:
                details.append("transition labels differ")
            if reference.trans_dest != compiled.trans_dest:
                details.append("transition destinations differ")
            if reference._head_map != compiled._head_map:
                details.append("head registries differ")
            if reference.tbb_flag != compiled.tbb_flag:
                details.append("in-trace flags differ")
            yield self.diag(
                "compiled tables do not match a fresh from_tea "
                "lowering of the source automaton (%s)"
                % ("; ".join(details) or "layout differs"),
            )


register(CompiledOffsets())
register(CompiledInterning())
register(CompiledEquivalence())
