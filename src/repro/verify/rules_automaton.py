"""Automaton-family rules (TEA001-TEA005).

These certify the Section 3 invariants: the TEA is a *deterministic*
finite automaton whose states are the recorded TBBs plus NTE, whose
transitions point at real states, and whose NTE head registry mirrors
the recorded trace entries (Algorithm 1 lines 15-17).  Every rule runs
over :class:`~repro.verify.views.AutomatonView`, so the object-graph
``TEA`` and the flat-table ``CompiledTea`` get identical checks.
"""

from repro.verify.diagnostics import WARNING
from repro.verify.engine import Rule, register


class AutomatonDeterminism(Rule):
    rule_id = "TEA001"
    name = "automaton-determinism"
    family = "automaton"
    description = (
        "A state has two outgoing transitions with the same PC label; "
        "the TEA must be a deterministic automaton."
    )
    paper = "Section 3, Definition 4 (the TEA is a DFA)"
    requires = ("views",)

    def check(self, subject):
        for view in subject.views:
            for sid in range(view.n_states):
                seen = set()
                for label, dest in view.edges[sid]:
                    if label not in seen:
                        seen.add(label)
                    else:
                        # Any duplicate label breaks determinism, even a
                        # repeat of the same destination (the table no
                        # longer encodes a function).
                        yield self.diag(
                            "state %s has duplicate transition label %#x "
                            "(%s representation)"
                            % (view.state_label(sid), label, view.kind),
                            location=view.state_label(sid),
                            label=label,
                            representation=view.kind,
                        )


class AutomatonDanglingTarget(Rule):
    rule_id = "TEA002"
    name = "automaton-dangling-target"
    family = "automaton"
    description = (
        "A transition or head points at a state id outside the state "
        "table."
    )
    paper = "Section 3 (transition function is total over the states)"
    requires = ("views",)

    def check(self, subject):
        for view in subject.views:
            n_states = view.n_states
            for sid in range(n_states):
                for label, dest in view.edges[sid]:
                    if not 0 <= dest < n_states:
                        yield self.diag(
                            "transition %s --%#x--> sid=%d targets a "
                            "state outside the %d-state table (%s)"
                            % (view.state_label(sid), label, dest,
                               n_states, view.kind),
                            location=view.state_label(sid),
                            label=label,
                            dest=dest,
                            representation=view.kind,
                        )
            for entry, dest in view.heads:
                if not 0 <= dest < n_states:
                    yield self.diag(
                        "head entry %#x targets sid=%d outside the "
                        "%d-state table (%s)"
                        % (entry, dest, n_states, view.kind),
                        location="heads",
                        entry=entry,
                        dest=dest,
                        representation=view.kind,
                    )


class AutomatonUnreachableState(Rule):
    rule_id = "TEA003"
    name = "automaton-unreachable-state"
    family = "automaton"
    severity = WARNING
    description = (
        "A TBB state cannot be reached from NTE via heads or "
        "transitions; it is dead weight in the dispatch tables."
    )
    paper = "Section 3, Figure 3 (all trace states hang off NTE)"
    requires = ("views",)

    def check(self, subject):
        for view in subject.views:
            reachable = view.reachable()
            for sid in range(view.n_states):
                if sid not in reachable:
                    yield self.diag(
                        "state %s is unreachable from NTE (%s)"
                        % (view.state_label(sid), view.kind),
                        location=view.state_label(sid),
                        representation=view.kind,
                    )


class AutomatonNteConsistency(Rule):
    rule_id = "TEA004"
    name = "automaton-nte-consistency"
    family = "automaton"
    description = (
        "The NTE state is malformed: flagged in-trace, carrying "
        "explicit transitions, or targeted by a head entry."
    )
    paper = "Section 3 (NTE models execution outside any trace)"
    requires = ("views",)

    def check(self, subject):
        from repro.core.automaton import NTE_SID

        for view in subject.views:
            if view.n_states < 1:
                yield self.diag(
                    "automaton has no states at all (%s)" % view.kind,
                    location="NTE",
                    representation=view.kind,
                )
                continue
            if view.in_trace[NTE_SID]:
                yield self.diag(
                    "NTE is flagged as an in-trace state (%s)" % view.kind,
                    location="NTE",
                    representation=view.kind,
                )
            if view.edges[NTE_SID]:
                yield self.diag(
                    "NTE carries %d explicit transitions; NTE edges must "
                    "come from the head registry (%s)"
                    % (len(view.edges[NTE_SID]), view.kind),
                    location="NTE",
                    representation=view.kind,
                )
            for entry, dest in view.heads:
                if dest == NTE_SID:
                    yield self.diag(
                        "head entry %#x targets NTE itself (%s)"
                        % (entry, view.kind),
                        location="heads",
                        entry=entry,
                        representation=view.kind,
                    )
                elif (0 <= dest < view.n_states
                        and not view.in_trace[dest]):
                    yield self.diag(
                        "head entry %#x targets %s, which is not an "
                        "in-trace state (%s)"
                        % (entry, view.state_label(dest), view.kind),
                        location="heads",
                        entry=entry,
                        representation=view.kind,
                    )


class AutomatonHeadMismatch(Rule):
    rule_id = "TEA005"
    name = "automaton-head-mismatch"
    family = "automaton"
    description = (
        "The NTE head registry disagrees with the recorded trace "
        "entries: a trace has no head, a head has no trace, or a head "
        "points at the wrong TBB."
    )
    paper = "Algorithm 1 lines 15-17 (one head per recorded trace)"
    requires = ("tea", "trace_set")

    def check(self, subject):
        tea = subject.tea
        trace_set = subject.trace_set
        for trace in trace_set:
            if not trace.tbbs:
                continue   # the trace family (TEA040) owns empty traces
            entry = trace.tbbs[0].block.start
            head = tea.heads.get(entry)
            if head is None:
                yield self.diag(
                    "trace T%d (entry %#x) has no head registration"
                    % (trace.trace_id, entry),
                    location="T%d" % trace.trace_id,
                    trace=trace.trace_id,
                    entry=entry,
                )
            elif head.tbb is None or (
                    head.tbb.trace_id != trace.trace_id
                    or head.tbb.index != 0):
                yield self.diag(
                    "head at %#x points to %s, not trace T%d's first TBB"
                    % (entry, head.name, trace.trace_id),
                    location="T%d" % trace.trace_id,
                    trace=trace.trace_id,
                    entry=entry,
                )
        recorded = {
            trace.tbbs[0].block.start for trace in trace_set if trace.tbbs
        }
        for entry, head in tea.heads.items():
            if entry not in recorded:
                yield self.diag(
                    "head entry %#x matches no recorded trace" % entry,
                    location="heads",
                    entry=entry,
                )


register(AutomatonDeterminism())
register(AutomatonDanglingTarget())
register(AutomatonUnreachableState())
register(AutomatonNteConsistency())
register(AutomatonHeadMismatch())
