"""TEAB snapshot rules (TEA020-TEA023).

The binary codec (:mod:`repro.store.binary`) already rejects the worst
corruption — bad magic, CRC mismatch, truncated varints — but it stops
at the first problem and it *accepts* some damage silently: unknown
flag bits, non-monotone transition/head tables (the deltas are zigzag
encoded, so a decreasing label decodes fine), and overlong varint
encodings (``0x80 0x00`` for zero) that break the content-addressing
contract because two byte strings decode to the same automaton.

This module re-walks the TEAB v1 grammar with its own *collecting*
scanner: every finding becomes a diagnostic, nothing raises, and every
varint read is simultaneously re-encoded canonically so the
decode -> re-encode byte-identity check (TEA023) falls out of the scan
for free.
"""

import json

from repro.verify.engine import Rule, register


class _ScanError(Exception):
    """Internal: the payload cannot be scanned past this point."""


class _Scanner:
    """Bounded TEAB payload reader that re-encodes canonically as it goes.

    Mirrors :class:`repro.store.binary._Reader`, but every value read
    is appended (in canonical LEB128) to :attr:`canon`; after a full
    scan ``canon == data[start:end]`` iff the payload uses canonical
    encodings throughout.
    """

    __slots__ = ("data", "pos", "end", "canon")

    def __init__(self, data, start, end):
        self.data = data
        self.pos = start
        self.end = end
        self.canon = bytearray()

    def uvarint(self):
        from repro.store.binary import write_uvarint

        result = 0
        shift = 0
        data = self.data
        pos = self.pos
        end = self.end
        while True:
            if pos >= end:
                raise _ScanError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise _ScanError("oversized varint")
        self.pos = pos
        write_uvarint(self.canon, result)
        return result

    def svarint(self):
        from repro.store.binary import unzigzag

        return unzigzag(self.uvarint())

    def take(self, count):
        if self.pos + count > self.end:
            raise _ScanError("truncated section")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        self.canon += chunk
        return chunk

    def string(self):
        raw = self.take(self.uvarint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            raise _ScanError("string is not valid UTF-8") from None

    def optional_uvarint(self):
        if self.uvarint() == 0:
            return None
        return self.uvarint()

    @property
    def exhausted(self):
        return self.pos >= self.end


class SnapshotScan:
    """Result of one collecting scan over snapshot bytes.

    ``envelope`` / ``structure`` / ``order`` / ``roundtrip`` are lists
    of ``(message, data_dict)`` findings, one list per rule family
    member.  An envelope failure aborts the payload scan (the other
    lists stay empty — the envelope finding is the root cause).
    """

    __slots__ = ("envelope", "structure", "order", "roundtrip",
                 "payload_scanned")

    def __init__(self):
        self.envelope = []
        self.structure = []
        self.order = []
        self.roundtrip = []
        self.payload_scanned = False


def scan_snapshot(data):
    """Structurally scan TEAB bytes; returns a :class:`SnapshotScan`."""
    from repro.store.binary import (
        BINARY_VERSION, FLAG_META, FLAG_PROFILE, MAGIC,
    )
    import zlib

    scan = SnapshotScan()
    min_size = len(MAGIC) + 2 + 4
    if len(data) < min_size:
        scan.envelope.append((
            "snapshot is %d bytes, shorter than the %d-byte minimum "
            "envelope" % (len(data), min_size),
            {"size": len(data)},
        ))
        return scan
    if data[:4] != MAGIC:
        scan.envelope.append((
            "bad magic %r (expected %r)" % (bytes(data[:4]), MAGIC),
            {"magic": repr(bytes(data[:4]))},
        ))
        return scan
    version = data[4]
    if version != BINARY_VERSION:
        scan.envelope.append((
            "unsupported snapshot version %d (this codec reads v%d)"
            % (version, BINARY_VERSION),
            {"version": version},
        ))
        return scan
    flags = data[5]
    known = FLAG_PROFILE | FLAG_META
    if flags & ~known:
        scan.envelope.append((
            "unknown flag bits %#04x set (known mask %#04x); a newer "
            "or corrupted writer produced this snapshot"
            % (flags & ~known, known),
            {"flags": flags},
        ))
        return scan
    stored_crc = int.from_bytes(data[-4:], "little")
    actual_crc = zlib.crc32(data[:-4])
    if stored_crc != actual_crc:
        scan.envelope.append((
            "CRC mismatch: stored %08x, computed %08x"
            % (stored_crc, actual_crc),
            {"stored": stored_crc, "computed": actual_crc},
        ))
        return scan

    scanner = _Scanner(data, 6, len(data) - 4)
    try:
        _scan_payload(scanner, flags, scan)
        scan.payload_scanned = True
    except _ScanError as error:
        scan.structure.append((
            "payload scan failed at byte %d: %s" % (scanner.pos, error),
            {"offset": scanner.pos},
        ))
        return scan

    if not scanner.exhausted:
        scan.structure.append((
            "%d trailing byte(s) after the snapshot payload"
            % (scanner.end - scanner.pos),
            {"trailing": scanner.end - scanner.pos},
        ))
    elif bytes(scanner.canon) != bytes(data[6:len(data) - 4]):
        # Same decoded values, different bytes: some varint is overlong
        # (or a string length disagrees).  Find the first divergence for
        # the message.
        canon = bytes(scanner.canon)
        original = bytes(data[6:len(data) - 4])
        offset = next(
            (i for i, (a, b) in enumerate(zip(canon, original)) if a != b),
            min(len(canon), len(original)),
        )
        scan.roundtrip.append((
            "payload is not canonically encoded: re-encoding the "
            "decoded values diverges at payload byte %d (snapshot "
            "byte %d); content addressing requires canonical varints"
            % (offset, offset + 6),
            {"offset": offset + 6},
        ))
    return scan


def _scan_payload(scanner, flags, scan):
    """Walk the whole TEAB v1 grammar, collecting findings into ``scan``."""
    from repro.store.binary import FLAG_META, FLAG_PROFILE

    if flags & FLAG_META:
        meta_text = scanner.string()
        try:
            json.loads(meta_text)
        except json.JSONDecodeError as error:
            scan.structure.append((
                "meta section is not valid JSON: %s" % error, {},
            ))

    # -- traces section ------------------------------------------------
    scanner.string()                       # trace-set kind
    n_traces = scanner.uvarint()
    tbb_keys = set()                       # (trace_id, index)
    entries = set()
    for _ in range(n_traces):
        trace_id = scanner.uvarint()
        scanner.string()                   # trace kind
        scanner.optional_uvarint()         # anchor
        n_tbbs = scanner.uvarint()
        if n_tbbs == 0:
            scan.structure.append((
                "trace T%d has no TBBs" % trace_id,
                {"trace": trace_id},
            ))
        previous = 0
        entry = None
        for index in range(n_tbbs):
            start = previous + scanner.svarint()
            length = scanner.uvarint()
            if start < 0 or length < 0:
                scan.structure.append((
                    "trace T%d TBB #%d spans negative addresses "
                    "(%d..%d)" % (trace_id, index, start, start + length),
                    {"trace": trace_id, "index": index},
                ))
            if index == 0:
                entry = start
            tbb_keys.add((trace_id, index))
            previous = start
        if entry is not None:
            if entry in entries:
                scan.structure.append((
                    "duplicate trace entry %#x (trace T%d)"
                    % (entry, trace_id),
                    {"trace": trace_id, "entry": entry},
                ))
            entries.add(entry)
        n_edges = scanner.uvarint()
        previous = 0
        for _ in range(n_edges):
            from_index = previous + scanner.uvarint()
            to_index = scanner.uvarint()
            if from_index >= n_tbbs or to_index >= n_tbbs:
                scan.structure.append((
                    "trace T%d edge #%d -> #%d is out of range "
                    "(%d TBBs)" % (trace_id, from_index, to_index, n_tbbs),
                    {"trace": trace_id},
                ))
            previous = from_index

    # -- automaton section ---------------------------------------------
    n_states = scanner.uvarint()
    if n_states < 1:
        scan.structure.append((
            "automaton section declares %d states; the NTE state is "
            "mandatory" % n_states, {},
        ))
    seen_refs = set()
    for sid in range(1, max(n_states, 1)):
        key = (scanner.uvarint(), scanner.uvarint())
        if key not in tbb_keys:
            scan.structure.append((
                "state %d refers to unknown TBB (T%d, #%d)"
                % (sid, key[0], key[1]),
                {"sid": sid},
            ))
        if key in seen_refs:
            scan.structure.append((
                "two states refer to the same TBB (T%d, #%d)"
                % (key[0], key[1]),
                {"sid": sid},
            ))
        seen_refs.add(key)
    for sid in range(max(n_states, 1)):
        n_transitions = scanner.uvarint()
        previous = 0
        for position in range(n_transitions):
            label = previous + scanner.svarint()
            dest = scanner.uvarint()
            if position and label <= previous:
                scan.order.append((
                    "state %d transition labels are not strictly "
                    "increasing (%#x after %#x)" % (sid, label, previous),
                    {"sid": sid, "label": label},
                ))
            if not 0 <= dest < n_states:
                scan.structure.append((
                    "state %d transition on %#x targets unknown state "
                    "%d" % (sid, label, dest),
                    {"sid": sid, "dest": dest},
                ))
            previous = label
    n_heads = scanner.uvarint()
    previous = 0
    for position in range(n_heads):
        entry = previous + scanner.svarint()
        sid = scanner.uvarint()
        if position and entry <= previous:
            scan.order.append((
                "head entries are not strictly increasing (%#x after "
                "%#x)" % (entry, previous),
                {"entry": entry},
            ))
        if not 0 < sid < n_states:
            scan.structure.append((
                "head entry %#x targets unknown state %d" % (entry, sid),
                {"entry": entry, "sid": sid},
            ))
        previous = entry

    # -- profile section -----------------------------------------------
    if flags & FLAG_PROFILE:
        n_counts = scanner.uvarint()
        for _ in range(n_counts):
            key = (scanner.uvarint(), scanner.uvarint())
            scanner.uvarint()              # count
            if key not in tbb_keys:
                scan.structure.append((
                    "profile count refers to unknown TBB (T%d, #%d)"
                    % key, {},
                ))
        for map_index in range(3):
            n_items = scanner.uvarint()
            previous = None
            for _ in range(n_items):
                trace_id = scanner.uvarint()
                scanner.uvarint()          # value
                if previous is not None and trace_id <= previous:
                    scan.order.append((
                        "profile map %d keys are not strictly "
                        "increasing (T%d after T%d)"
                        % (map_index, trace_id, previous),
                        {"map": map_index},
                    ))
                previous = trace_id


class _SnapshotRule(Rule):
    """Shared plumbing: scan the snapshot, yield one finding family."""

    family = "snapshot"
    requires = ("snapshot",)
    scan_field = None

    def check(self, subject):
        scan = scan_snapshot(subject.snapshot)
        for message, data in getattr(scan, self.scan_field):
            yield self.diag(message, **data)


class SnapshotEnvelope(_SnapshotRule):
    rule_id = "TEA020"
    name = "snapshot-envelope"
    description = (
        "The TEAB envelope is invalid: wrong magic, unsupported "
        "version, unknown flag bits, or CRC mismatch."
    )
    paper = "Section 5 (storing trace shape for reuse)"
    scan_field = "envelope"


class SnapshotStructure(_SnapshotRule):
    rule_id = "TEA021"
    name = "snapshot-structure"
    description = (
        "A payload section is malformed: truncated varint, "
        "out-of-range index, unknown TBB reference, or trailing bytes."
    )
    paper = "Section 5 (storing trace shape for reuse)"
    scan_field = "structure"


class SnapshotOrder(_SnapshotRule):
    rule_id = "TEA022"
    name = "snapshot-order"
    description = (
        "A delta-encoded table is not strictly increasing (transition "
        "labels, head entries, or profile map keys); the codec always "
        "writes them sorted."
    )
    paper = "Section 4.2 (sorted dispatch tables)"
    scan_field = "order"


class SnapshotRoundtrip(_SnapshotRule):
    rule_id = "TEA023"
    name = "snapshot-roundtrip"
    description = (
        "Decoding then re-encoding the payload does not reproduce the "
        "original bytes (overlong varints); content addressing "
        "requires canonical encoding."
    )
    paper = "Section 5 (content-addressed snapshot reuse)"
    scan_field = "roundtrip"


register(SnapshotEnvelope())
register(SnapshotStructure())
register(SnapshotOrder())
register(SnapshotRoundtrip())
