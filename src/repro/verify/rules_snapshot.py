"""TEAB snapshot rules (TEA020-TEA026).

The binary codec (:mod:`repro.store.binary`) already rejects the worst
corruption — bad magic, CRC mismatch, truncated varints — but it stops
at the first problem and it *accepts* some damage silently: unknown
flag bits, non-monotone transition/head tables (the deltas are zigzag
encoded, so a decreasing label decodes fine), and overlong varint
encodings (``0x80 0x00`` for zero) that break the content-addressing
contract because two byte strings decode to the same automaton.

This module re-walks the TEAB v1 grammar with its own *collecting*
scanner: every finding becomes a diagnostic, nothing raises, and every
varint read is simultaneously re-encoded canonically so the
decode -> re-encode byte-identity check (TEA023) falls out of the scan
for free.

The v2 section layout (:mod:`repro.store.binary_v2`) gets the same
treatment: TEA024 covers the section table (bounds, overlap,
alignment, required sections, count consistency, canonical ordering of
the zero-copy tables), TEA025 the table and per-section CRCs, and
TEA026 — deep scans only — the v1<->v2 conversion round-trip that
anchors content addressing across both formats.
"""

import json

from repro.verify.engine import Rule, register


class _ScanError(Exception):
    """Internal: the payload cannot be scanned past this point."""


class _Scanner:
    """Bounded TEAB payload reader that re-encodes canonically as it goes.

    Mirrors :class:`repro.store.binary._Reader`, but every value read
    is appended (in canonical LEB128) to :attr:`canon`; after a full
    scan ``canon == data[start:end]`` iff the payload uses canonical
    encodings throughout.
    """

    __slots__ = ("data", "pos", "end", "canon")

    def __init__(self, data, start, end):
        self.data = data
        self.pos = start
        self.end = end
        self.canon = bytearray()

    def uvarint(self):
        from repro.store.binary import write_uvarint

        result = 0
        shift = 0
        data = self.data
        pos = self.pos
        end = self.end
        while True:
            if pos >= end:
                raise _ScanError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise _ScanError("oversized varint")
        self.pos = pos
        write_uvarint(self.canon, result)
        return result

    def svarint(self):
        from repro.store.binary import unzigzag

        return unzigzag(self.uvarint())

    def take(self, count):
        if self.pos + count > self.end:
            raise _ScanError("truncated section")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        self.canon += chunk
        return chunk

    def string(self):
        raw = self.take(self.uvarint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            raise _ScanError("string is not valid UTF-8") from None

    def optional_uvarint(self):
        if self.uvarint() == 0:
            return None
        return self.uvarint()

    @property
    def exhausted(self):
        return self.pos >= self.end


class SnapshotScan:
    """Result of one collecting scan over snapshot bytes.

    ``envelope`` / ``structure`` / ``order`` / ``roundtrip`` (v1) and
    ``sections`` / ``crc`` (v2) are lists of ``(message, data_dict)``
    findings, one list per rule family member.  An envelope failure
    aborts the payload scan (the other lists stay empty — the envelope
    finding is the root cause).  A v1 scan leaves the v2 lists empty
    and vice versa.
    """

    __slots__ = ("envelope", "structure", "order", "roundtrip",
                 "sections", "crc", "payload_scanned")

    def __init__(self):
        self.envelope = []
        self.structure = []
        self.order = []
        self.roundtrip = []
        self.sections = []
        self.crc = []
        self.payload_scanned = False

    def sound(self):
        """True when nothing blocks decoding the payload (ordering and
        canonical-encoding findings are tolerated by the decoders)."""
        return (self.payload_scanned and not self.envelope
                and not self.structure and not self.sections
                and not self.crc)


def scan_snapshot(data):
    """Structurally scan TEAB bytes; returns a :class:`SnapshotScan`."""
    from repro.store.binary import (
        BINARY_VERSION, FLAG_META, FLAG_PROFILE, MAGIC,
    )
    import zlib

    scan = SnapshotScan()
    min_size = len(MAGIC) + 2 + 4
    if len(data) < min_size:
        scan.envelope.append((
            "snapshot is %d bytes, shorter than the %d-byte minimum "
            "envelope" % (len(data), min_size),
            {"size": len(data)},
        ))
        return scan
    if data[:4] != MAGIC:
        scan.envelope.append((
            "bad magic %r (expected %r)" % (bytes(data[:4]), MAGIC),
            {"magic": repr(bytes(data[:4]))},
        ))
        return scan
    version = data[4]
    if version == 2:
        _scan_v2(data, scan)
        return scan
    if version != BINARY_VERSION:
        scan.envelope.append((
            "unsupported snapshot version %d (this codec reads v1/v2)"
            % version,
            {"version": version},
        ))
        return scan
    flags = data[5]
    known = FLAG_PROFILE | FLAG_META
    if flags & ~known:
        scan.envelope.append((
            "unknown flag bits %#04x set (known mask %#04x); a newer "
            "or corrupted writer produced this snapshot"
            % (flags & ~known, known),
            {"flags": flags},
        ))
        return scan
    stored_crc = int.from_bytes(data[-4:], "little")
    actual_crc = zlib.crc32(data[:-4])
    if stored_crc != actual_crc:
        scan.envelope.append((
            "CRC mismatch: stored %08x, computed %08x"
            % (stored_crc, actual_crc),
            {"stored": stored_crc, "computed": actual_crc},
        ))
        return scan

    scanner = _Scanner(data, 6, len(data) - 4)
    try:
        _scan_payload(scanner, flags, scan)
        scan.payload_scanned = True
    except _ScanError as error:
        scan.structure.append((
            "payload scan failed at byte %d: %s" % (scanner.pos, error),
            {"offset": scanner.pos},
        ))
        return scan

    if not scanner.exhausted:
        scan.structure.append((
            "%d trailing byte(s) after the snapshot payload"
            % (scanner.end - scanner.pos),
            {"trailing": scanner.end - scanner.pos},
        ))
    elif bytes(scanner.canon) != bytes(data[6:len(data) - 4]):
        # Same decoded values, different bytes: some varint is overlong
        # (or a string length disagrees).  Find the first divergence for
        # the message.
        canon = bytes(scanner.canon)
        original = bytes(data[6:len(data) - 4])
        offset = next(
            (i for i, (a, b) in enumerate(zip(canon, original)) if a != b),
            min(len(canon), len(original)),
        )
        scan.roundtrip.append((
            "payload is not canonically encoded: re-encoding the "
            "decoded values diverges at payload byte %d (snapshot "
            "byte %d); content addressing requires canonical varints"
            % (offset, offset + 6),
            {"offset": offset + 6},
        ))
    return scan


def _scan_payload(scanner, flags, scan):
    """Walk the whole TEAB v1 grammar, collecting findings into ``scan``."""
    from repro.store.binary import FLAG_META, FLAG_PROFILE

    if flags & FLAG_META:
        meta_text = scanner.string()
        try:
            json.loads(meta_text)
        except json.JSONDecodeError as error:
            scan.structure.append((
                "meta section is not valid JSON: %s" % error, {},
            ))

    # -- traces section ------------------------------------------------
    scanner.string()                       # trace-set kind
    n_traces = scanner.uvarint()
    tbb_keys = set()                       # (trace_id, index)
    entries = set()
    for _ in range(n_traces):
        trace_id = scanner.uvarint()
        scanner.string()                   # trace kind
        scanner.optional_uvarint()         # anchor
        n_tbbs = scanner.uvarint()
        if n_tbbs == 0:
            scan.structure.append((
                "trace T%d has no TBBs" % trace_id,
                {"trace": trace_id},
            ))
        previous = 0
        entry = None
        for index in range(n_tbbs):
            start = previous + scanner.svarint()
            length = scanner.uvarint()
            if start < 0 or length < 0:
                scan.structure.append((
                    "trace T%d TBB #%d spans negative addresses "
                    "(%d..%d)" % (trace_id, index, start, start + length),
                    {"trace": trace_id, "index": index},
                ))
            if index == 0:
                entry = start
            tbb_keys.add((trace_id, index))
            previous = start
        if entry is not None:
            if entry in entries:
                scan.structure.append((
                    "duplicate trace entry %#x (trace T%d)"
                    % (entry, trace_id),
                    {"trace": trace_id, "entry": entry},
                ))
            entries.add(entry)
        n_edges = scanner.uvarint()
        previous = 0
        for _ in range(n_edges):
            from_index = previous + scanner.uvarint()
            to_index = scanner.uvarint()
            if from_index >= n_tbbs or to_index >= n_tbbs:
                scan.structure.append((
                    "trace T%d edge #%d -> #%d is out of range "
                    "(%d TBBs)" % (trace_id, from_index, to_index, n_tbbs),
                    {"trace": trace_id},
                ))
            previous = from_index

    # -- automaton section ---------------------------------------------
    n_states = scanner.uvarint()
    if n_states < 1:
        scan.structure.append((
            "automaton section declares %d states; the NTE state is "
            "mandatory" % n_states, {},
        ))
    seen_refs = set()
    for sid in range(1, max(n_states, 1)):
        key = (scanner.uvarint(), scanner.uvarint())
        if key not in tbb_keys:
            scan.structure.append((
                "state %d refers to unknown TBB (T%d, #%d)"
                % (sid, key[0], key[1]),
                {"sid": sid},
            ))
        if key in seen_refs:
            scan.structure.append((
                "two states refer to the same TBB (T%d, #%d)"
                % (key[0], key[1]),
                {"sid": sid},
            ))
        seen_refs.add(key)
    for sid in range(max(n_states, 1)):
        n_transitions = scanner.uvarint()
        previous = 0
        for position in range(n_transitions):
            label = previous + scanner.svarint()
            dest = scanner.uvarint()
            if position and label <= previous:
                scan.order.append((
                    "state %d transition labels are not strictly "
                    "increasing (%#x after %#x)" % (sid, label, previous),
                    {"sid": sid, "label": label},
                ))
            if not 0 <= dest < n_states:
                scan.structure.append((
                    "state %d transition on %#x targets unknown state "
                    "%d" % (sid, label, dest),
                    {"sid": sid, "dest": dest},
                ))
            previous = label
    n_heads = scanner.uvarint()
    previous = 0
    for position in range(n_heads):
        entry = previous + scanner.svarint()
        sid = scanner.uvarint()
        if position and entry <= previous:
            scan.order.append((
                "head entries are not strictly increasing (%#x after "
                "%#x)" % (entry, previous),
                {"entry": entry},
            ))
        if not 0 < sid < n_states:
            scan.structure.append((
                "head entry %#x targets unknown state %d" % (entry, sid),
                {"entry": entry, "sid": sid},
            ))
        previous = entry

    # -- profile section -----------------------------------------------
    if flags & FLAG_PROFILE:
        n_counts = scanner.uvarint()
        for _ in range(n_counts):
            key = (scanner.uvarint(), scanner.uvarint())
            scanner.uvarint()              # count
            if key not in tbb_keys:
                scan.structure.append((
                    "profile count refers to unknown TBB (T%d, #%d)"
                    % key, {},
                ))
        for map_index in range(3):
            n_items = scanner.uvarint()
            previous = None
            for _ in range(n_items):
                trace_id = scanner.uvarint()
                scanner.uvarint()          # value
                if previous is not None and trace_id <= previous:
                    scan.order.append((
                        "profile map %d keys are not strictly "
                        "increasing (T%d after T%d)"
                        % (map_index, trace_id, previous),
                        {"map": map_index},
                    ))
                previous = trace_id


def _scan_v2(data, scan):
    """Collecting scan of the TEAB v2 section layout.

    The same checks :func:`repro.store.binary_v2.open_v2` applies
    (raising at the first problem), plus the canonical-layout rules a
    loader does not need: zeroed inter-section padding, the file ending
    exactly at the last section, CSR monotonicity, head/label-pool
    ordering, and the in-trace flag pattern.  Envelope damage lands in
    ``scan.envelope``, section-table/structure damage in
    ``scan.sections``, CRC mismatches in ``scan.crc``.
    """
    import struct
    import zlib

    from repro.store.binary_v2 import (
        ENTRY_SIZE, HEADER_SIZE, INT64_SECTIONS, REQUIRED_SECTIONS,
        SEC_HEAD_ENTRIES, SEC_HEAD_SIDS, SEC_LABEL_POOL, SEC_STATE_REFS,
        SEC_TBB_FLAG, SEC_TRANS_DEST, SEC_TRANS_LABELS, SEC_TRANS_OFFSET,
        SECTION_NAMES, _ENTRY, _HEADER, int64_section,
    )

    size = len(data)
    if size < HEADER_SIZE:
        scan.envelope.append((
            "snapshot is %d bytes, shorter than the %d-byte v2 header"
            % (size, HEADER_SIZE),
            {"size": size},
        ))
        return
    try:
        (_magic, _version, flags, n_sections, file_size, table_crc,
         reserved) = _HEADER.unpack_from(data, 0)
    except struct.error as error:
        scan.envelope.append(("unreadable v2 header: %s" % error, {}))
        return
    if flags or reserved:
        scan.envelope.append((
            "reserved v2 header bits are set (flags=%#x reserved=%#x); "
            "a newer or corrupted writer produced this snapshot"
            % (flags, reserved),
            {"flags": flags, "reserved": reserved},
        ))
        return
    if file_size != size:
        scan.envelope.append((
            "v2 header names %d bytes but the snapshot is %d"
            % (file_size, size),
            {"declared": file_size, "size": size},
        ))
        return
    table_end = HEADER_SIZE + ENTRY_SIZE * n_sections
    if n_sections < 1 or table_end > size:
        scan.envelope.append((
            "v2 section table (%d entries) does not fit in %d bytes"
            % (n_sections, size),
            {"n_sections": n_sections},
        ))
        return
    actual_crc = zlib.crc32(memoryview(data)[HEADER_SIZE:table_end],
                            zlib.crc32(memoryview(data)[:16]))
    if actual_crc != table_crc:
        scan.crc.append((
            "section table CRC mismatch (stored %08x, computed %08x)"
            % (table_crc, actual_crc),
            {"stored": table_crc, "computed": actual_crc},
        ))
        scan.payload_scanned = True
        return

    sections = {}
    previous_id = 0
    cursor = table_end
    bounded = True
    for index in range(n_sections):
        sec_id, crc, offset, length, count = _ENTRY.unpack_from(
            data, HEADER_SIZE + ENTRY_SIZE * index
        )
        name = SECTION_NAMES.get(sec_id, "id=%d" % sec_id)
        if sec_id not in SECTION_NAMES:
            scan.sections.append((
                "unknown v2 section id %d" % sec_id, {"section": sec_id},
            ))
            bounded = False
            continue
        if sec_id <= previous_id:
            scan.sections.append((
                "section ids are not strictly ascending (%d after %d)"
                % (sec_id, previous_id),
                {"section": sec_id},
            ))
        previous_id = sec_id
        if offset % 8:
            # Misplaced section: the CRC below would re-hash the wrong
            # byte range, so skip it — the geometry finding is the cause.
            scan.sections.append((
                "section %s at offset %d is not 8-byte aligned"
                % (name, offset),
                {"section": sec_id, "offset": offset},
            ))
            bounded = False
            continue
        if offset < cursor or offset + length > size:
            scan.sections.append((
                "section %s [%d, %d) overlaps a neighbour or escapes "
                "the %d-byte file" % (name, offset, offset + length, size),
                {"section": sec_id, "offset": offset, "length": length},
            ))
            bounded = False
            continue
        if any(memoryview(data)[cursor:offset]):
            scan.sections.append((
                "padding before section %s is not zeroed" % name,
                {"section": sec_id},
            ))
        if sec_id in INT64_SECTIONS and length != 8 * count:
            scan.sections.append((
                "int64 section %s declares %d items but %d bytes"
                % (name, count, length),
                {"section": sec_id, "count": count, "length": length},
            ))
            bounded = False
        if sec_id == SEC_TBB_FLAG and length != count:
            scan.sections.append((
                "tbb_flag section declares %d states but %d bytes"
                % (count, length),
                {"count": count, "length": length},
            ))
            bounded = False
        actual = zlib.crc32(memoryview(data)[offset:offset + length])
        if actual != crc:
            scan.crc.append((
                "section %s CRC mismatch (stored %08x, computed %08x)"
                % (name, crc, actual),
                {"section": sec_id, "stored": crc, "computed": actual},
            ))
        sections[sec_id] = (offset, length, count)
        cursor = offset + length
    scan.payload_scanned = True
    if bounded and cursor != size:
        scan.sections.append((
            "%d trailing byte(s) after the last section"
            % (size - cursor),
            {"trailing": size - cursor},
        ))
    missing = REQUIRED_SECTIONS - sections.keys()
    if missing:
        scan.sections.append((
            "missing required section(s): %s"
            % ", ".join(sorted(SECTION_NAMES[m] for m in missing)),
            {"missing": sorted(missing)},
        ))
        return
    if not bounded or scan.sections or scan.crc:
        # Table geometry or payload integrity is already broken; the
        # content checks below would read through the damage.
        return

    n_states = sections[SEC_TBB_FLAG][2]
    if n_states < 1:
        scan.sections.append((
            "tbb_flag declares %d states; the NTE state is mandatory"
            % n_states, {},
        ))
        return
    counts = {
        SEC_STATE_REFS: 2 * (n_states - 1),
        SEC_TRANS_OFFSET: n_states + 1,
    }
    for sec_id, expected in counts.items():
        if sections[sec_id][2] != expected:
            scan.sections.append((
                "section %s holds %d items; %d states require %d"
                % (SECTION_NAMES[sec_id], sections[sec_id][2],
                   n_states, expected),
                {"section": sec_id},
            ))
    if sections[SEC_TRANS_LABELS][2] != sections[SEC_TRANS_DEST][2]:
        scan.sections.append((
            "trans_labels holds %d items but trans_dest %d"
            % (sections[SEC_TRANS_LABELS][2], sections[SEC_TRANS_DEST][2]),
            {},
        ))
    if sections[SEC_HEAD_ENTRIES][2] != sections[SEC_HEAD_SIDS][2]:
        scan.sections.append((
            "head_entries holds %d items but head_sids %d"
            % (sections[SEC_HEAD_ENTRIES][2], sections[SEC_HEAD_SIDS][2]),
            {},
        ))
    if scan.sections:
        return

    def view(sec_id):
        offset, length, _count = sections[sec_id]
        return int64_section(data, offset, length)

    flag_off, flag_len, _ = sections[SEC_TBB_FLAG]
    tbb_flag = bytes(memoryview(data)[flag_off:flag_off + flag_len])
    if tbb_flag != b"\x00" + b"\x01" * (n_states - 1):
        scan.sections.append((
            "tbb_flag is not the canonical NTE-then-in-trace pattern", {},
        ))
    refs = view(SEC_STATE_REFS)
    if len(refs) and min(refs) < 0:
        scan.sections.append((
            "state_refs contains a negative trace/TBB reference", {},
        ))
    offsets = view(SEC_TRANS_OFFSET)
    n_transitions = sections[SEC_TRANS_LABELS][2]
    if offsets[0] != 0 or offsets[n_states] != n_transitions:
        scan.sections.append((
            "trans_offset does not span [0, %d] (starts %d, ends %d)"
            % (n_transitions, offsets[0], offsets[n_states]),
            {},
        ))
    elif any(offsets[i] > offsets[i + 1] for i in range(n_states)):
        scan.sections.append((
            "trans_offset is not monotonically non-decreasing", {},
        ))
    else:
        labels = view(SEC_TRANS_LABELS)
        for sid in range(n_states):
            low, high = offsets[sid], offsets[sid + 1]
            if any(labels[i] >= labels[i + 1] for i in range(low, high - 1)):
                scan.sections.append((
                    "state %d transition labels are not strictly "
                    "increasing" % sid,
                    {"sid": sid},
                ))
                break
    dests = view(SEC_TRANS_DEST)
    if len(dests) and not 0 <= min(dests) <= max(dests) < n_states:
        scan.sections.append((
            "trans_dest targets a state outside [0, %d)" % n_states, {},
        ))
    head_entries = view(SEC_HEAD_ENTRIES)
    head_sids = view(SEC_HEAD_SIDS)
    if any(head_entries[i] >= head_entries[i + 1]
           for i in range(len(head_entries) - 1)):
        scan.sections.append((
            "head entries are not strictly increasing", {},
        ))
    if len(head_sids) and not 0 < min(head_sids) <= max(head_sids) < n_states:
        scan.sections.append((
            "head_sids targets a state outside (0, %d)" % n_states, {},
        ))
    pool = view(SEC_LABEL_POOL)
    if any(pool[i] >= pool[i + 1] for i in range(len(pool) - 1)):
        scan.sections.append((
            "label_pool is not strictly increasing", {},
        ))


class _SnapshotRule(Rule):
    """Shared plumbing: scan the snapshot, yield one finding family."""

    family = "snapshot"
    requires = ("snapshot",)
    scan_field = None

    def check(self, subject):
        scan = scan_snapshot(subject.snapshot)
        for message, data in getattr(scan, self.scan_field):
            yield self.diag(message, **data)


class SnapshotEnvelope(_SnapshotRule):
    rule_id = "TEA020"
    name = "snapshot-envelope"
    description = (
        "The TEAB envelope is invalid: wrong magic, unsupported "
        "version, unknown flag bits, or CRC mismatch."
    )
    paper = "Section 5 (storing trace shape for reuse)"
    scan_field = "envelope"


class SnapshotStructure(_SnapshotRule):
    rule_id = "TEA021"
    name = "snapshot-structure"
    description = (
        "A payload section is malformed: truncated varint, "
        "out-of-range index, unknown TBB reference, or trailing bytes."
    )
    paper = "Section 5 (storing trace shape for reuse)"
    scan_field = "structure"


class SnapshotOrder(_SnapshotRule):
    rule_id = "TEA022"
    name = "snapshot-order"
    description = (
        "A delta-encoded table is not strictly increasing (transition "
        "labels, head entries, or profile map keys); the codec always "
        "writes them sorted."
    )
    paper = "Section 4.2 (sorted dispatch tables)"
    scan_field = "order"


class SnapshotRoundtrip(_SnapshotRule):
    rule_id = "TEA023"
    name = "snapshot-roundtrip"
    description = (
        "Decoding then re-encoding the payload does not reproduce the "
        "original bytes (overlong varints); content addressing "
        "requires canonical encoding."
    )
    paper = "Section 5 (content-addressed snapshot reuse)"
    scan_field = "roundtrip"


class SnapshotSections(_SnapshotRule):
    rule_id = "TEA024"
    name = "snapshot-sections"
    description = (
        "A TEAB v2 section-table entry is invalid: misaligned, "
        "overlapping, escaping the file, missing a required section, "
        "inconsistent item counts, or a zero-copy table that is not in "
        "canonical sorted form."
    )
    paper = "Section 4.2 (sorted dispatch tables)"
    scan_field = "sections"


class SnapshotSectionCrc(_SnapshotRule):
    rule_id = "TEA025"
    name = "snapshot-section-crc"
    description = (
        "A TEAB v2 checksum does not match its payload (section table "
        "or an individual section); the mapped bytes were corrupted "
        "after writing."
    )
    paper = "Section 5 (storing trace shape for reuse)"
    scan_field = "crc"


class SnapshotConvertRoundtrip(Rule):
    rule_id = "TEA026"
    name = "snapshot-convert-roundtrip"
    description = (
        "Converting the snapshot to the other format and back does not "
        "reproduce the original bytes, or the converted image fails its "
        "own scan; v1 and v2 must address the same content."
    )
    paper = "Section 5 (content-addressed snapshot reuse)"
    family = "snapshot"
    requires = ("snapshot", "snapshot_deep")

    def check(self, subject):
        from repro.errors import SerializationError
        from repro.store.binary import BINARY_VERSION, snapshot_version
        from repro.store.binary_v2 import (
            BINARY_VERSION_V2, convert_v1_to_v2, convert_v2_to_v1,
        )

        data = subject.snapshot
        if not scan_snapshot(data).sound():
            return  # structural rules already own the root cause
        version = snapshot_version(data)
        try:
            if version == BINARY_VERSION:
                other = convert_v1_to_v2(data)
                back = convert_v2_to_v1(other)
            elif version == BINARY_VERSION_V2:
                other = convert_v2_to_v1(data)
                back = convert_v1_to_v2(other)
            else:
                return
        except SerializationError as error:
            yield self.diag(
                "snapshot does not convert to the other format: %s"
                % error,
            )
            return
        if bytes(back) != bytes(data):
            yield self.diag(
                "v%d -> v%d -> v%d conversion does not reproduce the "
                "original %d bytes; the snapshot is not in canonical "
                "form" % (version, 3 - version, version, len(data)),
                version=version,
            )
        converted = scan_snapshot(other)
        if not converted.sound():
            first = (converted.envelope + converted.structure
                     + converted.sections + converted.crc)[0][0]
            yield self.diag(
                "converted v%d image fails its own scan: %s"
                % (3 - version, first),
                version=version,
            )


register(SnapshotEnvelope())
register(SnapshotStructure())
register(SnapshotOrder())
register(SnapshotRoundtrip())
register(SnapshotSections())
register(SnapshotSectionCrc())
register(SnapshotConvertRoundtrip())
