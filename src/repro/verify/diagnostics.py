"""Diagnostic and report value objects for the static verifier.

A :class:`Diagnostic` is one finding: a rule id (``TEA001`` style), a
severity, a human message, and optional machine-readable ``location``
/ ``data`` payloads.  A :class:`Report` is an ordered collection of
diagnostics for one verification target with three renderings:

- ``render_text()`` — compiler-style one-line-per-finding text;
- ``to_json()`` — a stable JSON document for tooling;
- ``to_sarif()`` — a SARIF 2.1.0 log for CI annotation (one run, one
  result per diagnostic, the rule catalog embedded in the driver).

This module deliberately imports nothing from the rest of ``repro``
except the error types, so every layer (the trace model, the compiled
automaton, the store) can produce diagnostics without import cycles.
"""

from __future__ import annotations

from repro.errors import VerificationError

#: Severity levels, ordered most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: SARIF 2.1.0 ``level`` values for each severity.
_SARIF_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Documentation base for per-rule ``helpUri`` anchors.
DOC_BASE_URI = ("https://example.invalid/repro/docs/"
                "static_verification.md")


class Diagnostic:
    """One verifier finding."""

    __slots__ = ("rule_id", "severity", "message", "location", "data")

    def __init__(self, rule_id, severity, message, location=None, data=None):
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % (severity,))
        self.rule_id = rule_id
        self.severity = severity
        self.message = message
        #: Where the finding is anchored: a file path, snapshot key,
        #: state/trace name — free-form but stable per rule.
        self.location = location
        self.data = dict(data) if data else {}

    @property
    def is_error(self):
        return self.severity == ERROR

    def as_dict(self):
        document = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
        if self.location:
            document["location"] = self.location
        if self.data:
            document["data"] = self.data
        return document

    def render(self):
        where = ("%s: " % self.location) if self.location else ""
        return "%s%s: [%s] %s" % (where, self.severity, self.rule_id,
                                  self.message)

    def __repr__(self):
        return "<Diagnostic %s %s %r>" % (self.rule_id, self.severity,
                                          self.message)


class Report:
    """Ordered diagnostics for one verification target."""

    __slots__ = ("target", "diagnostics", "rules_run")

    def __init__(self, target="<memory>", diagnostics=None, rules_run=None):
        self.target = target
        self.diagnostics = list(diagnostics or [])
        #: Rule ids that actually executed (applicable and enabled) —
        #: a clean report over zero rules is not evidence of anything.
        self.rules_run = list(rules_run or [])

    # -- collection ----------------------------------------------------

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics):
        self.diagnostics.extend(diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- interrogation -------------------------------------------------

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def rule_ids(self):
        """Distinct rule ids that fired, in first-seen order."""
        seen = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule_id not in seen:
                seen.append(diagnostic.rule_id)
        return seen

    def ok(self, strict=False):
        """True when nothing blocking fired.

        ``strict`` promotes warnings to blocking (the CLI ``--strict``).
        """
        if self.errors:
            return False
        return not (strict and self.warnings)

    def raise_on_error(self, strict=False):
        """Raise :class:`~repro.errors.VerificationError` unless ok."""
        if self.ok(strict=strict):
            return self
        blocking = self.errors or self.warnings
        first = blocking[0]
        raise VerificationError(
            "%s failed verification: %d blocking diagnostic(s); "
            "first: [%s] %s"
            % (self.target, len(blocking), first.rule_id, first.message),
            diagnostics=self.diagnostics,
        )

    # -- renderings ----------------------------------------------------

    def render_text(self, strict=False):
        lines = []
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        verdict = "PASS" if self.ok(strict=strict) else "FAIL"
        lines.append(
            "%s: %s (%d error(s), %d warning(s), %d rule(s) run)"
            % (self.target, verdict, len(self.errors), len(self.warnings),
               len(self.rules_run))
        )
        return "\n".join(lines)

    def to_json(self, strict=False):
        return {
            "target": self.target,
            "ok": self.ok(strict=strict),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def __repr__(self):
        return "<Report %s: %d diagnostic(s), %d error(s)>" % (
            self.target, len(self.diagnostics), len(self.errors),
        )


def report_from_json(document):
    """Rebuild a :class:`Report` from its :meth:`Report.to_json` shape.

    The audit result cache stores reports as JSON; this inverts the
    encoding (``ok``/count fields are derived, so they round-trip for
    free).
    """
    diagnostics = [
        Diagnostic(
            entry["rule"], entry["severity"], entry["message"],
            location=entry.get("location"), data=entry.get("data"),
        )
        for entry in document.get("diagnostics", ())
    ]
    return Report(target=document.get("target", "<memory>"),
                  diagnostics=diagnostics,
                  rules_run=document.get("rules_run"))


def reports_to_sarif(reports, catalog, tool_version="0"):
    """Render reports as one SARIF 2.1.0 log (one run, shared driver).

    ``catalog`` is an iterable of rule objects (anything with
    ``rule_id``, ``severity``, ``description``); it becomes the
    driver's ``rules`` array so CI viewers can show rule help.  Each
    rule entry carries a ``helpUri`` anchored into the rule-catalog
    docs (``help_uri`` on the rule object overrides it), and the index
    is deduplicated by rule id — merging catalogs from several engine
    runs over multiple subjects cannot produce duplicate entries.
    """
    rules = []
    rule_index = {}
    for rule in catalog:
        if rule.rule_id in rule_index:
            continue
        rule_index[rule.rule_id] = len(rules)
        help_uri = getattr(rule, "help_uri", None) or (
            "%s#%s" % (DOC_BASE_URI, rule.rule_id.lower())
        )
        rules.append({
            "id": rule.rule_id,
            "name": getattr(rule, "name", rule.rule_id),
            "shortDescription": {"text": rule.description},
            "helpUri": help_uri,
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning"),
            },
        })
    results = []
    for report in reports:
        for diagnostic in report:
            result = {
                "ruleId": diagnostic.rule_id,
                "level": _SARIF_LEVELS.get(diagnostic.severity, "warning"),
                "message": {"text": diagnostic.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": str(report.target)},
                    },
                }],
            }
            index = rule_index.get(diagnostic.rule_id)
            if index is not None:
                result["ruleIndex"] = index
            if diagnostic.location:
                result["locations"][0]["logicalLocations"] = [
                    {"fullyQualifiedName": str(diagnostic.location)}
                ]
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-verify",
                    "informationUri": DOC_BASE_URI,
                    "version": str(tool_version),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
