"""CFG-consistency rules (TEA010-TEA012).

A recorded trace claims to be a path the program actually executed, so
every in-trace edge must be *statically feasible*: the label (the
successor block's start PC) must be one of the terminator's possible
successors in the :mod:`repro.cfg` graph.  Side-exit targets likewise
must be real program addresses, and no trace may carry control flow
out of a ``hlt`` — the machine stops there.

All three rules need the trace set **and** the program image the
traces were recorded against (``Subject.program``); without a program
they simply do not run.
"""

from repro.verify.engine import Rule, register


def _allowed_labels(program, block):
    """Statically feasible successor PCs of ``block``.

    Returns ``None`` when the terminator's targets are statically
    unknown (``ret`` / indirect transfers) — any real instruction
    address is then acceptable.
    """
    terminator = block.terminator
    if terminator is None:
        return frozenset()
    if terminator.is_control and (terminator.is_ret
                                  or terminator.is_indirect):
        return None
    if terminator.is_control and terminator.opcode == "hlt":
        return frozenset()
    if not terminator.is_control:
        return frozenset((terminator.fallthrough,))
    return frozenset(program.static_successors(terminator))


class CfgInfeasibleEdge(Rule):
    rule_id = "TEA010"
    name = "cfg-infeasible-edge"
    family = "cfg"
    description = (
        "An in-trace edge takes a transition the program's static CFG "
        "does not allow; the trace is not a feasible path."
    )
    paper = "Section 2, Figure 2 (traces are paths through the CFG)"
    requires = ("trace_set", "program")

    def check(self, subject):
        from repro.cfg.cfg import build_cfg

        program = subject.program
        cfg = build_cfg(program)
        for trace in subject.trace_set:
            for tbb in trace:
                if not program.has_instruction(tbb.block.start):
                    yield self.diag(
                        "%s starts at %#x, which is not an instruction "
                        "in the program" % (tbb.name, tbb.block.start),
                        location=tbb.name,
                        trace=trace.trace_id,
                        start=tbb.block.start,
                    )
                    continue
                allowed = _allowed_labels(program, tbb.block)
                for label in tbb.successors:
                    if allowed is None:
                        # Indirect/ret terminator: targets are unknown
                        # statically, but must still be real code.
                        if not program.has_instruction(label):
                            yield self.diag(
                                "%s takes an indirect edge to %#x, "
                                "which is not program code"
                                % (tbb.name, label),
                                location=tbb.name,
                                trace=trace.trace_id,
                                label=label,
                            )
                        continue
                    if label not in allowed:
                        yield self.diag(
                            "%s has an edge labelled %#x that its "
                            "terminator cannot reach (feasible: %s)"
                            % (tbb.name, label,
                               ", ".join("%#x" % a for a in
                                         sorted(allowed)) or "none"),
                            location=tbb.name,
                            trace=trace.trace_id,
                            label=label,
                        )
                    elif (tbb.block.start in cfg.blocks
                            and label in cfg.blocks
                            and cfg.blocks[tbb.block.start].end
                            == tbb.block.end
                            and not cfg.graph.has_edge(
                                tbb.block.start, label)):
                        # The dynamic block coincides with a static CFG
                        # block, yet the graph lacks the edge — the
                        # trace and the decoded CFG disagree.
                        yield self.diag(
                            "edge %s -> %#x is missing from the static "
                            "CFG" % (tbb.name, label),
                            location=tbb.name,
                            trace=trace.trace_id,
                            label=label,
                        )


class CfgSideExitTarget(Rule):
    rule_id = "TEA011"
    name = "cfg-side-exit-target"
    family = "cfg"
    description = (
        "A side-exit label points outside the program image; the exit "
        "stub would transfer to a non-code address."
    )
    paper = "Section 3 (side exits become NTE/trace-entry transitions)"
    requires = ("trace_set", "program")

    def check(self, subject):
        program = subject.program
        for trace in subject.trace_set:
            for tbb in trace:
                for label in tbb.exit_labels():
                    if label is None:   # statically unknown (ret/indirect)
                        continue
                    if not program.has_instruction(label):
                        yield self.diag(
                            "%s has a side exit to %#x, which is not an "
                            "instruction in the program"
                            % (tbb.name, label),
                            location=tbb.name,
                            trace=trace.trace_id,
                            label=label,
                        )


class CfgHltCrossing(Rule):
    rule_id = "TEA012"
    name = "cfg-hlt-crossing"
    family = "cfg"
    description = (
        "A trace continues past a hlt-terminated block; execution "
        "cannot cross a machine halt."
    )
    paper = "Section 2 (a trace ends where execution ends)"
    requires = ("trace_set", "program")

    def check(self, subject):
        for trace in subject.trace_set:
            for tbb in trace:
                terminator = tbb.block.terminator
                if (terminator is not None
                        and terminator.opcode == "hlt"
                        and tbb.successors):
                    yield self.diag(
                        "%s terminates in hlt but carries %d outgoing "
                        "in-trace edge(s)" % (tbb.name, len(tbb.successors)),
                        location=tbb.name,
                        trace=trace.trace_id,
                    )


register(CfgInfeasibleEdge())
register(CfgSideExitTarget())
register(CfgHltCrossing())
