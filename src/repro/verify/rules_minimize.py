"""Minimization and diff rules (TEA050-TEA054).

The minimizer (:mod:`repro.minimize`) and the diff engine
(:mod:`repro.compare`) both produce artifacts that cross load
boundaries: minimized snapshots are stored content-addressed next to
their originals, and diff reports travel over the service protocol.
This family gates both.

- TEA050 checks the *provenance meta* of minimized snapshots (the
  ``minimized_from`` / ``minimize`` keys written by
  ``AutomatonStore.put_minimized``).  It requires only the ``snapshot``
  facet, so it runs automatically wherever TEAB bytes are already
  verified — store gets, service preload, ``repro tools verify``.
- TEA051-TEA053 check a live :class:`~repro.minimize.MinimizationResult`
  (language preservation on sampled label walks, state-map soundness,
  budget invariants) and run through
  :func:`~repro.verify.api.verify_minimization`.
- TEA054 checks the structural soundness of a diff report dict and runs
  through :func:`~repro.verify.api.verify_diff_report`.
"""

from repro.verify.engine import Rule, register

#: TEA051 sampling parameters: heads probed per automaton and labels
#: fed per walk.  Small on purpose — this is a smoke gate at load
#: boundaries, not the differential suite.
SAMPLE_HEADS = 16
SAMPLE_DEPTH = 48


class MinimizeProvenance(Rule):
    rule_id = "TEA050"
    name = "minimize-provenance"
    family = "minimize"
    description = (
        "A snapshot claiming minimization provenance (meta key "
        "'minimized_from') must carry a well-formed origin key and a "
        "consistent 'minimize' summary (mode, budget, state counts "
        "matching the snapshot itself)."
    )
    paper = "Section 5 (content-addressed snapshot reuse)"
    requires = ("snapshot",)

    def check(self, subject):
        from repro.errors import ReproError
        from repro.minimize import MODES
        from repro.store.binary import peek_tea_binary

        try:
            info = peek_tea_binary(subject.snapshot)
        except (ReproError, ValueError):
            return  # corrupt envelope: TEA020/TEA021 own that finding
        meta = info.get("meta")
        if not isinstance(meta, dict) or "minimized_from" not in meta:
            return
        origin = meta["minimized_from"]
        if (not isinstance(origin, str) or len(origin) != 64
                or any(ch not in "0123456789abcdef" for ch in origin)):
            yield self.diag(
                "meta 'minimized_from' is not a 64-hex content key: %r"
                % (origin,), origin=repr(origin),
            )
        summary = meta.get("minimize")
        if not isinstance(summary, dict):
            yield self.diag(
                "minimized snapshot carries no 'minimize' summary dict "
                "(got %r)" % type(summary).__name__,
            )
            return
        mode = summary.get("mode")
        if mode not in MODES:
            yield self.diag(
                "minimize summary mode %r is not one of %s"
                % (mode, "/".join(MODES)), mode=repr(mode),
            )
        budget = summary.get("budget")
        if budget is not None and (not isinstance(budget, int)
                                   or isinstance(budget, bool)
                                   or budget < 1):
            yield self.diag(
                "minimize summary budget must be null or a positive "
                "integer, got %r" % (budget,), budget=repr(budget),
            )
        before = summary.get("states_before")
        after = summary.get("states_after")
        for label, value in (("states_before", before),
                             ("states_after", after)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                yield self.diag(
                    "minimize summary %s must be a positive integer, "
                    "got %r" % (label, value),
                )
                return
        if after > before:
            yield self.diag(
                "minimize summary grew the automaton: states_before=%d "
                "< states_after=%d" % (before, after),
                states_before=before, states_after=after,
            )
        if after != info["states"]:
            yield self.diag(
                "minimize summary states_after=%d disagrees with the "
                "snapshot's own state table (%d states)"
                % (after, info["states"]),
                states_after=after, states=info["states"],
            )


def _sample_walks(tea):
    """Deterministic label walks exercising every sampled head.

    Each walk starts at a trace entry and then follows the *original*
    automaton greedily — once by smallest outgoing label, once by
    largest — injecting a guaranteed-miss label near the end so the
    NTE fallback path is sampled too.  Deterministic by construction
    (sorted heads, sorted labels), so verification is reproducible.
    """
    labels = {label for state in tea.states for label in state.transitions}
    labels.update(tea.heads)
    miss = (max(labels) + 1) if labels else 1
    walks = []
    for entry in sorted(tea.heads)[:SAMPLE_HEADS]:
        for chooser in (min, max):
            walk = [entry]
            state = tea.heads[entry]
            for position in range(SAMPLE_DEPTH):
                if position == SAMPLE_DEPTH // 2:
                    label = miss
                elif state.transitions:
                    label = chooser(state.transitions)
                else:
                    label = miss
                walk.append(label)
                state = tea.next_state(state, label)
            walks.append(walk)
    return walks


class MinimizeLanguage(Rule):
    rule_id = "TEA051"
    name = "minimize-language"
    family = "minimize"
    description = (
        "On sampled label walks the minimized automaton must agree "
        "with the original about being in-trace (exactly without a "
        "budget; minimized-in-trace implies original-in-trace when "
        "states were spilled)."
    )
    paper = "Section 3 (TEA accepts the recorded trace language)"
    requires = ("minimization",)

    def check(self, subject):
        result = subject.minimization
        original = result.original
        minimized = result.tea
        lossless = not result.spilled
        for walk in _sample_walks(original):
            path_a = [s.tbb is not None for s in original.simulate(walk)]
            path_b = [s.tbb is not None for s in minimized.simulate(walk)]
            for step, (in_a, in_b) in enumerate(zip(path_a, path_b)):
                if in_a == in_b:
                    continue
                if lossless or in_b:
                    yield self.diag(
                        "sampled walk from entry %#x diverges at step "
                        "%d: original %s, minimized %s"
                        % (walk[0], step,
                           "in-trace" if in_a else "NTE",
                           "in-trace" if in_b else "NTE"),
                        entry=walk[0], step=step,
                    )
                    break


class MinimizeStateMap(Rule):
    rule_id = "TEA052"
    name = "minimize-state-map"
    family = "minimize"
    description = (
        "The minimization state map must be a total, structure- "
        "preserving quotient: every original state maps to a live "
        "minimized state (or was spilled), transitions commute with "
        "the map, and the head registry keeps its entries and order."
    )
    paper = "Section 3 (Algorithm 1 state identity)"
    requires = ("minimization",)

    def check(self, subject):
        from repro.core.automaton import NTE_SID

        result = subject.minimization
        original = result.original
        minimized = result.tea
        state_map = result.state_map
        if len(state_map) != original.n_states:
            yield self.diag(
                "state map covers %d states but the original has %d"
                % (len(state_map), original.n_states),
            )
            return
        if state_map[NTE_SID] != NTE_SID:
            yield self.diag(
                "state map sends NTE to %r (must be %d)"
                % (state_map[NTE_SID], NTE_SID),
            )
        spilled = set(result.spilled)
        for state in original.states[1:]:
            mapped = state_map[state.sid]
            if mapped is None:
                if state.sid not in spilled:
                    yield self.diag(
                        "state %s maps to nothing but is not recorded "
                        "as spilled" % state.name, sid=state.sid,
                    )
                continue
            if not 0 < mapped < minimized.n_states:
                yield self.diag(
                    "state %s maps to out-of-range minimized sid %r"
                    % (state.name, mapped), sid=state.sid,
                )
                continue
            image = minimized.states[mapped]
            if image.tbb.start != state.tbb.start:
                yield self.diag(
                    "state %s (block %#x) merged into %s (block %#x): "
                    "merged states must represent the same code"
                    % (state.name, state.tbb.start, image.name,
                       image.tbb.start), sid=state.sid,
                )
            for label, dest in state.transitions.items():
                dest_mapped = state_map[dest.sid]
                got = image.transitions.get(label)
                if dest_mapped is None:
                    if got is not None:
                        yield self.diag(
                            "%s keeps a transition on %#x whose "
                            "original target %s was spilled"
                            % (image.name, label, dest.name),
                            sid=state.sid, label=label,
                        )
                elif got is None or got.sid != dest_mapped:
                    yield self.diag(
                        "transition %s --%#x--> %s does not commute "
                        "with the state map (image has %s)"
                        % (state.name, label, dest.name,
                           got.name if got is not None else "nothing"),
                        sid=state.sid, label=label,
                    )
        if list(minimized.heads) != list(original.heads):
            yield self.diag(
                "head registry entries or order changed: %s -> %s"
                % (list(original.heads), list(minimized.heads)),
            )
            return
        for entry, head in original.heads.items():
            mapped = state_map[head.sid]
            got = minimized.heads[entry]
            if mapped is None or got.sid != mapped:
                yield self.diag(
                    "head %#x maps to %s but the minimized registry "
                    "holds %s" % (entry, mapped, got.name), entry=entry,
                )


class MinimizeBudget(Rule):
    rule_id = "TEA053"
    name = "minimize-budget"
    family = "minimize"
    description = (
        "Budgeted minimization must respect its cap: at most 'budget' "
        "states, every head retained, every kept state reachable, and "
        "every spilled state actually gone."
    )
    paper = "Section 6 (bounded translation-cache analogy)"
    requires = ("minimization",)

    def check(self, subject):
        from repro.verify.views import AutomatonView

        result = subject.minimization
        if result.budget is None:
            return
        minimized = result.tea
        if minimized.n_states > result.budget:
            yield self.diag(
                "minimized automaton has %d states, over the budget of "
                "%d" % (minimized.n_states, result.budget),
                states=minimized.n_states, budget=result.budget,
            )
        missing = [
            entry for entry in result.original.heads
            if entry not in minimized.heads
        ]
        if missing:
            yield self.diag(
                "budget spilled %d head state(s) (%s); heads are "
                "mandatory" % (
                    len(missing),
                    ", ".join("%#x" % entry for entry in missing[:4]),
                ),
            )
        view = AutomatonView.from_tea(minimized)
        unreachable = sorted(set(range(view.n_states)) - view.reachable())
        if unreachable:
            yield self.diag(
                "budget left %d unreachable state(s) behind (first: "
                "%s)" % (len(unreachable),
                         view.state_label(unreachable[0])),
            )
        alive = sum(
            1 for sid in result.spilled if result.state_map[sid] is not None
        )
        if alive:
            yield self.diag(
                "%d state(s) are recorded as spilled but still mapped"
                % alive,
            )


#: Required diff-report sections and the counters each must carry.
_DIFF_SECTIONS = {
    "states": ("matched", "removed", "added"),
    "transitions": ("matched", "removed", "added", "retargeted"),
    "heads": ("matched", "removed", "added", "retargeted"),
}


class DiffReportShape(Rule):
    rule_id = "TEA054"
    name = "diff-report-shape"
    family = "minimize"
    description = (
        "A TEA diff report must be structurally sound: all sections "
        "present, counters non-negative and consistent with both "
        "sides' totals, similarity within [0, 1], and the 'identical' "
        "flag agreeing with the counters."
    )
    paper = "Section 3 (comparing recorded trace shape)"
    requires = ("tea_diff",)

    def check(self, subject):
        report = subject.tea_diff
        if not isinstance(report, dict):
            yield self.diag(
                "diff report must be a dict, got %r"
                % type(report).__name__,
            )
            return
        for key in ("a", "b", "similarity", "identical"):
            if key not in report:
                yield self.diag("diff report is missing key %r" % key)
                return
        for section, fields in _DIFF_SECTIONS.items():
            body = report.get(section)
            if not isinstance(body, dict):
                yield self.diag(
                    "diff report section %r is missing or not a dict"
                    % section,
                )
                return
            for field in fields:
                value = body.get(field)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    yield self.diag(
                        "diff counter %s.%s must be a non-negative "
                        "integer, got %r" % (section, field, value),
                    )
                    return
        for side in ("a", "b"):
            body = report[side]
            if not isinstance(body, dict):
                yield self.diag("diff side %r is not a dict" % side)
                return
            for field in ("states", "transitions", "heads"):
                value = body.get(field)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    yield self.diag(
                        "diff side total %s.%s must be a non-negative "
                        "integer, got %r" % (side, field, value),
                    )
                    return

        states = report["states"]
        trans = report["transitions"]
        heads = report["heads"]
        checks = (
            ("states", states["matched"] + states["removed"],
             report["a"]["states"]),
            ("states", states["matched"] + states["added"],
             report["b"]["states"]),
            ("transitions",
             trans["matched"] + trans["removed"] + trans["retargeted"],
             report["a"]["transitions"]),
            ("transitions",
             trans["matched"] + trans["added"] + trans["retargeted"],
             report["b"]["transitions"]),
            ("heads",
             heads["matched"] + heads["removed"] + heads["retargeted"],
             report["a"]["heads"]),
            ("heads",
             heads["matched"] + heads["added"] + heads["retargeted"],
             report["b"]["heads"]),
        )
        for section, got, expected in checks:
            if got != expected:
                yield self.diag(
                    "diff %s counters sum to %d but the side total is "
                    "%d" % (section, got, expected),
                    section=section, sum=got, total=expected,
                )
        similarity = report["similarity"]
        if not isinstance(similarity, (int, float)) \
                or isinstance(similarity, bool) \
                or not 0.0 <= similarity <= 1.0:
            yield self.diag(
                "diff similarity must be a number in [0, 1], got %r"
                % (similarity,),
            )
        clean = (
            states["removed"] == 0 and states["added"] == 0
            and trans["removed"] == 0 and trans["added"] == 0
            and trans["retargeted"] == 0
            and heads["removed"] == 0 and heads["added"] == 0
            and heads["retargeted"] == 0
        )
        if bool(report["identical"]) != clean:
            yield self.diag(
                "diff 'identical' flag is %r but the counters say %r"
                % (report["identical"], clean),
            )


register(MinimizeProvenance())
register(MinimizeLanguage())
register(MinimizeStateMap())
register(MinimizeBudget())
register(DiffReportShape())
