"""High-level verification entry points.

Everything here builds a :class:`~repro.verify.engine.Subject` with
whatever facets are available, runs one :class:`RuleEngine` pass, and
returns the :class:`~repro.verify.diagnostics.Report`.  The snapshot
helpers additionally *deep-decode*: when the TEAB bytes scan clean,
the decoded automaton (and, given a program image, the trace set) is
added to the same subject so the automaton/CFG/compiled families run
over the decoded content in the same report.

All ``repro`` imports outside the verify package are function-level:
these helpers are called from ``traces``, ``core``, ``store`` and
``service``, and must never create an import cycle.
"""

from __future__ import annotations

from repro.verify.engine import RuleEngine, Subject, all_rules


def default_engine(disabled=(), strict=False, obs=None):
    """A :class:`RuleEngine` over the full built-in catalog."""
    return RuleEngine(all_rules(), disabled=disabled, strict=strict, obs=obs)


def _engine(engine, obs):
    return engine if engine is not None else default_engine(obs=obs)


def verify_tea(tea, trace_set=None, program=None, compiled=None,
               source="<tea>", engine=None, obs=None):
    """Verify a built automaton (plus optional companion facets)."""
    subject = Subject(source=source, tea=tea, trace_set=trace_set,
                      program=program, compiled=compiled)
    return _engine(engine, obs).verify(subject)


def verify_trace_set(trace_set, program=None, source="<traces>",
                     engine=None, obs=None):
    """Verify a trace set (structure plus, given a program, CFG rules)."""
    subject = Subject(source=source, trace_set=trace_set, program=program)
    return _engine(engine, obs).verify(subject)


def verify_compiled(compiled, tea=None, source="<compiled>", engine=None,
                    obs=None):
    """Verify a compiled lowering (plus equivalence when ``tea`` given)."""
    subject = Subject(source=source, compiled=compiled, tea=tea)
    return _engine(engine, obs).verify(subject)


def verify_jit_source(source, compiled=None, source_name="<jit>",
                      engine=None, obs=None):
    """Verify a generated JIT replay source (rules TEA033/TEA034).

    ``source`` is the generated module text.  With ``compiled`` (the
    :class:`~repro.core.compiled.CompiledTea` the source claims to
    specialize) the equivalence rule TEA034 also runs; without it only
    the static audit applies.
    """
    subject = Subject(source=source_name, jit_source=source,
                      compiled=compiled)
    return _engine(engine, obs).verify(subject)


def verify_minimization(result, trace_set=None, program=None,
                        source="<minimize>", engine=None, obs=None):
    """Verify a :class:`~repro.minimize.MinimizationResult`.

    The minimized automaton is exposed as the ``tea`` facet too, so the
    whole automaton family (TEA001-TEA005) checks the quotient alongside
    the minimization-specific rules TEA051-TEA053.
    """
    subject = Subject(source=source, tea=result.tea, trace_set=trace_set,
                      program=program, minimization=result)
    return _engine(engine, obs).verify(subject)


def verify_diff_report(report, source="<diff>", engine=None, obs=None):
    """Verify a diff report (rule TEA054).

    ``report`` may be a :class:`~repro.compare.TeaDiff` or the dict its
    ``to_json()`` produces (e.g. straight off the service wire).
    """
    if hasattr(report, "to_json"):
        report = report.to_json()
    subject = Subject(source=source, tea_diff=report)
    return _engine(engine, obs).verify(subject)


def verify_snapshot_bytes(data, program=None, source="<snapshot>",
                          engine=None, obs=None, deep=True):
    """Verify TEAB snapshot bytes.

    The snapshot family always runs.  With ``deep=True`` (default) and
    structurally sound bytes, the snapshot is also lowered to a
    :class:`~repro.core.compiled.CompiledTea` — and, when ``program``
    is provided, fully decoded to a trace set + automaton — so the
    automaton, CFG and compiled families check the decoded content in
    the same report.  Deep runs also enable the v1<->v2 conversion
    round-trip rule (TEA026); shallow runs (the store's verify-on-load
    gate) skip it to stay O(section table) on v2 snapshots.
    """
    subject = Subject(source=source, snapshot=data)
    if deep:
        from repro.errors import SerializationError
        from repro.verify.rules_snapshot import scan_snapshot

        subject.snapshot_deep = True
        if scan_snapshot(data).sound():
            from repro.store.binary import compile_tea_binary

            try:
                subject.compiled = compile_tea_binary(data, verify=False)
            except (SerializationError, ValueError):
                pass   # the snapshot rules already report the cause
            if program is not None:
                from repro.cfg.basic_block import BlockIndex
                from repro.store.binary import load_tea_binary

                try:
                    trace_set, tea, profile = load_tea_binary(
                        data, BlockIndex(program)
                    )
                except SerializationError:
                    pass
                else:
                    subject.trace_set = trace_set
                    subject.tea = tea
                    subject.program = program
                    subject.profile = profile
    return _engine(engine, obs).verify(subject)


def verify_python_source(source, source_name="<python>", engine=None,
                         obs=None):
    """Run the concurrency lint family (TEA080-TEA082) over module text.

    ``source`` is Python source; ``source_name`` the display path.  The
    audit scheduler calls this for every file in the service stack
    (``repro.service``, ``repro.cluster``, ``repro.store.mapping``).
    """
    subject = Subject(source=source_name, python_source=source)
    return _engine(engine, obs).verify(subject)


def program_for_meta(meta):
    """Rebuild the program image a snapshot's meta names, or ``None``.

    Mirrors the replay service's convention: ``meta["benchmark"]`` is a
    :mod:`repro.workloads` benchmark name, ``meta["scale"]`` its scale.
    """
    benchmark = (meta or {}).get("benchmark")
    if not benchmark:
        return None
    from repro.workloads import load_benchmark

    scale = float(meta.get("scale", 1.0))
    return load_benchmark(benchmark, scale=scale).program


def _verify_jit_path(path, data, engine, obs, deep):
    """Verify a cached ``.jit.py`` source from disk.

    With ``deep=True`` the sibling ``<key>.teab`` snapshot (same shard
    directory, the store's cache layout) is lowered so TEA034 can prove
    the baked tables against it; otherwise — or when no sibling exists
    — only the TEA033 static audit runs.
    """
    import os

    source = data.decode("utf-8", errors="replace")
    compiled = None
    if deep:
        key = os.path.basename(str(path)).split(".", 1)[0]
        sibling = os.path.join(os.path.dirname(str(path)), key + ".teab")
        if os.path.exists(sibling):
            from repro.errors import SerializationError
            from repro.store.binary import compile_tea_binary

            try:
                with open(sibling, "rb") as handle:
                    compiled = compile_tea_binary(handle.read(),
                                                  verify=False)
            except (OSError, SerializationError, ValueError):
                compiled = None
    return verify_jit_source(source, compiled=compiled,
                             source_name=str(path), engine=engine, obs=obs)


def verify_path(path, program=None, engine=None, obs=None, deep=True):
    """Verify a TEA artifact on disk (TEAB snapshot, cached JIT source,
    Python module, or JSON document).  Plain ``.py`` files (that are
    not cached JIT sources) run the concurrency lint family.

    TEAB files may carry a benchmark name in their meta; when they do
    and no ``program`` is passed, the program image is rebuilt from it
    (the service convention) so the CFG family can run.  Files ending in
    ``.jit.py`` (or starting with the ``# TEAJIT`` header) run the JIT
    source rules, proving the baked tables against the sibling snapshot
    when one sits in the same store shard.  JSON TEA documents *require*
    ``program`` — the document stores only spans.

    Raises :class:`~repro.errors.SerializationError` when the file
    cannot be read or is a JSON document without a program — usage
    problems, distinct from verification findings.
    """
    import json

    from repro.errors import SerializationError

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SerializationError(
            "cannot read %s: %s" % (path, error)
        ) from None

    if str(path).endswith(".jit.py") or data[:8] == b"# TEAJIT":
        return _verify_jit_path(path, data, engine, obs, deep)

    if str(path).endswith(".py"):
        return verify_python_source(
            data.decode("utf-8", errors="replace"),
            source_name=str(path), engine=engine, obs=obs,
        )

    if data[:4] == b"TEAB":
        if program is None and deep:
            from repro.store.binary import peek_tea_binary

            try:
                program = program_for_meta(peek_tea_binary(data)["meta"])
            except Exception:
                # Unknown benchmark / unreadable meta: verify what we
                # can without a program image.
                program = None
        return verify_snapshot_bytes(
            data, program=program, source=str(path), engine=engine,
            obs=obs, deep=deep,
        )

    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(
            "%s is neither a TEAB snapshot nor a JSON TEA document: %s"
            % (path, error)
        ) from None
    if program is None:
        raise SerializationError(
            "verifying the JSON document %s requires a program image "
            "(pass --benchmark or --source)" % path
        )
    from repro.cfg.basic_block import BlockIndex

    index = BlockIndex(program)
    if isinstance(document, dict) and isinstance(document.get("traces"), dict):
        # TEA document: the trace-set document nested under "traces".
        from repro.core.serialization import tea_from_json

        trace_set, tea, _profile = tea_from_json(document, index)
    else:
        # Plain trace-set document, as written by ``repro tools record``.
        from repro.core import build_tea
        from repro.traces.serialization import trace_set_from_json

        trace_set = trace_set_from_json(document, index)
        tea = build_tea(trace_set)
    return verify_tea(tea, trace_set=trace_set, program=program,
                      source=str(path), engine=engine, obs=obs)
