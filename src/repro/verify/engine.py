"""The verification rule engine.

A :class:`Rule` packages one static invariant: a stable id
(``TEA001``), a default severity, a one-line description, the paper
section it guards, and a ``check(subject)`` generator yielding
:class:`~repro.verify.diagnostics.Diagnostic` findings.  Rules declare
which *facets* of a :class:`Subject` they need (``requires``); the
:class:`RuleEngine` runs every enabled rule whose facets are present,
so one engine verifies automata, snapshots, trace sets and compiled
lowerings alike — each subject simply exposes fewer or more facets.

Rules register themselves into the module-level catalog at import time
(:func:`register`); :func:`all_rules` returns the catalog sorted by
rule id.  Engines can disable individual rules by id and run in strict
mode, where warnings block like errors.

This module imports nothing from the wider package (the subject facets
are duck-typed), so every layer can depend on the engine without
cycles.
"""

from __future__ import annotations

import hashlib

from repro.verify.diagnostics import ERROR, Diagnostic, Report

#: The global rule catalog: rule_id -> Rule instance.
_CATALOG = {}

#: Bumped by hand when rule *semantics* change without any catalog
#: text changing — forces audit-cache invalidation either way.
CATALOG_EPOCH = 1


def register(rule):
    """Add one rule instance to the catalog (idempotent by id)."""
    existing = _CATALOG.get(rule.rule_id)
    if existing is not None and type(existing) is not type(rule):
        raise ValueError("duplicate rule id %s" % rule.rule_id)
    _CATALOG[rule.rule_id] = rule
    return rule


def all_rules():
    """Every registered rule, sorted by rule id."""
    _load_builtin_rules()
    return [_CATALOG[rule_id] for rule_id in sorted(_CATALOG)]


def rule_by_id(rule_id):
    """Look up one rule; raises ``KeyError`` for unknown ids."""
    _load_builtin_rules()
    return _CATALOG[rule_id]


def _load_builtin_rules():
    """Import the built-in rule modules (registration side effect)."""
    from repro.verify import (  # noqa: F401 — imported for registration
        rules_automaton,
        rules_cfg,
        rules_compiled,
        rules_concurrency,
        rules_dataflow,
        rules_jit,
        rules_jit_static,
        rules_minimize,
        rules_snapshot,
        rules_traces,
    )


def catalog_version() -> str:
    """Content version of the rule catalog: ``<epoch>-<12 hex>``.

    Hashes every registered rule's id, name, severity and description
    plus :data:`CATALOG_EPOCH`, so adding, removing or rewording a
    rule (or bumping the epoch) changes the version — the audit result
    cache keys on it and invalidates itself automatically.
    """
    payload = "|".join(
        "%s:%s:%s:%s" % (rule.rule_id, rule.name, rule.severity,
                         rule.description)
        for rule in all_rules()
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
    return "%d-%s" % (CATALOG_EPOCH, digest)


class Rule:
    """Base class for one verification rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding diagnostics (an empty iterator means the invariant holds).
    """

    #: Stable identifier, e.g. ``"TEA001"``.
    rule_id = None
    #: Short kebab-case name, e.g. ``"automaton-determinism"``.
    name = None
    #: Default severity of this rule's findings.
    severity = ERROR
    #: Rule family: automaton / cfg / snapshot / compiled / traces.
    family = None
    #: One-line description (shown in SARIF rule metadata and docs).
    description = ""
    #: Paper anchor the rule guards (section/figure/definition).
    paper = ""
    #: Subject facet names this rule needs (all must be non-None).
    requires = ()

    def applicable(self, subject):
        return all(
            getattr(subject, facet, None) is not None
            for facet in self.requires
        )

    def check(self, subject):
        raise NotImplementedError

    def diag(self, message, severity=None, location=None, **data):
        """Build one finding attributed to this rule."""
        return Diagnostic(
            self.rule_id,
            severity or self.severity,
            message,
            location=location,
            data=data or None,
        )

    def __repr__(self):
        return "<Rule %s %s>" % (self.rule_id, self.name)


class Subject:
    """One verification target: any combination of facets.

    Facets (each ``None`` when unavailable):

    - ``tea`` — a built :class:`~repro.core.automaton.TEA`;
    - ``trace_set`` — a :class:`~repro.traces.model.TraceSet`;
    - ``program`` — the ISA program image the traces were recorded
      against (enables the CFG-consistency family);
    - ``compiled`` — a :class:`~repro.core.compiled.CompiledTea`;
    - ``snapshot`` — raw TEAB snapshot bytes;
    - ``snapshot_deep`` — ``True`` when the caller opted into the
      expensive deep snapshot checks (the conversion round-trip rule
      TEA026); load-path gating leaves it unset so verify-on-load stays
      O(section table);
    - ``jit_source`` — generated JIT replay source text (see
      :mod:`repro.core.jit`);
    - ``minimization`` — a
      :class:`~repro.minimize.MinimizationResult` (original automaton,
      quotient and state map; enables TEA051-TEA053);
    - ``tea_diff`` — a diff report dict in the
      :meth:`~repro.compare.TeaDiff.to_json` shape (enables TEA054);
    - ``profile`` — a :class:`~repro.core.profile.TeaProfile` recorded
      alongside the automaton (enables TEA061's profile cross-check);
    - ``python_source`` — Python module text for the concurrency lint
      family (TEA080-TEA082).

    ``views`` lazily materialises one uniform
    :class:`~repro.verify.views.AutomatonView` per available automaton
    representation, so the automaton family checks the object graph and
    the flat tables with the same code.
    """

    __slots__ = ("source", "tea", "trace_set", "program", "compiled",
                 "snapshot", "snapshot_deep", "jit_source", "minimization",
                 "tea_diff", "profile", "python_source", "_views")

    def __init__(self, source="<memory>", tea=None, trace_set=None,
                 program=None, compiled=None, snapshot=None,
                 snapshot_deep=None, jit_source=None, minimization=None,
                 tea_diff=None, profile=None, python_source=None):
        self.source = str(source)
        self.tea = tea
        self.trace_set = trace_set
        self.program = program
        self.compiled = compiled
        self.snapshot = snapshot
        self.snapshot_deep = snapshot_deep
        self.jit_source = jit_source
        self.minimization = minimization
        self.tea_diff = tea_diff
        self.profile = profile
        self.python_source = python_source
        self._views = None

    @property
    def views(self):
        """Automaton views, or ``None`` when no automaton facet exists."""
        if self._views is None:
            from repro.verify.views import AutomatonView

            views = []
            if self.tea is not None:
                views.append(AutomatonView.from_tea(self.tea))
            if self.compiled is not None:
                views.append(AutomatonView.from_compiled(self.compiled))
            self._views = views
        return self._views or None

    def __repr__(self):
        facets = [
            facet for facet in
            ("tea", "trace_set", "program", "compiled", "snapshot",
             "snapshot_deep", "jit_source", "minimization", "tea_diff",
             "profile", "python_source")
            if getattr(self, facet) is not None
        ]
        return "<Subject %s: %s>" % (self.source, "+".join(facets) or "empty")


class RuleEngine:
    """Runs every enabled, applicable rule over a subject.

    Parameters
    ----------
    rules:
        Rule instances to consider; defaults to the full catalog.
    disabled:
        Iterable of rule ids to skip.
    strict:
        When true, :meth:`Report.ok` treats warnings as blocking (the
        engine stores the flag and passes it to the reports it builds).
    obs:
        Optional :class:`~repro.obs.Observability`; the engine counts
        ``verify.runs`` / ``verify.rules_run`` / ``verify.diagnostics``
        / ``verify.failures`` into its registry.
    """

    def __init__(self, rules=None, disabled=(), strict=False, obs=None):
        self.rules = list(rules) if rules is not None else all_rules()
        self.disabled = set(disabled)
        self.strict = strict
        self.obs = obs

    def enabled_rules(self):
        return [
            rule for rule in self.rules if rule.rule_id not in self.disabled
        ]

    def verify(self, subject):
        """Run the engine; returns a :class:`Report` (never raises)."""
        report = Report(target=subject.source)
        for rule in self.enabled_rules():
            if not rule.applicable(subject):
                continue
            report.rules_run.append(rule.rule_id)
            report.extend(rule.check(subject))
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.counter("verify.runs").inc()
            metrics.counter("verify.rules_run").inc(len(report.rules_run))
            metrics.counter("verify.diagnostics").inc(len(report))
            if not report.ok(strict=self.strict):
                metrics.counter("verify.failures").inc()
        return report

    def check(self, subject):
        """Verify and raise on a blocking report; returns the report."""
        return self.verify(subject).raise_on_error(strict=self.strict)
