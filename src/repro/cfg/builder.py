"""Dynamic basic-block discovery from the edge stream.

The builder consumes :class:`~repro.cpu.events.EdgeEvent` objects in
execution order and produces *block transitions*: ``(block, event,
next_start)`` triples.  Two flavours reproduce the Section 4.1 mismatch:

- ``FLAVOR_STARDBT``: blocks end only at genuine control transfers; REP
  and ``cpuid`` split events are merged into the enclosing block.
- ``FLAVOR_PIN``: split events also end blocks, exactly as Pin creates
  new dynamic basic blocks at ``cpuid`` and REP-prefixed instructions.

Because the paper's pintool "inserts the instrumentation code on the taken
and fall through edges instead of at the beginning of the TBBs", the TEA
tools always use the StarDBT flavour even when hosted under MiniPin — the
whole point of that implementation trick was to observe the same
transitions StarDBT saw.
"""

FLAVOR_STARDBT = "stardbt"
FLAVOR_PIN = "pin"


class BlockTransition:
    """One dynamic block completion plus the edge that ended it."""

    __slots__ = ("block", "event", "next_start", "instrs_dbt", "instrs_pin")

    def __init__(self, block, event, next_start, instrs_dbt, instrs_pin):
        self.block = block
        self.event = event
        self.next_start = next_start
        self.instrs_dbt = instrs_dbt
        self.instrs_pin = instrs_pin

    def __repr__(self):
        return "<Transition %r -> %#x>" % (self.block, self.next_start)


class DynamicBlockBuilder:
    """Chops the edge stream into dynamic basic blocks.

    Parameters
    ----------
    block_index:
        Shared :class:`~repro.cfg.basic_block.BlockIndex` for interning.
    entry:
        Address of the first block's start (the program entry).
    flavor:
        ``FLAVOR_STARDBT`` or ``FLAVOR_PIN`` (see module docstring).
    on_transition:
        Callback invoked with each :class:`BlockTransition`.
    """

    def __init__(self, block_index, entry, flavor=FLAVOR_STARDBT,
                 on_transition=None):
        if flavor not in (FLAVOR_STARDBT, FLAVOR_PIN):
            raise ValueError("unknown flavor %r" % flavor)
        self.block_index = block_index
        self.flavor = flavor
        self.on_transition = on_transition
        self.current_start = entry
        self._pending_dbt = 0
        self._pending_pin = 0
        self.blocks_completed = 0

    def feed(self, event):
        """Consume one edge event; may emit a block transition."""
        merge_split = event.kind == "split" and self.flavor == FLAVOR_STARDBT
        if merge_split:
            # StarDBT does not end blocks at cpuid/REP: remember the counts
            # and keep extending the current block.
            self._pending_dbt += event.instrs_dbt
            self._pending_pin += event.instrs_pin
            return None
        instrs_dbt = self._pending_dbt + event.instrs_dbt
        instrs_pin = self._pending_pin + event.instrs_pin
        self._pending_dbt = 0
        self._pending_pin = 0
        block = self.block_index.block(self.current_start, event.pc)
        transition = BlockTransition(
            block, event, event.target, instrs_dbt, instrs_pin
        )
        self.current_start = event.target
        self.blocks_completed += 1
        if self.on_transition is not None:
            self.on_transition(transition)
        return transition

    def flush(self, final_pc, residual_dbt, residual_pin):
        """Close the trailing block at program halt.

        ``final_pc`` is the ``hlt`` address; ``residual_*`` are the
        instruction counts the executor accumulated after the last event
        (callers compute them as run totals minus per-event sums).
        """
        block = self.block_index.block(self.current_start, final_pc)
        transition = BlockTransition(
            block,
            None,
            None,
            self._pending_dbt + residual_dbt,
            self._pending_pin + residual_pin,
        )
        self._pending_dbt = 0
        self._pending_pin = 0
        self.blocks_completed += 1
        if self.on_transition is not None:
            self.on_transition(transition)
        return transition
