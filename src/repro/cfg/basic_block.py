"""Basic-block value objects and interning.

A :class:`BasicBlock` is Definition 1 of the paper: a single-entry,
single-exit instruction sequence, identified by its (start, end) address
pair.  Blocks are interned per :class:`BlockIndex` so every engine that
observes the same dynamic span shares one object — identity comparisons
then work across recorders, the DBT and the TEA layers.
"""

from repro.errors import TraceError


class BasicBlock:
    """A basic block: instructions from ``start`` through the one at ``end``.

    ``end`` is the address of the final (terminator) instruction, matching
    the paper's convention where blocks end *in* a branch.  Metadata is
    static: ``n_instrs`` counts a REP-prefixed op as a single instruction
    (StarDBT counting); Pin-style dynamic counts come from the edge stream.
    """

    __slots__ = ("start", "end", "n_instrs", "size_bytes", "terminator")

    def __init__(self, start, end, n_instrs, size_bytes, terminator):
        self.start = start
        self.end = end
        self.n_instrs = n_instrs
        self.size_bytes = size_bytes
        self.terminator = terminator  # the ending Instruction (may be None)

    @property
    def key(self):
        return (self.start, self.end)

    def __repr__(self):
        return "<BB %#x..%#x %d instrs %dB>" % (
            self.start,
            self.end,
            self.n_instrs,
            self.size_bytes,
        )

    def __eq__(self, other):
        return (
            isinstance(other, BasicBlock)
            and other.start == self.start
            and other.end == self.end
        )

    def __hash__(self):
        return hash((self.start, self.end))


class BlockIndex:
    """Interning cache of :class:`BasicBlock` objects for one program.

    ``block(start, end)`` walks the program from ``start`` to ``end``
    once, computes static metadata, and returns the shared instance on
    every later request.
    """

    def __init__(self, program):
        self.program = program
        self._blocks = {}

    def block(self, start, end):
        key = (start, end)
        found = self._blocks.get(key)
        if found is not None:
            return found
        program = self.program
        addr = start
        n_instrs = 0
        size_bytes = 0
        terminator = None
        guard = 0
        while True:
            instr = program.instruction_at(addr)
            n_instrs += 1
            size_bytes += instr.length
            terminator = instr
            if addr == end:
                break
            addr = instr.fallthrough
            guard += 1
            if guard > 100_000:
                raise TraceError(
                    "runaway block %#x..%#x (end not reachable)" % (start, end)
                )
        made = BasicBlock(start, end, n_instrs, size_bytes, terminator)
        self._blocks[key] = made
        return made

    def known_blocks(self):
        """All blocks interned so far (dynamic code discovery footprint)."""
        return list(self._blocks.values())

    def __len__(self):
        return len(self._blocks)
