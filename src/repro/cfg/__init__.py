"""Basic blocks and control-flow graphs.

Two distinct views exist, as in the paper:

- *Dynamic* basic blocks (:mod:`repro.cfg.builder`) are discovered from the
  executed edge stream.  StarDBT identifies a block as "starting at an
  address which is target of a branching instruction and ending in a branch
  instruction"; Pin additionally splits blocks at ``cpuid`` and
  REP-prefixed instructions (Section 4.1).  Both flavours are implemented.
- The *static* CFG (:mod:`repro.cfg.cfg`) is decoded from the program image
  and is used for loop-header detection (Trace Tree anchors) and for
  Algorithm 1's successor computation.
"""

from repro.cfg.basic_block import BasicBlock, BlockIndex
from repro.cfg.builder import (
    FLAVOR_PIN,
    FLAVOR_STARDBT,
    DynamicBlockBuilder,
)
from repro.cfg.cfg import ControlFlowGraph, build_cfg
from repro.cfg.loops import LoopInfo, find_loops

__all__ = [
    "BasicBlock",
    "BlockIndex",
    "DynamicBlockBuilder",
    "FLAVOR_STARDBT",
    "FLAVOR_PIN",
    "ControlFlowGraph",
    "build_cfg",
    "LoopInfo",
    "find_loops",
]
