"""Static control-flow graph decoded from a program image.

Leaders are the program entry, every label, every direct branch target and
every fall-through of a control transfer.  Indirect transfer targets are
unknown statically; labels act as the symbol information a real DBT would
use for jump tables.  The CFG backs loop detection (:mod:`repro.cfg.loops`)
and diagnostic rendering; dynamic behaviour always comes from the edge
stream instead.
"""

import networkx as nx

from repro.cfg.basic_block import BasicBlock


class ControlFlowGraph:
    """Static CFG: interned blocks plus a :mod:`networkx` digraph over them.

    Nodes of ``graph`` are block start addresses; ``blocks`` maps start
    address to :class:`~repro.cfg.basic_block.BasicBlock`.
    """

    def __init__(self, program, blocks, graph):
        self.program = program
        self.blocks = blocks
        self.graph = graph

    @property
    def entry(self):
        return self.program.entry

    def block_at(self, start):
        return self.blocks[start]

    def successors(self, start):
        return list(self.graph.successors(start))

    def predecessors(self, start):
        return list(self.graph.predecessors(start))

    def __len__(self):
        return len(self.blocks)

    def to_dot(self, highlight=()):
        """Render as Graphviz DOT (used by the Figure 2 regenerator)."""
        highlighted = set(highlight)
        lines = ["digraph cfg {", "  node [shape=box, fontname=monospace];"]
        names = self._block_names()
        for start, block in sorted(self.blocks.items()):
            style = ", style=filled, fillcolor=lightgray" if start in highlighted else ""
            lines.append(
                '  b%x [label="%s\\n%#x..%#x"%s];'
                % (start, names.get(start, "%#x" % start), block.start, block.end, style)
            )
        for src, dst in sorted(self.graph.edges()):
            lines.append("  b%x -> b%x;" % (src, dst))
        lines.append("}")
        return "\n".join(lines)

    def _block_names(self):
        names = {}
        for label, addr in self.program.labels.items():
            if addr in self.blocks and addr not in names:
                names[addr] = label
        return names


def build_cfg(program):
    """Decode the static CFG of ``program``."""
    leaders = {program.entry}
    for addr in program.labels.values():
        if program.has_instruction(addr):
            leaders.add(addr)
    for instr in program:
        if instr.is_control:
            if instr.target is not None:
                leaders.add(instr.target)
            if instr.opcode != "hlt" and not (
                instr.kind == "jmp" and not instr.is_indirect
            ):
                # Everything except an unconditional direct jump / hlt can
                # fall through (conditionals, calls returning, indirects
                # are conservatively assumed to continue).
                if program.has_instruction(instr.fallthrough):
                    leaders.add(instr.fallthrough)

    blocks = {}
    graph = nx.DiGraph()
    ordered = sorted(leaders)
    leader_set = set(ordered)
    for start in ordered:
        addr = start
        n_instrs = 0
        size_bytes = 0
        terminator = None
        while True:
            instr = program.instruction_at(addr)
            n_instrs += 1
            size_bytes += instr.length
            terminator = instr
            following = instr.fallthrough
            if instr.is_control or following in leader_set or not (
                program.has_instruction(following)
            ):
                break
            addr = following
        block = BasicBlock(start, addr, n_instrs, size_bytes, terminator)
        blocks[start] = block
        graph.add_node(start)

    for start, block in blocks.items():
        terminator = block.terminator
        if terminator.is_control:
            for successor in program.static_successors(terminator):
                if successor in blocks:
                    graph.add_edge(start, successor)
        else:
            following = terminator.fallthrough
            if following in blocks:
                graph.add_edge(start, following)
    return ControlFlowGraph(program, blocks, graph)
