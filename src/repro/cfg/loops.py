"""Natural-loop detection over the static CFG.

Loop headers drive the Trace Tree family: TT anchors trees at loop
headers, and CTT terminates a recorded path at *any* loop header already
on the path.  Headers are found the classical way: compute dominators from
the CFG entry, then every edge ``u -> v`` where ``v`` dominates ``u`` is a
back edge and ``v`` a loop header.  The loop body is collected by the
usual reverse reachability walk from the back-edge sources.
"""

import networkx as nx


class LoopInfo:
    """Loop structure of one CFG.

    Attributes
    ----------
    headers:
        Set of loop-header block start addresses.
    bodies:
        Mapping header -> set of block starts forming the natural loop
        (header included).
    back_edges:
        List of ``(tail, header)`` block-start pairs.
    """

    def __init__(self, headers, bodies, back_edges):
        self.headers = headers
        self.bodies = bodies
        self.back_edges = back_edges

    def is_header(self, start):
        return start in self.headers

    def loop_depth(self, start):
        """Number of natural loops containing ``start`` (0 = not in a loop)."""
        return sum(1 for body in self.bodies.values() if start in body)

    def __repr__(self):
        return "<LoopInfo %d headers>" % len(self.headers)


def find_loops(cfg):
    """Return :class:`LoopInfo` for a :class:`~repro.cfg.cfg.ControlFlowGraph`."""
    graph = cfg.graph
    entry = cfg.entry
    if entry not in graph:
        return LoopInfo(set(), {}, [])
    reachable = set(nx.descendants(graph, entry)) | {entry}
    subgraph = graph.subgraph(reachable)
    idom = nx.immediate_dominators(subgraph, entry)

    def dominates(a, b):
        """True when block ``a`` dominates block ``b``."""
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return a == node
            node = parent

    back_edges = []
    for u, v in subgraph.edges():
        if dominates(v, u):
            back_edges.append((u, v))

    headers = set()
    bodies = {}
    for tail, header in back_edges:
        headers.add(header)
        body = bodies.setdefault(header, {header})
        stack = [tail]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(subgraph.predecessors(node))
    return LoopInfo(headers, bodies, back_edges)
